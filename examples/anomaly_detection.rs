//! ARIMA-on-CPI anomaly detection, standalone: trains a performance model
//! on normal CPI traces and compares the three threshold rules of the paper
//! (max-min, 95-percentile, beta-max) on a disturbed trace — the Fig. 5 /
//! Fig. 6 machinery as a library user would drive it.
//!
//! ```text
//! cargo run --release --example anomaly_detection
//! ```

use invarnet_x::core::{PerformanceModel, ThresholdRule};
use invarnet_x::simulator::{FaultType, Runner, WorkloadType};

fn sparkline(values: &[f64], threshold: f64) -> String {
    values
        .iter()
        .map(|&v| if v > threshold { '#' } else { '.' })
        .collect()
}

fn main() {
    let runner = Runner::new(21);
    let node = Runner::DEFAULT_FAULT_NODE;
    let workload = WorkloadType::TpcDs;

    // Train on five normal CPI traces.
    let traces: Vec<Vec<f64>> = runner
        .normal_runs(workload, 5)
        .iter()
        .map(|r| r.per_node[node].cpi.cpi_series())
        .collect();
    let model = PerformanceModel::train(&traces, 1.2).expect("train");
    println!(
        "fitted {} on {} normal traces; residual stats: max {:.4}, p95 {:.4}",
        model.spec(),
        traces.len(),
        model.stats().max,
        model.stats().p95
    );

    // A CPU-hog occurrence.
    let incident = runner.fault_run(workload, FaultType::CpuHog, 3);
    let cpi = incident.per_node[node].cpi.cpi_series();
    let w0 = runner.fault_start_tick;
    let w1 = w0 + runner.fault_duration_ticks;
    println!("\nCPU-hog active over ticks {w0}..{w1}; per-tick residual exceedances:\n");

    for rule in ThresholdRule::ALL {
        let det = model.detect(&cpi, rule, 3);
        let exceed: Vec<f64> = det.residuals.clone();
        println!(
            "{:>14} (threshold {:.4}): {}",
            rule.name(),
            det.threshold,
            sparkline(&exceed, det.threshold)
        );
        match det.first_anomaly {
            Some(t) => println!("{:>14}  -> problem reported at tick {t}", ""),
            None => println!("{:>14}  -> no problem reported", ""),
        }
    }

    // And on a clean trace: only the over-sensitive rule chatters.
    let clean = runner.normal_run(workload, 99);
    let cpi = clean.per_node[node].cpi.cpi_series();
    println!("\nsame rules on a fault-free run (false-alarm check):\n");
    for rule in ThresholdRule::ALL {
        let det = model.detect(&cpi, rule, 3);
        let fired = det.exceedances.iter().filter(|&&e| e).count();
        println!(
            "{:>14}: {:3} raw exceedances, problem reported: {}",
            rule.name(),
            fired,
            det.is_anomalous()
        );
    }
}
