//! Recorded history + declarative RCA queries: attach an `ix-history`
//! store to the engine, stream simulated runs through it, then answer
//! questions the live pipeline cannot — after the fact, over everything
//! the engine ever saw.
//!
//! 1. train the engine offline and attach a columnar [`HistoryStore`];
//! 2. stream a healthy baseline run and several fault runs tick by tick;
//! 3. query the recording: ranked explanations (bit-identical to the live
//!    diagnosis), violation co-occurrence across runs, and a
//!    counterfactual with one metric pinned to its baseline behavior;
//! 4. round-trip the store through its on-disk format.
//!
//! ```text
//! cargo run --release --example query_history
//! ```

use invarnet_x::core::{Engine, InvarNetConfig, OperationContext};
use invarnet_x::history::HistoryStore;
use invarnet_x::metrics::{MetricFrame, MetricId};
use invarnet_x::query::Query;
use invarnet_x::simulator::{FaultType, RunResult, Runner, WorkloadType};

fn main() {
    let workload = WorkloadType::Wordcount;
    let runner = Runner::new(7);
    let node = Runner::DEFAULT_FAULT_NODE;
    let context = OperationContext::new(runner.nodes[node].ip(), workload.name());

    // ---------------------------------------------------------- offline --
    println!("== offline training for context {context} ==");
    let store = HistoryStore::builder().shared();
    let engine = Engine::builder()
        .config(InvarNetConfig::default())
        .history(store.clone())
        .build();

    let normals = runner.normal_runs(workload, 6);
    let cpi_traces: Vec<Vec<f64>> = normals[..5]
        .iter()
        .map(|r| r.per_node[node].cpi.cpi_series())
        .collect();
    engine
        .train_performance_model(context.clone(), &cpi_traces)
        .expect("train ARIMA on CPI");
    let frames: Vec<MetricFrame> = normals[..5]
        .iter()
        .map(|r| {
            let f = &r.per_node[node].frame;
            f.window(30..75.min(f.ticks()))
        })
        .collect();
    engine
        .build_invariants(context.clone(), &frames)
        .expect("Algorithm 1");
    for fault in [FaultType::CpuHog, FaultType::MemHog, FaultType::DiskHog] {
        let run = runner.fault_run(workload, fault, 100);
        engine
            .record_signature(&context, fault.name(), &run.fault_window().expect("window"))
            .expect("record signature");
    }
    println!(
        "invariants kept: {}/325   signatures: {}   history attached: {}",
        engine.invariant_set(&context).expect("built").len(),
        engine.with_signature_database(|db| db.len()),
        engine.has_history(),
    );

    // ----------------------------------------------------------- online --
    // Stream whole runs; every tick lands in the store as it is ingested.
    let stream = |run: &RunResult, stop_at_diagnosis: bool| {
        engine.reset_run(&context);
        let cpi = run.per_node[node].cpi.cpi_series();
        let frame = &run.per_node[node].frame;
        let mut live = None;
        for (t, &sample) in cpi.iter().enumerate().take(frame.ticks()) {
            let out = engine
                .ingest(&context, sample, frame.tick(t))
                .expect("ingest tick");
            if out.diagnosis.is_some() && live.is_none() {
                live = out.diagnosis;
                if stop_at_diagnosis {
                    break;
                }
            }
        }
        live
    };
    stream(&normals[5], false); // run 0: healthy baseline
    stream(&runner.fault_run(workload, FaultType::CpuHog, 3), false);
    stream(&runner.fault_run(workload, FaultType::MemHog, 4), false);
    // The last run stops at the diagnosis tick, so the recorded
    // current-run window is exactly the engine's diagnosis window.
    let live = stream(&runner.fault_run(workload, FaultType::MemHog, 7), true)
        .expect("the fault run diagnoses");
    println!(
        "\nstreamed {} runs; live diagnosis: {}",
        store.run_count(
            engine
                .context_registry()
                .lookup(&context)
                .expect("interned")
        ),
        live.root_cause().map_or("<none>", |c| c.problem.as_str()),
    );

    // ---------------------------------------------------------- queries --
    let query = Query::builder().engine(&engine).history(&store).build();

    // 1. Ranked explanations over the recorded window. The plan prints the
    //    scans it compiles to; the result is bit-identical to `live`.
    let explain = query.explanations(&context);
    println!("\n== explanations ==\n{}", explain.plan().expect("plan"));
    let recomputed = explain.rank().expect("rank");
    for (i, c) in recomputed.ranked.iter().take(3).enumerate() {
        println!(
            "  {}. {:10} similarity {:.3}",
            i + 1,
            c.problem,
            c.similarity
        );
    }
    assert_eq!(
        recomputed, live,
        "history window reproduces the live ranking"
    );
    println!("recomputed from history == live diagnosis: yes");
    let replayed = query
        .explanations(&context)
        .replay_recorded()
        .rank()
        .expect("replay");
    assert_eq!(replayed.ranked, live.ranked);
    println!("replayed from recorded sweep scores == live diagnosis: yes");

    // 2. Which invariants break *together* across all recorded diagnoses?
    let cooccur = query.cooccurrence().compute().expect("co-occurrence");
    println!("\n== co-occurrence over {} diagnoses ==", cooccur.diagnoses);
    let invariants = engine.invariant_set(&context).expect("built");
    for pair in cooccur.pairs.iter().take(5) {
        let (a1, a2) = invariants.metrics_of(pair.a);
        let (b1, b2) = invariants.metrics_of(pair.b);
        println!("  {:>2}x  [{a1} ~ {a2}] with [{b1} ~ {b2}]", pair.count);
    }

    // 3. Counterfactual: would the violations survive if swap usage had
    //    behaved like the healthy baseline run?
    let report = query
        .counterfactual(&context, MetricId::SwapUsed)
        .baseline_run(0)
        .compute()
        .expect("counterfactual");
    println!(
        "\n== counterfactual: pin {} to baseline ==\n\
         factual violations {}, cleared {}, introduced {}, attribution {:.2}",
        report.pinned,
        report.factual.violation_count(),
        report.cleared.len(),
        report.introduced.len(),
        report.attribution,
    );

    // ------------------------------------------------------- round-trip --
    let bytes = store.to_bytes();
    let reloaded = HistoryStore::from_bytes(&bytes).expect("parse IXHIST01");
    assert_eq!(reloaded.to_bytes(), bytes, "canonical on-disk format");
    println!(
        "\nhistory serialized to {} bytes; reload round-trip is byte-identical",
        bytes.len()
    );
}
