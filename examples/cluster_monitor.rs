//! Centralized cluster monitor — the paper's Fig. 3 architecture as a
//! running loop: one InvarNet-X instance holds per-context models for every
//! (workload, node) pair; jobs arrive, CPI is scored online, and cause
//! inference fires only when the detector does.
//!
//! ```text
//! cargo run --release --example cluster_monitor
//! ```

use invarnet_x::core::{Engine, InvarNetConfig, InvarNetX, OperationContext, Telemetry};
use invarnet_x::metrics::MetricFrame;
use invarnet_x::simulator::{FaultType, Runner, WorkloadType};

fn main() {
    let runner = Runner::new(99);
    let node = Runner::DEFAULT_FAULT_NODE;
    let workloads = [
        WorkloadType::Wordcount,
        WorkloadType::Sort,
        WorkloadType::TpcDs,
    ];
    let known_faults = [
        FaultType::CpuHog,
        FaultType::MemHog,
        FaultType::DiskHog,
        FaultType::NetDrop,
        FaultType::Suspend,
    ];

    // ---- offline: train one context per workload on the observed node ----
    let telemetry = Telemetry::shared();
    let mut system = InvarNetX::from_engine(
        Engine::builder()
            .config(InvarNetConfig::default())
            .telemetry(&telemetry)
            .build(),
    );
    println!("== training contexts ==");
    for &workload in &workloads {
        let context = OperationContext::new(runner.nodes[node].ip(), workload.name());
        let normals = runner.normal_runs(workload, 5);
        let cpi: Vec<Vec<f64>> = normals
            .iter()
            .map(|r| r.per_node[node].cpi.cpi_series())
            .collect();
        system
            .train_performance_model(context.clone(), &cpi)
            .expect("CPI model");
        let window = |frame: &MetricFrame| {
            let len = runner.fault_duration_ticks;
            let start = runner
                .fault_start_tick
                .min(frame.ticks().saturating_sub(len));
            frame.window(start..(start + len).min(frame.ticks()))
        };
        let frames: Vec<MetricFrame> = normals
            .iter()
            .map(|r| window(&r.per_node[node].frame))
            .collect();
        system
            .build_invariants(context.clone(), &frames)
            .expect("invariants");
        for &fault in &known_faults {
            if fault.interactive_only() && workload.is_batch() {
                continue;
            }
            for idx in 0..2 {
                let r = runner.fault_run(workload, fault, idx);
                system
                    .record_signature(&context, fault.name(), &r.fault_window().expect("window"))
                    .expect("signature");
            }
        }
        println!(
            "  {context}: {} invariants, ARIMA {}",
            system.invariant_set(&context).expect("built").len(),
            system.performance_model(&context).expect("trained").spec()
        );
    }

    // ---- online: a stream of jobs, some of them sick -------------------
    println!("\n== monitoring a job stream ==");
    let schedule: [(WorkloadType, Option<FaultType>); 6] = [
        (WorkloadType::Wordcount, None),
        (WorkloadType::Sort, Some(FaultType::DiskHog)),
        (WorkloadType::TpcDs, None),
        (WorkloadType::Wordcount, Some(FaultType::NetDrop)),
        (WorkloadType::TpcDs, Some(FaultType::Suspend)),
        (WorkloadType::Sort, None),
    ];
    for (job_id, &(workload, fault)) in schedule.iter().enumerate() {
        let context = OperationContext::new(runner.nodes[node].ip(), workload.name());
        let run = match fault {
            Some(f) => runner.fault_run(workload, f, 40 + job_id),
            None => runner.normal_run(workload, 40 + job_id),
        };
        let cpi = run.per_node[node].cpi.cpi_series();
        // The diagnosis window: around the detection point (here: the
        // standard injection window for simplicity).
        let frame = &run.per_node[node].frame;
        let len = runner.fault_duration_ticks;
        let start = runner
            .fault_start_tick
            .min(frame.ticks().saturating_sub(len));
        let window = frame.window(start..(start + len).min(frame.ticks()));

        let (det, diagnosis) = system
            .process(&context, &cpi, &window)
            .expect("trained context");
        let truth = fault.map_or("healthy".to_string(), |f| f.name().to_string());
        match (det.first_anomaly, diagnosis) {
            (None, _) => println!("job {job_id} [{context}] OK        (truth: {truth})"),
            (Some(t), Some(d)) => {
                let cause = d.root_cause().expect("ranked");
                println!(
                    "job {job_id} [{context}] ANOMALY at tick {t} -> {} ({:.2})  (truth: {truth})",
                    cause.problem, cause.similarity
                );
            }
            (Some(t), None) => {
                println!(
                    "job {job_id} [{context}] ANOMALY at tick {t}, no diagnosis (truth: {truth})"
                )
            }
        }
    }

    // ---- what the monitor itself cost, per context ---------------------
    println!("\n== engine telemetry ==\n{}", telemetry.render_report());
}
