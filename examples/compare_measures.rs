//! MIC vs ARX vs Pearson as association measures — the paper's core
//! methodological argument: MIC discovers nonlinear associations that
//! linear measures miss, which is what makes its invariants richer.
//!
//! This example scores a few synthetic relationships and then shows how
//! measure choice changes the invariant count on real simulator output.
//!
//! ```text
//! cargo run --release --example compare_measures
//! ```

use invarnet_x::core::{
    ArxMeasure, AssociationMatrix, AssociationMeasure, InvariantSet, MicMeasure, PearsonMeasure,
};
use invarnet_x::metrics::MetricFrame;
use invarnet_x::simulator::{Runner, WorkloadType};

fn lcg(seed: u64, n: usize) -> Vec<f64> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / (1u64 << 31) as f64 - 1.0
        })
        .collect()
}

fn main() {
    let mic = MicMeasure::default();
    let arx = ArxMeasure::default();
    let pearson = PearsonMeasure;
    let measures: [(&str, &dyn AssociationMeasure); 3] =
        [("MIC", &mic), ("ARX", &arx), ("Pearson", &pearson)];

    println!("association scores on synthetic relationships (n = 300):\n");
    let x = lcg(1, 300);
    let relationships: [(&str, Vec<f64>); 4] = [
        ("linear      y = 2x", x.iter().map(|v| 2.0 * v).collect()),
        ("quadratic   y = x^2", x.iter().map(|v| v * v).collect()),
        (
            "cosine      y = cos 6x",
            x.iter().map(|v| (6.0 * v).cos()).collect(),
        ),
        ("independent noise", lcg(2, 300)),
    ];
    println!(
        "{:22} {:>8} {:>8} {:>8}",
        "relationship", "MIC", "ARX", "Pearson"
    );
    for (name, y) in &relationships {
        let scores: Vec<String> = measures
            .iter()
            .map(|(_, m)| format!("{:8.3}", m.score(&x, y)))
            .collect();
        println!("{:22} {}", name, scores.join(" "));
    }

    // On simulator output: how many pairs does each measure keep stable?
    println!("\ninvariants kept by Algorithm 1 (tau = 0.2) on 5 normal Wordcount runs:\n");
    let runner = Runner::new(5);
    let node = Runner::DEFAULT_FAULT_NODE;
    let frames: Vec<MetricFrame> = runner
        .normal_runs(WorkloadType::Wordcount, 5)
        .iter()
        .map(|r| {
            let f = &r.per_node[node].frame;
            f.window(30..75.min(f.ticks()))
        })
        .collect();
    for (name, m) in measures {
        let mats: Vec<AssociationMatrix> = frames
            .iter()
            .map(|f| AssociationMatrix::compute(f, &MeasureShim(m), 4))
            .collect();
        let set = InvariantSet::select(&mats, 0.2);
        println!("{:8}: {}/325 pairs stable", name, set.len());
    }
}

/// Thin adapter: `&dyn AssociationMeasure` as a concrete measure.
struct MeasureShim<'a>(&'a dyn AssociationMeasure);

impl AssociationMeasure for MeasureShim<'_> {
    fn score(&self, x: &[f64], y: &[f64]) -> f64 {
        self.0.score(x, y)
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
}
