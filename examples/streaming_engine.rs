//! Streaming diagnosis with the layered engine: one CPI sample and one
//! 26-metric row per tick, the way a live collectl/perf exporter feeds a
//! monitoring daemon.
//!
//! 1. simulate normal Wordcount runs and train the engine offline;
//! 2. replay a fault run tick by tick through `Engine::ingest`;
//! 3. watch the detection fire at the anomaly onset, get the ranked
//!    diagnosis from the sliding window, and dump the telemetry report
//!    (per-context counters plus sweep/diagnosis latency quantiles).
//!
//! ```text
//! cargo run --release --example streaming_engine
//! ```

use invarnet_x::core::{Engine, InvarNetConfig, OperationContext, Telemetry};
use invarnet_x::metrics::MetricFrame;
use invarnet_x::simulator::{FaultType, Runner, WorkloadType};

fn main() {
    let workload = WorkloadType::Wordcount;
    let runner = Runner::new(7);
    let node = Runner::DEFAULT_FAULT_NODE;
    let context = OperationContext::new(runner.nodes[node].ip(), workload.name());

    // ---------------------------------------------------------- offline --
    println!("== offline training for context {context} ==");
    let telemetry = Telemetry::shared();
    let engine = Engine::builder()
        .config(InvarNetConfig {
            window_ticks: runner.fault_duration_ticks,
            ..InvarNetConfig::default()
        })
        .telemetry(&telemetry)
        .build();

    let normals = runner.normal_runs(workload, 6);
    let cpi_traces: Vec<Vec<f64>> = normals
        .iter()
        .map(|r| r.per_node[node].cpi.cpi_series())
        .collect();
    engine
        .train_performance_model(context.clone(), &cpi_traces)
        .expect("train ARIMA on CPI");

    // Invariants on windows shaped like the online sliding window.
    let window = |frame: &MetricFrame| {
        let len = runner.fault_duration_ticks;
        let start = runner
            .fault_start_tick
            .min(frame.ticks().saturating_sub(len));
        frame.window(start..(start + len).min(frame.ticks()))
    };
    let frames: Vec<MetricFrame> = normals
        .iter()
        .map(|r| window(&r.per_node[node].frame))
        .collect();
    engine
        .build_invariants(context.clone(), &frames)
        .expect("Algorithm 1");
    println!(
        "detector: {}   invariants kept: {}/325   shards: {}   sweep workers: {}",
        engine.detector(&context).expect("trained").name(),
        engine.invariant_set(&context).expect("built").len(),
        engine.state_shards(),
        engine.threads(),
    );

    // Training signatures: two runs per investigated fault.
    for fault in [
        FaultType::CpuHog,
        FaultType::MemHog,
        FaultType::DiskHog,
        FaultType::NetDrop,
        FaultType::Suspend,
    ] {
        for k in 0..2 {
            let run = runner.fault_run(workload, fault, 100 + k);
            engine
                .record_signature(
                    &context,
                    fault.name(),
                    &run.fault_window().expect("fault window"),
                )
                .expect("record signature");
        }
    }
    println!(
        "signatures recorded: {}",
        engine.with_signature_database(|db| db.len())
    );

    // ----------------------------------------------------------- online --
    // A fresh Mem-hog run, streamed tick by tick as it would arrive live.
    let fault = FaultType::MemHog;
    let live = runner.fault_run(workload, fault, 7);
    let cpi = live.per_node[node].cpi.cpi_series();
    let metrics = &live.per_node[node].frame;
    println!(
        "\n== streaming a fresh {} run, {} ticks ==",
        fault.name(),
        cpi.len()
    );

    for (t, &sample) in cpi.iter().enumerate() {
        let out = engine
            .ingest(&context, sample, metrics.tick(t))
            .expect("ingest tick");
        if let Some(diagnosis) = out.diagnosis {
            println!(
                "tick {:3}: anomaly onset (residual {:.4} > threshold), diagnosing...",
                out.tick, out.residual
            );
            for (i, c) in diagnosis.ranked.iter().take(3).enumerate() {
                println!(
                    "   {}. {:10} similarity {:.3}",
                    i + 1,
                    c.problem,
                    c.similarity
                );
            }
            let verdict = diagnosis.root_cause().map(|c| c.problem.as_str());
            println!(
                "   injected: {}   diagnosed: {}   {}",
                fault.name(),
                verdict.unwrap_or("<none>"),
                if verdict == Some(fault.name()) {
                    "✓"
                } else {
                    "✗"
                },
            );
        }
    }

    let detection = engine.detection_result(&context).expect("run accumulated");
    println!(
        "\nrun summary: first anomaly at {:?}, {} anomalous ticks",
        detection.first_anomaly,
        detection.anomalies.iter().filter(|&&a| a).count(),
    );
    let snapshot = telemetry.snapshot();
    println!(
        "telemetry: {} ticks, {} detections, {} diagnoses, {} sweeps ({} pairs scored)",
        snapshot.total.ticks,
        snapshot.total.detections,
        snapshot.total.diagnoses,
        snapshot.total.sweeps,
        snapshot.total.pairs_scored,
    );
    println!("\n== engine telemetry ==\n{}", snapshot.render_report());
}
