//! Signature-database explorer: builds invariants and signatures for every
//! batch fault, prints which invariant pairs each fault violates (the
//! "hints" the paper hands to administrators for unknown problems), and
//! dumps the paper-style XML store.
//!
//! ```text
//! cargo run --release --example signature_explorer
//! ```

use invarnet_x::core::{to_xml, InvarNetConfig, InvarNetX, ModelStore, OperationContext};
use invarnet_x::metrics::MetricFrame;
use invarnet_x::simulator::{FaultType, Runner, WorkloadType};

fn main() {
    let workload = WorkloadType::Sort;
    let runner = Runner::new(33);
    let node = Runner::DEFAULT_FAULT_NODE;
    let context = OperationContext::new(runner.nodes[node].ip(), workload.name());

    let mut system = InvarNetX::new(InvarNetConfig::default());
    let normals = runner.normal_runs(workload, 6);
    let window = |frame: &MetricFrame| {
        let len = runner.fault_duration_ticks;
        let start = runner
            .fault_start_tick
            .min(frame.ticks().saturating_sub(len));
        frame.window(start..(start + len).min(frame.ticks()))
    };
    let frames: Vec<MetricFrame> = normals
        .iter()
        .map(|r| window(&r.per_node[node].frame))
        .collect();
    system
        .build_invariants(context.clone(), &frames)
        .expect("Algorithm 1");
    let cpi: Vec<Vec<f64>> = normals
        .iter()
        .map(|r| r.per_node[node].cpi.cpi_series())
        .collect();
    system
        .train_performance_model(context.clone(), &cpi)
        .expect("ARIMA");

    let invariants = system.invariant_set(&context).expect("built").clone();
    println!(
        "invariants for {context}: {} of 325 pairs\n",
        invariants.len()
    );

    // One signature per batch fault; show its most-violated pairs.
    for fault in FaultType::ALL.iter().filter(|f| !f.interactive_only()) {
        let r = runner.fault_run(workload, *fault, 0);
        let w = r.fault_window().expect("window");
        let tuple = system.violation_tuple(&context, &w).expect("tuple");
        system
            .record_signature(&context, fault.name(), &w)
            .expect("record");

        let mut violated: Vec<(f64, usize)> = tuple
            .graded()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0.0)
            .map(|(k, &v)| (v, k))
            .collect();
        violated.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
        let top: Vec<String> = violated
            .iter()
            .take(3)
            .map(|&(v, k)| {
                let (a, b) = invariants.metrics_of(k);
                format!("{a}~{b} ({v:.2})")
            })
            .collect();
        println!(
            "{:10} violations {:3}/{:3}  strongest: {}",
            fault.name(),
            tuple.violation_count(),
            tuple.len(),
            top.join(", ")
        );
    }

    // Persist and show the paper-style XML view (truncated).
    let mut store = ModelStore::new();
    store.put_model(
        &context,
        system.performance_model(&context).expect("trained"),
    );
    store.put_invariants(&context, &invariants);
    store.signatures = system.signature_database();
    let xml = to_xml(&store);
    println!(
        "\npaper-style XML store ({} bytes), first lines:",
        xml.len()
    );
    for line in xml.lines().take(6) {
        println!("  {line}");
    }
    println!("  ...");
}
