//! Quickstart: the full InvarNet-X loop on a simulated Hadoop cluster.
//!
//! 1. simulate normal Wordcount runs and train the per-context models;
//! 2. record training signatures for a handful of investigated faults;
//! 3. inject a fresh fault, detect the CPI anomaly, and diagnose it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use invarnet_x::core::{InvarNetConfig, InvarNetX, OperationContext};
use invarnet_x::metrics::MetricFrame;
use invarnet_x::simulator::{FaultType, Runner, WorkloadType};

fn main() {
    let workload = WorkloadType::Wordcount;
    let runner = Runner::new(7);
    let node = Runner::DEFAULT_FAULT_NODE;
    let context = OperationContext::new(runner.nodes[node].ip(), workload.name());

    // ---------------------------------------------------------- offline --
    println!("== offline training for context {context} ==");
    let mut system = InvarNetX::new(InvarNetConfig::default());

    // N normal runs: CPI traces feed the ARIMA performance model, metric
    // windows feed Algorithm 1 (invariant selection).
    let normals = runner.normal_runs(workload, 6);
    let cpi_traces: Vec<Vec<f64>> = normals
        .iter()
        .map(|r| r.per_node[node].cpi.cpi_series())
        .collect();
    system
        .train_performance_model(context.clone(), &cpi_traces)
        .expect("train ARIMA on CPI");

    let window = |frame: &MetricFrame| {
        let len = runner.fault_duration_ticks;
        let start = runner
            .fault_start_tick
            .min(frame.ticks().saturating_sub(len));
        frame.window(start..(start + len).min(frame.ticks()))
    };
    let frames: Vec<MetricFrame> = normals
        .iter()
        .map(|r| window(&r.per_node[node].frame))
        .collect();
    system
        .build_invariants(context.clone(), &frames)
        .expect("Algorithm 1");
    let inv = system.invariant_set(&context).expect("invariants built");
    println!(
        "ARIMA model: {}   invariants kept: {}/325",
        system.performance_model(&context).expect("trained").spec(),
        inv.len()
    );

    // Training signatures: two runs per investigated fault.
    let known_faults = [
        FaultType::CpuHog,
        FaultType::MemHog,
        FaultType::DiskHog,
        FaultType::NetDrop,
        FaultType::Suspend,
    ];
    for fault in known_faults {
        for run_idx in 0..2 {
            let r = runner.fault_run(workload, fault, run_idx);
            let w = r.fault_window().expect("fault window");
            system
                .record_signature(&context, fault.name(), &w)
                .expect("record signature");
        }
    }
    println!(
        "signature database: {} records\n",
        system.with_signature_database(|db| db.len())
    );

    // ----------------------------------------------------------- online --
    println!("== online: a fresh Mem-hog occurrence ==");
    let incident = runner.fault_run(workload, FaultType::MemHog, 9);
    let cpi = incident.per_node[node].cpi.cpi_series();
    let w = incident.fault_window().expect("fault window");

    let (detection, diagnosis) = system
        .process(&context, &cpi, &w)
        .expect("online processing");
    match detection.first_anomaly {
        Some(t) => println!(
            "anomaly detected at tick {t} (threshold {:.4}, fault injected at tick {})",
            detection.threshold, runner.fault_start_tick
        ),
        None => println!("no anomaly detected"),
    }
    if let Some(d) = diagnosis {
        println!(
            "violated invariants: {}/{}",
            d.tuple.violation_count(),
            d.tuple.len()
        );
        println!("ranked root causes:");
        for (rank, cause) in d.ranked.iter().enumerate().take(3) {
            println!(
                "  {}. {:10}  similarity {:.3}",
                rank + 1,
                cause.problem,
                cause.similarity
            );
        }
    }
}
