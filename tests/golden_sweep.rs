//! Bit-exactness acceptance suite for the shared-profile sweep and the
//! incremental two-stage (screen-then-confirm) sweep.
//!
//! `tests/data/golden_sweep_26x120.txt` holds the exact IEEE-754 bit
//! pattern of all 325 pairwise scores on a fixed synthetic 26×120 window,
//! for MIC (fast params), ARX and Pearson — captured from the
//! pre-profile-cache kernel. The optimized path (per-series profiles,
//! allocation-free scratch kernel, work-stealing pool) must reproduce
//! every score bit-for-bit, serial and parallel alike. Regenerate the
//! fixture only on a deliberate numeric change:
//! `cargo run --release -p ix-bench --bin golden_sweep`.
//!
//! The property half pins the incremental sweep's soundness contract
//! (see `crates/core/src/incremental.rs`):
//!
//! - **no false negatives** — the screen's conservative bound never
//!   exceeds the full MIC score, at the bit level, so a pair screened out
//!   because `[bound, 1]` cannot cross the violation threshold can never
//!   disagree with the full kernel;
//! - **bit-exactness hammer** — over randomized tick streams, a diagnosis
//!   built from delta-maintained state is bit-identical (violation tuple
//!   and every consulted score) to a full from-scratch sweep of the same
//!   window.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use invarnet_x::core::{
    pair_count, AdvanceOutcome, ArxMeasure, AssociationMatrix, AssociationMeasure,
    IncrementalSweep, InvariantSet, MicMeasure, PearsonMeasure, SweepPool, ViolationTuple,
    MAX_SLIDE,
};
use invarnet_x::metrics::{MetricFrame, MetricId, METRIC_COUNT};
use invarnet_x::mic::{
    mic_screen_bound_scratch, mic_with_profiles_scratch, MicParams, MineScratch, SeriesProfile,
};

/// The fixed window: identical to the generator in the `golden_sweep`
/// fixture binary (`crates/bench/src/bin/golden_sweep.rs`).
fn frame(ticks: usize) -> MetricFrame {
    let mut f = MetricFrame::new();
    let mut state = 42u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for t in 0..ticks {
        let latent = (t as f64 * 0.23).sin() * 5.0 + 10.0 + 0.2 * next();
        let row: Vec<f64> = (0..METRIC_COUNT)
            .map(|k| {
                let v = latent * (k + 1) as f64 + 0.1 * next();
                if k % 2 == 0 {
                    (v * 8.0).round() / 8.0
                } else {
                    v
                }
            })
            .collect();
        f.push_tick(&row).expect("full-width row");
    }
    f
}

/// Parses the fixture into `measure -> bits-per-pair-index`.
fn golden() -> HashMap<String, Vec<u64>> {
    let text = include_str!("data/golden_sweep_26x120.txt");
    let mut out: HashMap<String, Vec<u64>> = HashMap::new();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let name = parts.next().expect("measure name").to_string();
        let idx: usize = parts.next().expect("pair index").parse().unwrap();
        let bits = u64::from_str_radix(parts.next().expect("bit pattern"), 16).unwrap();
        let scores = out.entry(name).or_default();
        assert_eq!(scores.len(), idx, "fixture indices must be dense");
        scores.push(bits);
    }
    out
}

fn assert_matches_golden(
    name: &str,
    matrix: &AssociationMatrix,
    golden: &HashMap<String, Vec<u64>>,
) {
    let expected = &golden[name];
    assert_eq!(matrix.scores().len(), expected.len(), "{name}: pair count");
    for (idx, (score, &bits)) in matrix.scores().iter().zip(expected).enumerate() {
        assert_eq!(
            score.to_bits(),
            bits,
            "{name}: pair {idx} drifted ({} vs golden {})",
            score,
            f64::from_bits(bits)
        );
    }
}

#[test]
fn optimized_sweep_reproduces_golden_bits_for_every_measure() {
    let window = frame(120);
    let golden = golden();
    let measures: [(&str, Arc<dyn AssociationMeasure>); 3] = [
        ("mic_fast", Arc::new(MicMeasure::new(MicParams::fast()))),
        ("arx", Arc::new(ArxMeasure::default())),
        ("pearson", Arc::new(PearsonMeasure)),
    ];
    for (name, measure) in &measures {
        // Serial, statically threaded, and persistent work-stealing pool
        // must all land on the recorded bits.
        for threads in [1, 4] {
            let matrix = AssociationMatrix::compute(&window, measure.as_ref(), threads);
            assert_matches_golden(name, &matrix, &golden);
        }
        let pool = SweepPool::new(4);
        assert_matches_golden(name, &pool.sweep(&window, measure), &golden);
    }
}

#[test]
fn fixture_is_complete() {
    let golden = golden();
    assert_eq!(golden.len(), 3, "three measures");
    for (name, scores) in &golden {
        assert_eq!(scores.len(), 325, "{name}: 26 metrics -> 325 pairs");
    }
}

// ---------------------------------------------------------------------------
// Incremental two-stage sweep properties.
// ---------------------------------------------------------------------------

/// One tick of a deterministic infinite metric stream: a latent sinusoid
/// per metric plus hash noise keyed on `(seed, t, k)` only, so two windows
/// at overlapping offsets share their overlap bit-for-bit — the property
/// the slide detector relies on.
fn stream_value(seed: u64, t: usize, k: usize) -> f64 {
    let mut h = seed
        ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ ((k as u64) << 40).wrapping_add(0x2545_f491_4f6c_dd1d);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    let noise = (h >> 11) as f64 / (1u64 << 53) as f64;
    (t as f64 * 0.21).sin() * 4.0 * (k + 1) as f64 + 10.0 * (k + 1) as f64 + noise
}

/// The stream's window `[offset, offset + ticks)` as a batch frame.
fn streamed_window(seed: u64, offset: usize, ticks: usize) -> MetricFrame {
    let mut f = MetricFrame::new();
    for t in offset..offset + ticks {
        let row: Vec<f64> = (0..METRIC_COUNT)
            .map(|k| stream_value(seed, t, k))
            .collect();
        f.push_tick(&row).expect("full-width row");
    }
    f
}

fn series_of(frame: &MetricFrame) -> Vec<Vec<f64>> {
    MetricId::ALL.iter().map(|&m| frame.series(m)).collect()
}

proptest! {
    // No false negatives: the screen's conservative bound is one entry of
    // the characteristic set the full kernel maximizes over, so
    // `bound <= mic` must hold bit-exactly — on unrelated noise and on
    // strongly associated (affine-image) pairs alike.
    #[test]
    fn screen_bound_never_exceeds_full_mic(
        xs in prop::collection::vec(-100.0f64..100.0, 8..48),
        ys in prop::collection::vec(-100.0f64..100.0, 8..48),
        scale in 0.1f64..5.0,
        shift in -20.0f64..20.0,
    ) {
        let n = xs.len().min(ys.len());
        let params = MicParams::fast();
        let linked: Vec<f64> = xs[..n].iter().map(|v| scale * v + shift).collect();
        for other in [&ys[..n], &linked[..]] {
            let xp = SeriesProfile::build(&xs[..n], &params).expect("profile");
            let yp = SeriesProfile::build(other, &params).expect("profile");
            let mut scratch = MineScratch::new();
            let bound = mic_screen_bound_scratch(&xp, &yp, &params, &mut scratch).expect("bound");
            let full = mic_with_profiles_scratch(&xp, &yp, &params, &mut scratch).expect("mic");
            prop_assert!((0.0..=1.0).contains(&bound), "bound {} out of range", bound);
            prop_assert!(
                bound <= full,
                "screen bound {} exceeds full MIC {} — a screened pair could be a false negative",
                bound,
                full
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Bit-exactness hammer: drive one IncrementalSweep through a random
    // stream of window shifts (including zero-shift repeats) and check
    // after every advance that the violation tuple — and every score the
    // tuple consults — is indistinguishable from a full from-scratch
    // sweep of the same window.
    #[test]
    fn incremental_sweep_matches_from_scratch_over_random_streams(
        seed in 0u64..10_000,
        shifts in prop::collection::vec(0usize..MAX_SLIDE + 1, 1..5),
        epsilon in 0.02f64..0.4,
    ) {
        let ticks = 30;
        let mic_measure = MicMeasure::new(MicParams::fast());
        let measure: Arc<dyn AssociationMeasure> = Arc::new(MicMeasure::new(MicParams::fast()));
        let pool = SweepPool::new(2);
        let mut offset = 0usize;
        let base = streamed_window(seed, offset, ticks);
        let matrix = AssociationMatrix::compute(&base, &mic_measure, 1);
        let invariants = InvariantSet::select(std::slice::from_ref(&matrix), 0.2);
        let mut inc = IncrementalSweep::seed(
            &measure,
            &pool,
            series_of(&base),
            matrix.scores().to_vec(),
        )
        .expect("MIC plans support delta maintenance");
        for &shift in &shifts {
            offset += shift;
            let next = streamed_window(seed, offset, ticks);
            let outcome = inc.advance(&series_of(&next));
            if shift == 0 {
                prop_assert_eq!(outcome, AdvanceOutcome::Identical);
            } else {
                prop_assert_eq!(outcome, AdvanceOutcome::Advanced { shift });
            }
            let screen = inc.rescore(&invariants, epsilon);
            prop_assert_eq!(
                screen.reused + screen.screened + screen.confirmed,
                pair_count()
            );
            let fresh = AssociationMatrix::compute(&next, &mic_measure, 1);
            let inc_tuple = ViolationTuple::build(&invariants, &inc.matrix(), epsilon);
            let fresh_tuple = ViolationTuple::build(&invariants, &fresh, epsilon);
            prop_assert_eq!(inc_tuple, fresh_tuple, "offset {} shift {}", offset, shift);
            // Wherever MIC was actually consulted the score is bit-exact;
            // screened pairs may keep the cache only when both scores
            // provably grade to zero deviation.
            for e in invariants.entries() {
                let got = inc.matrix().at(e.pair);
                let want = fresh.at(e.pair);
                let both_zero_grade =
                    (e.value - got).abs() < epsilon && (e.value - want).abs() < epsilon;
                prop_assert!(
                    got.to_bits() == want.to_bits() || both_zero_grade,
                    "pair {}: incremental {} vs fresh {} (offset {})",
                    e.pair,
                    got,
                    want,
                    offset
                );
            }
        }
    }
}
