//! Bit-exactness acceptance suite for the shared-profile sweep.
//!
//! `tests/data/golden_sweep_26x120.txt` holds the exact IEEE-754 bit
//! pattern of all 325 pairwise scores on a fixed synthetic 26×120 window,
//! for MIC (fast params), ARX and Pearson — captured from the
//! pre-profile-cache kernel. The optimized path (per-series profiles,
//! allocation-free scratch kernel, work-stealing pool) must reproduce
//! every score bit-for-bit, serial and parallel alike. Regenerate the
//! fixture only on a deliberate numeric change:
//! `cargo run --release -p ix-bench --bin golden_sweep`.

use std::collections::HashMap;
use std::sync::Arc;

use invarnet_x::core::{
    ArxMeasure, AssociationMatrix, AssociationMeasure, MicMeasure, PearsonMeasure, SweepPool,
};
use invarnet_x::metrics::{MetricFrame, METRIC_COUNT};
use invarnet_x::mic::MicParams;

/// The fixed window: identical to the generator in the `golden_sweep`
/// fixture binary (`crates/bench/src/bin/golden_sweep.rs`).
fn frame(ticks: usize) -> MetricFrame {
    let mut f = MetricFrame::new();
    let mut state = 42u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for t in 0..ticks {
        let latent = (t as f64 * 0.23).sin() * 5.0 + 10.0 + 0.2 * next();
        let row: Vec<f64> = (0..METRIC_COUNT)
            .map(|k| {
                let v = latent * (k + 1) as f64 + 0.1 * next();
                if k % 2 == 0 {
                    (v * 8.0).round() / 8.0
                } else {
                    v
                }
            })
            .collect();
        f.push_tick(&row).expect("full-width row");
    }
    f
}

/// Parses the fixture into `measure -> bits-per-pair-index`.
fn golden() -> HashMap<String, Vec<u64>> {
    let text = include_str!("data/golden_sweep_26x120.txt");
    let mut out: HashMap<String, Vec<u64>> = HashMap::new();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let name = parts.next().expect("measure name").to_string();
        let idx: usize = parts.next().expect("pair index").parse().unwrap();
        let bits = u64::from_str_radix(parts.next().expect("bit pattern"), 16).unwrap();
        let scores = out.entry(name).or_default();
        assert_eq!(scores.len(), idx, "fixture indices must be dense");
        scores.push(bits);
    }
    out
}

fn assert_matches_golden(
    name: &str,
    matrix: &AssociationMatrix,
    golden: &HashMap<String, Vec<u64>>,
) {
    let expected = &golden[name];
    assert_eq!(matrix.scores().len(), expected.len(), "{name}: pair count");
    for (idx, (score, &bits)) in matrix.scores().iter().zip(expected).enumerate() {
        assert_eq!(
            score.to_bits(),
            bits,
            "{name}: pair {idx} drifted ({} vs golden {})",
            score,
            f64::from_bits(bits)
        );
    }
}

#[test]
fn optimized_sweep_reproduces_golden_bits_for_every_measure() {
    let window = frame(120);
    let golden = golden();
    let measures: [(&str, Arc<dyn AssociationMeasure>); 3] = [
        ("mic_fast", Arc::new(MicMeasure::new(MicParams::fast()))),
        ("arx", Arc::new(ArxMeasure::default())),
        ("pearson", Arc::new(PearsonMeasure)),
    ];
    for (name, measure) in &measures {
        // Serial, statically threaded, and persistent work-stealing pool
        // must all land on the recorded bits.
        for threads in [1, 4] {
            let matrix = AssociationMatrix::compute(&window, measure.as_ref(), threads);
            assert_matches_golden(name, &matrix, &golden);
        }
        let pool = SweepPool::new(4);
        assert_matches_golden(name, &pool.sweep(&window, measure), &golden);
    }
}

#[test]
fn fixture_is_complete() {
    let golden = golden();
    assert_eq!(golden.len(), 3, "three measures");
    for (name, scores) in &golden {
        assert_eq!(scores.len(), 325, "{name}: 26 metrics -> 325 pairs");
    }
}
