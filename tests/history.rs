//! History-backed diagnosis parity: attaching an `ix-history` recorder
//! must not change what the engine computes — only record it.
//!
//! Two identically trained engines stream the same simulated fault run;
//! one records into a [`HistoryStore`], the other runs bare. Every
//! per-tick outcome, every diagnosis and every event (modulo wall-clock
//! timing fields) must be bit-identical, and `ix-query` explanations
//! over the recording must reproduce the live ranking bit-exactly.

use std::sync::{Arc, Mutex, PoisonError};

use invarnet_x::core::{
    AssociationMatrix, Engine, EngineEvent, EventSink, InvarNetConfig, OperationContext,
};
use invarnet_x::history::HistoryStore;
use invarnet_x::query::Query;
use invarnet_x::simulator::{FaultType, RunResult, Runner, WorkloadType};

/// An [`EventSink`] that keeps every event, so the bare twin's stream can
/// be compared against what the recorder captured.
#[derive(Default)]
struct VecSink(Mutex<Vec<EngineEvent>>);

impl EventSink for VecSink {
    fn record(&self, event: &EngineEvent) {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(*event);
    }
}

impl VecSink {
    fn events(&self) -> Vec<EngineEvent> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// Zeroes the wall-clock fields so two otherwise-identical event streams
/// compare equal, and drops the events whose multiplicity or order depends
/// on worker-pool scheduling rather than on what was computed.
fn normalize(events: &[EngineEvent]) -> Vec<EngineEvent> {
    events
        .iter()
        .filter(|e| {
            !matches!(
                e,
                EngineEvent::PairsScored { .. } | EngineEvent::SpanClosed { .. }
            )
        })
        .map(|e| match *e {
            EngineEvent::TickIngested {
                context,
                tick,
                residual,
                exceeded,
                ..
            } => EngineEvent::TickIngested {
                context,
                tick,
                residual,
                exceeded,
                micros: 0,
            },
            EngineEvent::DiagnosisRan { context, tick, .. } => EngineEvent::DiagnosisRan {
                context,
                tick,
                micros: 0,
            },
            EngineEvent::SweepCompleted { context, pairs, .. } => EngineEvent::SweepCompleted {
                context,
                pairs,
                micros: 0,
            },
            other => other,
        })
        .collect()
}

/// One identically trained engine per call: deterministic simulator data,
/// wired through the caller's builder customization.
fn trained_engine(
    wire: impl FnOnce(invarnet_x::core::EngineBuilder) -> invarnet_x::core::EngineBuilder,
) -> (Engine, OperationContext, RunResult) {
    let runner = Runner::new(11);
    let node = Runner::DEFAULT_FAULT_NODE;
    let workload = WorkloadType::Wordcount;
    let context = OperationContext::new(runner.nodes[node].ip(), workload.name());
    let engine = wire(Engine::builder().config(InvarNetConfig::default())).build();

    let normals = runner.normal_runs(workload, 4);
    let cpi_traces: Vec<Vec<f64>> = normals
        .iter()
        .map(|r| r.per_node[node].cpi.cpi_series())
        .collect();
    engine
        .train_performance_model(context.clone(), &cpi_traces)
        .expect("train detector");
    let frames: Vec<_> = normals
        .iter()
        .map(|r| {
            let f = &r.per_node[node].frame;
            f.window(30..75.min(f.ticks()))
        })
        .collect();
    engine
        .build_invariants(context.clone(), &frames)
        .expect("build invariants");
    for fault in [FaultType::CpuHog, FaultType::MemHog, FaultType::DiskHog] {
        let run = runner.fault_run(workload, fault, 0);
        engine
            .record_signature(&context, fault.name(), &run.fault_window().expect("window"))
            .expect("record signature");
    }
    let live = runner.fault_run(workload, FaultType::MemHog, 5);
    (engine, context, live)
}

/// Per-tick outcome fields that must match between the twins.
type Outcome = (usize, f64, bool, bool, Option<invarnet_x::core::Diagnosis>);

fn stream(engine: &Engine, context: &OperationContext, run: &RunResult) -> Vec<Outcome> {
    let node = Runner::DEFAULT_FAULT_NODE;
    let cpi = run.per_node[node].cpi.cpi_series();
    let frame = &run.per_node[node].frame;
    engine.reset_run(context);
    (0..frame.ticks().min(cpi.len()))
        .map(|t| {
            let out = engine
                .ingest(context, cpi[t], frame.tick(t))
                .expect("ingest tick");
            (
                out.tick,
                out.residual,
                out.exceeded,
                out.anomalous,
                out.diagnosis,
            )
        })
        .collect()
}

#[test]
fn recorder_attached_engine_is_bit_identical() {
    let (bare, context, run) = trained_engine(|b| b);
    let store = HistoryStore::builder().shared();
    let (recorded, context2, run2) = trained_engine(|b| b.history(store.clone()));
    assert_eq!(context, context2);
    assert!(!bare.has_history());
    assert!(recorded.has_history());

    let bare_outcomes = stream(&bare, &context, &run);
    let recorded_outcomes = stream(&recorded, &context2, &run2);
    assert_eq!(
        bare_outcomes, recorded_outcomes,
        "every tick outcome — residuals, flags and full diagnoses — must \
         be bit-identical with a recorder attached"
    );

    // The recording itself holds exactly the diagnoses the live run saw.
    let id = recorded
        .context_registry()
        .lookup(&context)
        .expect("interned");
    let live_diagnoses: Vec<_> = recorded_outcomes
        .iter()
        .filter_map(|(_, _, _, _, d)| d.clone())
        .collect();
    let stored: Vec<_> = store
        .diagnoses_for(id)
        .into_iter()
        .map(|r| r.diagnosis)
        .collect();
    assert!(!stored.is_empty(), "the fault run must diagnose");
    assert_eq!(stored, live_diagnoses);
    assert_eq!(store.sweeps_for(id).len(), stored.len());
}

#[test]
fn recorded_events_match_a_bare_engine_modulo_timing() {
    let sink = Arc::new(VecSink::default());
    let (bare, context, run) = trained_engine(|b| b.event_sink(sink.clone() as Arc<dyn EventSink>));
    let store = HistoryStore::builder().shared();
    let (recorded, _, run2) = trained_engine(|b| b.history(store.clone()));

    stream(&bare, &context, &run);
    stream(&recorded, &context, &run2);
    assert_eq!(
        normalize(&sink.events()),
        normalize(&store.events()),
        "the recorder must capture the same event stream a plain sink sees"
    );
}

#[test]
fn query_explanations_reproduce_the_live_ranking() {
    let store = HistoryStore::builder().shared();
    let (engine, context, run) = trained_engine(|b| b.history(store.clone()));

    // Stop at the diagnosis tick so the recorded current-run window is
    // exactly the window the live diagnosis ranked over.
    let node = Runner::DEFAULT_FAULT_NODE;
    let cpi = run.per_node[node].cpi.cpi_series();
    let frame = &run.per_node[node].frame;
    engine.reset_run(&context);
    let mut live = None;
    for (t, &sample) in cpi.iter().enumerate().take(frame.ticks()) {
        let out = engine
            .ingest(&context, sample, frame.tick(t))
            .expect("ingest tick");
        if let Some(d) = out.diagnosis {
            live = Some(d);
            break;
        }
    }
    let live = live.expect("the fault run must diagnose");

    let query = Query::builder().engine(&engine).history(&store).build();
    let recomputed = query
        .explanations(&context)
        .rank()
        .expect("rank from the recorded window");
    assert_eq!(
        recomputed, live,
        "recomputing from history must reproduce the live ranking bit-exactly"
    );

    let replayed = query
        .explanations(&context)
        .replay_recorded()
        .rank()
        .expect("rank from recorded sweep scores");
    assert_eq!(replayed.ranked, live.ranked);
    assert_eq!(replayed.tuple, live.tuple);

    // The recorded sweep scores are the association matrix of the
    // history-served window — recomputing the sweep over that window
    // lands on identical scores.
    let id = engine
        .context_registry()
        .lookup(&context)
        .expect("interned");
    let record = store.sweeps_for(id).pop().expect("sweep recorded");
    let window = store
        .window_frame(id, engine.config().window_ticks)
        .expect("window served from history");
    let resweep = engine
        .association_matrix(&window)
        .expect("sweep the recorded window");
    assert_eq!(AssociationMatrix::from_scores(record.scores), resweep);
}

/// A trivially cheap streaming detector: residual is the sample itself,
/// threshold fixed high enough that nothing fires, so eight threads can
/// hammer the ingest path without triggering sweeps.
struct FlatDetector;

/// One in-flight run of [`FlatDetector`].
#[derive(Default)]
struct FlatRun {
    residuals: Vec<f64>,
}

impl invarnet_x::core::DetectorRun for FlatRun {
    fn step(&mut self, x: f64) -> invarnet_x::core::TickDecision {
        self.residuals.push(x);
        invarnet_x::core::TickDecision {
            residual: x,
            exceeded: x > 0.9,
            anomalous: false,
        }
    }

    fn result(&self) -> invarnet_x::core::DetectionResult {
        invarnet_x::core::DetectionResult {
            exceedances: self.residuals.iter().map(|&x| x > 0.9).collect(),
            anomalies: vec![false; self.residuals.len()],
            residuals: self.residuals.clone(),
            threshold: 0.9,
            first_anomaly: None,
        }
    }
}

impl invarnet_x::core::Detector for FlatDetector {
    fn name(&self) -> &'static str {
        "FLAT"
    }

    fn begin_run(&self) -> Box<dyn invarnet_x::core::DetectorRun> {
        Box::<FlatRun>::default()
    }
}

/// The `RecorderTee` contract under contention: with eight threads each
/// streaming their own context, the recorder must observe every context's
/// events in exactly the order the live sink saw them, and the global
/// event populations must match as multisets (the *interleaving* across
/// contexts is scheduling-dependent and deliberately unconstrained).
#[test]
fn tee_preserves_per_context_order_under_concurrent_ingest() {
    use invarnet_x::metrics::METRIC_COUNT;

    const THREADS: usize = 8;
    const TICKS: usize = 200;

    let store = HistoryStore::builder().shared();
    let sink = Arc::new(VecSink::default());
    let mut builder = Engine::builder()
        .config(InvarNetConfig::default())
        .event_sink(sink.clone())
        .history(store.clone());
    let contexts: Vec<OperationContext> = (0..THREADS)
        .map(|i| OperationContext::new(format!("10.0.0.{i}"), format!("Workload{i}")))
        .collect();
    for context in &contexts {
        builder = builder.detector(context.clone(), Arc::new(FlatDetector));
    }
    let engine = Arc::new(builder.build());

    std::thread::scope(|scope| {
        for (i, context) in contexts.iter().enumerate() {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                engine.reset_run(context);
                for t in 0..TICKS {
                    let sample = ((i * TICKS + t) as f64).sin().abs() * 0.8;
                    let row = vec![sample; METRIC_COUNT];
                    engine
                        .ingest(context, sample, &row)
                        .expect("concurrent ingest");
                }
            });
        }
    });

    let live = sink.events();
    let recorded = store.events();
    assert_eq!(live.len(), recorded.len(), "the tee must not drop events");

    for context in &contexts {
        let id = engine
            .context_registry()
            .lookup(context)
            .expect("ingested context is interned");
        let live_ctx: Vec<EngineEvent> =
            live.iter().filter(|e| e.context() == id).copied().collect();
        let recorded_ctx = store.events_for(id);
        assert_eq!(
            live_ctx.len(),
            TICKS,
            "one TickIngested per tick for {context}"
        );
        assert_eq!(
            live_ctx, recorded_ctx,
            "recorder must preserve the sink's per-context order for {context}"
        );
        // The recorded rows are the same ticks, in ingest order.
        assert_eq!(store.rows(id), TICKS);
        let rows = invarnet_x::query::context_rows(&store, id, 0..TICKS)
            .expect("recorded rows materialize");
        assert!(rows.windows(2).all(|w| w[0].tick < w[1].tick));
    }

    // Across contexts the interleavings may differ; the populations may not.
    let mut live_sorted: Vec<String> = live.iter().map(|e| format!("{e:?}")).collect();
    let mut recorded_sorted: Vec<String> = recorded.iter().map(|e| format!("{e:?}")).collect();
    live_sorted.sort_unstable();
    recorded_sorted.sort_unstable();
    assert_eq!(
        live_sorted, recorded_sorted,
        "global event multisets must match"
    );
}
