//! Integration tests of the telemetry subsystem: exact counter totals under
//! multi-threaded hammering, histogram-count invariants, Prometheus text
//! parse-back, JSON snapshot round-trips, and end-to-end attribution on a
//! streamed fault run.

use std::collections::HashMap;
use std::sync::Arc;

use invarnet_x::core::{
    ContextId, Engine, EngineEvent, EventSink, InvarNetConfig, OperationContext, Telemetry,
    TelemetrySnapshot,
};
use invarnet_x::metrics::{MetricFrame, METRIC_COUNT};
use invarnet_x::timeseries::SeriesBuilder;

/// A frame whose metrics are all driven by one latent ramp (strongly
/// associated), with metric 0 optionally replaced by noise.
fn coupled_frame(ticks: usize, seed: u64, break_metric0: bool) -> MetricFrame {
    let mut f = MetricFrame::new();
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for t in 0..ticks {
        let latent = (t as f64 * 0.23).sin() * 5.0 + 10.0 + 0.2 * next();
        let mut row: Vec<f64> = (0..METRIC_COUNT)
            .map(|k| latent * (k + 1) as f64 + 0.1 * next())
            .collect();
        if break_metric0 {
            row[0] = 100.0 * next();
        }
        f.push_tick(&row).unwrap();
    }
    f
}

fn normal_cpi(seed: u64, len: usize) -> Vec<f64> {
    SeriesBuilder::new(len)
        .level(1.0)
        .ar1(0.6)
        .noise(0.02)
        .build(seed)
        .unwrap()
        .into_values()
}

#[test]
fn eight_threads_hammer_registry_with_exact_totals() {
    const THREADS: u64 = 8;
    const TICKS_PER_THREAD: u64 = 10_000;
    const SWEEP_EVERY: u64 = 50;
    const CONTEXTS: u64 = 4;

    let telemetry = Telemetry::shared();
    let ids: Vec<ContextId> = (0..CONTEXTS)
        .map(|i| {
            telemetry
                .contexts()
                .intern(&OperationContext::new(format!("10.0.0.{i}"), "W"))
        })
        .collect();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let telemetry = Arc::clone(&telemetry);
            let id = ids[(t % CONTEXTS) as usize];
            scope.spawn(move || {
                for k in 0..TICKS_PER_THREAD {
                    telemetry.record(&EngineEvent::TickIngested {
                        context: id,
                        tick: t * TICKS_PER_THREAD + k,
                        residual: (k % 7) as f64 * 0.1,
                        exceeded: k % 5 == 0,
                        micros: k % 1000,
                    });
                    if k % SWEEP_EVERY == 0 {
                        telemetry.record(&EngineEvent::SweepCompleted {
                            context: id,
                            pairs: 325,
                            micros: 1 + k,
                        });
                    }
                }
            });
        }
    });

    let snap = telemetry.snapshot();

    // Exact totals: nothing lost or double-counted under contention.
    assert_eq!(snap.total.ticks, THREADS * TICKS_PER_THREAD);
    assert_eq!(
        snap.total.threshold_exceedances,
        THREADS * TICKS_PER_THREAD.div_ceil(5)
    );
    let sweeps_per_thread = TICKS_PER_THREAD.div_ceil(SWEEP_EVERY);
    assert_eq!(snap.total.sweeps, THREADS * sweeps_per_thread);
    assert_eq!(snap.total.pairs_scored, THREADS * sweeps_per_thread * 325);

    // Per-context: two threads share each of the four contexts.
    assert_eq!(snap.contexts.len(), CONTEXTS as usize);
    for scope in &snap.contexts {
        assert_eq!(scope.ticks, 2 * TICKS_PER_THREAD, "{}", scope.context);
        assert_eq!(scope.sweeps, 2 * sweeps_per_thread, "{}", scope.context);
    }

    // Histogram-count invariants: bucket sums equal counts, counts equal
    // the number of recorded events, and sums/maxima are exact.
    for scope in snap.contexts.iter().chain([&snap.total]) {
        for hist in [
            &scope.ingest_micros,
            &scope.sweep_micros,
            &scope.diagnosis_micros,
            &scope.pair_score_nanos,
        ] {
            assert!(hist.is_consistent(), "{}", scope.context);
        }
        assert_eq!(scope.ingest_micros.count, scope.ticks);
        assert_eq!(scope.sweep_micros.count, scope.sweeps);
    }
    // Per-thread micros are k % 1000, so the exact total is known.
    let sum_per_thread: u64 = (0..TICKS_PER_THREAD).map(|k| k % 1000).sum();
    assert_eq!(snap.total.ingest_micros.sum, THREADS * sum_per_thread);
    assert_eq!(snap.total.ingest_micros.max, 999);
    assert_eq!(
        snap.total.sweep_micros.max,
        1 + (TICKS_PER_THREAD - 1) / SWEEP_EVERY * SWEEP_EVERY
    );
    // Quantiles stay within the log-bucket guarantee (≤ 2x, capped at max).
    let p50 = snap.total.ingest_micros.quantile(0.5);
    assert!((250..=999).contains(&p50), "p50 = {p50}");
}

/// A tiny parser of the Prometheus text exposition format: returns
/// `(metric, labels) -> value` for every sample line.
fn parse_prometheus(text: &str) -> HashMap<(String, String), f64> {
    let mut out = HashMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line");
        let (metric, labels) = match series.split_once('{') {
            Some((m, l)) => (m.to_string(), l.trim_end_matches('}').to_string()),
            None => (series.to_string(), String::new()),
        };
        let parsed: f64 = value.parse().expect("sample value");
        assert!(
            out.insert((metric, labels), parsed).is_none(),
            "duplicate series: {line}"
        );
    }
    out
}

#[test]
fn prometheus_text_parses_back_to_snapshot_values() {
    let telemetry = Telemetry::new();
    let ctx = telemetry
        .contexts()
        .intern(&OperationContext::new("n1", "Sort"));
    for k in 0..100u64 {
        telemetry.record(&EngineEvent::TickIngested {
            context: ctx,
            tick: k,
            residual: 0.1 * (k % 3) as f64,
            exceeded: k % 4 == 0,
            micros: k,
        });
    }
    telemetry.record(&EngineEvent::DetectionFired {
        context: ctx,
        tick: 50,
    });
    telemetry.record(&EngineEvent::SweepCompleted {
        context: ctx,
        pairs: 325,
        micros: 1234,
    });
    telemetry.record(&EngineEvent::SignatureMatched {
        context: ctx,
        tick: 50,
        best_similarity: 0.75,
        confident: true,
    });

    let snap = telemetry.snapshot();
    let samples = parse_prometheus(&snap.render_prometheus());
    let label = "context=\"Sort@n1\"".to_string();
    let get = |metric: &str| samples[&(metric.to_string(), label.clone())];

    let scope = &snap.contexts[0];
    assert_eq!(scope.context, "Sort@n1");
    assert_eq!(get("invarnet_ticks_ingested_total"), scope.ticks as f64);
    assert_eq!(
        get("invarnet_threshold_exceedances_total"),
        scope.threshold_exceedances as f64
    );
    assert_eq!(get("invarnet_detections_fired_total"), 1.0);
    assert_eq!(get("invarnet_sweeps_total"), 1.0);
    assert_eq!(get("invarnet_pairs_scored_total"), 325.0);
    assert_eq!(get("invarnet_signature_matches_total"), 1.0);
    assert_eq!(get("invarnet_last_similarity"), 0.75);
    assert_eq!(get("invarnet_max_residual"), scope.max_residual);

    // Histogram invariants in the exposition: +Inf bucket == _count ==
    // snapshot count, _sum == snapshot sum, buckets cumulative-monotone.
    for metric in ["invarnet_ingest_micros", "invarnet_sweep_micros"] {
        let hist = if metric == "invarnet_ingest_micros" {
            &scope.ingest_micros
        } else {
            &scope.sweep_micros
        };
        let inf_label = "context=\"Sort@n1\",le=\"+Inf\"".to_string();
        assert_eq!(
            samples[&(format!("{metric}_bucket"), inf_label)],
            hist.count as f64
        );
        assert_eq!(
            samples[&(format!("{metric}_count"), label.clone())],
            hist.count as f64
        );
        assert_eq!(
            samples[&(format!("{metric}_sum"), label.clone())],
            hist.sum as f64
        );
        let mut bucket_samples: Vec<(u64, f64)> = samples
            .iter()
            .filter(|((m, l), _)| m == &format!("{metric}_bucket") && !l.contains("+Inf"))
            .map(|((_, l), &v)| {
                let le = l.split("le=\"").nth(1).unwrap().trim_end_matches('"');
                (le.parse::<u64>().unwrap(), v)
            })
            .collect();
        bucket_samples.sort_unstable_by_key(|&(le, _)| le);
        for pair in bucket_samples.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "{metric} buckets must be monotone");
        }
    }
}

#[test]
fn streamed_fault_run_is_attributed_and_json_round_trips() {
    let telemetry = Telemetry::shared();
    let engine = Engine::builder()
        .config(InvarNetConfig {
            min_frame_ticks: 5,
            window_ticks: 40,
            ..InvarNetConfig::default()
        })
        .telemetry(&telemetry)
        .build();

    let ctx = OperationContext::new("10.0.0.1", "Wordcount");
    let cpi_traces: Vec<Vec<f64>> = (0..3).map(|s| normal_cpi(s, 120)).collect();
    engine
        .train_performance_model(ctx.clone(), &cpi_traces)
        .unwrap();
    let frames: Vec<MetricFrame> = (0..2).map(|s| coupled_frame(40, 100 + s, false)).collect();
    engine.build_invariants(ctx.clone(), &frames).unwrap();
    engine
        .record_signature(&ctx, "metric0-break", &coupled_frame(40, 109, true))
        .unwrap();

    // A run that goes anomalous at tick 60 and recovers at tick 90.
    let mut cpi = normal_cpi(42, 120);
    for v in cpi[60..90].iter_mut() {
        *v *= 1.8;
    }
    let metrics = coupled_frame(120, 7, true);
    for (t, &sample) in cpi.iter().enumerate() {
        engine.ingest(&ctx, sample, metrics.tick(t)).unwrap();
    }

    let snap = telemetry.snapshot();
    let scope = snap
        .contexts
        .iter()
        .find(|s| s.context == ctx.to_string())
        .expect("the streamed context must appear in the snapshot");
    assert_eq!(scope.ticks, cpi.len() as u64);
    assert_eq!(scope.ingest_micros.count, scope.ticks);
    assert_eq!(scope.detections, 1, "one anomaly onset");
    assert_eq!(scope.clears, 1, "the anomaly recovered");
    assert_eq!(scope.diagnoses, 1, "diagnosis is edge-triggered");
    assert_eq!(
        scope.matches_confident + scope.matches_unknown,
        scope.diagnoses,
        "every diagnosis reports a signature-match outcome"
    );
    assert!(scope.sweeps >= 1);
    assert_eq!(scope.sweep_micros.count, scope.sweeps);
    assert!(scope.pairs_scored >= 325);
    assert!(scope.threshold_exceedances >= 3);
    assert!(scope.max_residual > 0.0);

    // Spans cover the offline phases and the online diagnosis.
    for phase in ["train", "invariant_build", "sweep", "diagnosis"] {
        let p = snap.phases.iter().find(|p| p.phase == phase).unwrap();
        assert!(p.micros.count >= 1, "phase {phase} must have spans");
    }
    assert!(!snap.spans.is_empty());

    // The report prints the per-context row and latency quantiles.
    let report = snap.render_report();
    assert!(report.contains("Wordcount@10.0.0.1"));
    assert!(report.contains("swp_p50"));
    assert!(report.contains("diagnosis (µs)"));

    // Acceptance: the snapshot survives a JSON round-trip with identical
    // values (PartialEq covers every counter, gauge, bucket and span).
    let json = snap.to_json().unwrap();
    let back = TelemetrySnapshot::from_json(&json).unwrap();
    assert_eq!(back, snap);
    assert_eq!(back.render_prometheus(), snap.render_prometheus());
}

#[test]
fn sweep_cache_and_profile_build_flow_through_exporters() {
    let telemetry = Telemetry::shared();
    let engine = Engine::builder()
        .config(InvarNetConfig {
            min_frame_ticks: 5,
            ..InvarNetConfig::default()
        })
        .telemetry(&telemetry)
        .build();

    // Three sweeps over two distinct windows: miss, miss, hit — and the
    // cached matrix must be bit-identical to the freshly swept one.
    let a = coupled_frame(40, 1, false);
    let b = coupled_frame(40, 2, false);
    let first = engine.association_matrix(&a).unwrap();
    let _ = engine.association_matrix(&b).unwrap();
    let cached = engine.association_matrix(&a).unwrap();
    assert_eq!(cached, first, "cache hit must return the identical matrix");

    let snap = telemetry.snapshot();
    let scope = &snap.total;
    assert_eq!(scope.sweep_cache_misses, 2);
    assert_eq!(scope.sweep_cache_hits, 1);
    assert_eq!(scope.sweeps, 2, "the hit skipped the sweep itself");

    // The default MIC measure plans per-series profiles, so each actual
    // sweep records a profile_build span.
    let profile_phase = snap
        .phases
        .iter()
        .find(|p| p.phase == "profile_build")
        .expect("profile_build phase must be exported");
    assert_eq!(profile_phase.micros.count, 2);

    // Both counters reach the Prometheus exposition...
    let samples = parse_prometheus(&snap.render_prometheus());
    let label = "context=\"(unattributed)\"".to_string();
    assert_eq!(
        samples[&("invarnet_sweep_cache_hits_total".to_string(), label.clone())],
        1.0
    );
    assert_eq!(
        samples[&("invarnet_sweep_cache_misses_total".to_string(), label)],
        2.0
    );

    // ...and survive the JSON round-trip.
    let back = TelemetrySnapshot::from_json(&snap.to_json().unwrap()).unwrap();
    assert_eq!(back.total.sweep_cache_hits, 1);
    assert_eq!(back.total.sweep_cache_misses, 2);
    assert_eq!(back, snap);
}

#[test]
fn zero_capacity_config_disables_the_sweep_cache() {
    let telemetry = Telemetry::shared();
    let engine = Engine::builder()
        .config(InvarNetConfig {
            min_frame_ticks: 5,
            sweep_cache_entries: 0,
            ..InvarNetConfig::default()
        })
        .telemetry(&telemetry)
        .build();
    let frame = coupled_frame(40, 3, false);
    let first = engine.association_matrix(&frame).unwrap();
    let second = engine.association_matrix(&frame).unwrap();
    assert_eq!(first, second, "determinism does not depend on the cache");
    let snap = telemetry.snapshot();
    assert_eq!(snap.total.sweep_cache_hits, 0);
    assert_eq!(
        snap.total.sweep_cache_misses, 0,
        "disabled cache stays silent"
    );
    assert_eq!(snap.total.sweeps, 2, "every call runs the full sweep");
}

#[test]
fn null_sink_engine_still_works() {
    // The default engine (NullSink) runs the same pipeline with no
    // telemetry attached.
    let engine = Engine::builder()
        .config(InvarNetConfig {
            min_frame_ticks: 5,
            window_ticks: 40,
            ..InvarNetConfig::default()
        })
        .build();
    let ctx = OperationContext::new("10.0.0.9", "Grep");
    let cpi_traces: Vec<Vec<f64>> = (0..3).map(|s| normal_cpi(s, 120)).collect();
    engine
        .train_performance_model(ctx.clone(), &cpi_traces)
        .unwrap();

    let cpi = normal_cpi(5, 30);
    let metrics = coupled_frame(30, 5, false);
    for (t, &sample) in cpi.iter().enumerate() {
        engine.ingest(&ctx, sample, metrics.tick(t)).unwrap();
    }
    assert!(engine.detection_result(&ctx).is_some());
}
