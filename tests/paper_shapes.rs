//! Paper-shape integration tests: small-scale versions of the evaluation
//! campaigns asserting the qualitative claims of Sect. 4 hold end to end.
//! The full-scale reproductions live in the `repro` binary of `ix-bench`.

use invarnet_x::core::PerformanceModel;
use invarnet_x::simulator::{FaultType, Runner, WorkloadType};
use invarnet_x::timeseries::{mean, min_normalize, pearson};

/// Fig. 4's core claim: CPI tracks execution time across faulted runs.
#[test]
fn cpi_tracks_execution_time_across_fault_runs() {
    let mut runner = Runner::new(301);
    runner.fault_duration_ticks = 80;
    let faults = [
        None,
        Some(FaultType::CpuHog),
        Some(FaultType::DiskHog),
        Some(FaultType::NetDrop),
    ];
    let mut times = Vec::new();
    let mut cpis = Vec::new();
    for k in 0..16 {
        let r = match faults[k % faults.len()] {
            Some(f) => runner.fault_run(WorkloadType::Wordcount, f, k),
            None => runner.normal_run(WorkloadType::Wordcount, k),
        };
        times.push(r.duration_secs());
        cpis.push(r.per_node[Runner::DEFAULT_FAULT_NODE].cpi.cpi_p95());
    }
    let corr = pearson(&min_normalize(&times), &min_normalize(&cpis));
    assert!(corr > 0.85, "CPI/time correlation {corr}");
}

/// Fig. 2's core claim: a benign CPU disturbance moves utilization but
/// neither CPI nor execution time.
#[test]
fn benign_disturbance_does_not_move_cpi() {
    use invarnet_x::metrics::MetricId;
    use invarnet_x::simulator::{simulate, CpuDisturbance, RunConfig};

    let base = RunConfig::new(WorkloadType::Wordcount, 77);
    let clean = simulate(&base);
    let disturbed = simulate(&base.clone().with_disturbance(CpuDisturbance {
        node: 2,
        start_tick: 30,
        duration_ticks: 30,
        magnitude: 0.30,
    }));
    assert_eq!(clean.ticks, disturbed.ticks, "execution time must not move");

    let w = 30..60;
    let cpi_clean = mean(&clean.per_node[2].cpi.cpi_series()[w.clone()]);
    let cpi_dist = mean(&disturbed.per_node[2].cpi.cpi_series()[w.clone()]);
    assert!(
        (cpi_dist / cpi_clean) < 1.10,
        "CPI moved: {cpi_clean} -> {cpi_dist}"
    );
    let cpu_clean = mean(&clean.per_node[2].frame.series(MetricId::CpuUser)[w.clone()]);
    let cpu_dist = mean(&disturbed.per_node[2].frame.series(MetricId::CpuUser)[w]);
    assert!(
        cpu_dist > cpu_clean + 10.0,
        "CPU util should jump: {cpu_clean} -> {cpu_dist}"
    );
}

/// Sect. 4.2's rule ordering: p95 threshold < max-min threshold < beta-max
/// threshold, so p95 is the most false-alarm-prone.
#[test]
fn threshold_rules_are_ordered() {
    use invarnet_x::core::ThresholdRule;
    let runner = Runner::new(302);
    let traces: Vec<Vec<f64>> = runner
        .normal_runs(WorkloadType::TpcDs, 5)
        .iter()
        .map(|r| r.per_node[2].cpi.cpi_series())
        .collect();
    let model = PerformanceModel::train(&traces, 1.2).expect("train");
    let p95 = model.threshold(ThresholdRule::P95);
    let mm = model.threshold(ThresholdRule::MaxMin);
    let bm = model.threshold(ThresholdRule::BetaMax);
    assert!(p95 < mm, "p95 {p95} < max-min {mm}");
    assert!(mm < bm, "max-min {mm} < beta-max {bm}");
    assert!((bm / mm - 1.2).abs() < 1e-9, "beta factor");
}

/// Batch jobs keep a more stable performance model than the interactive
/// mix ("the batch type of workloads possess higher quality of signatures")
/// — visible as a tighter relative residual band.
#[test]
fn batch_cpi_is_more_predictable_than_interactive() {
    let runner = Runner::new(303);
    let rel_band = |w: WorkloadType| {
        let traces: Vec<Vec<f64>> = runner
            .normal_runs(w, 5)
            .iter()
            .map(|r| r.per_node[2].cpi.cpi_series())
            .collect();
        let model = PerformanceModel::train(&traces, 1.2).expect("train");
        let level = mean(&traces[0]);
        model.stats().p95 / level
    };
    let wc = rel_band(WorkloadType::Wordcount);
    let td = rel_band(WorkloadType::TpcDs);
    // Both bands are tight in relative terms; the batch job's model covers
    // multiple phases, so we only require it stays within 2x of the
    // steady interactive mix.
    assert!(wc < 2.0 * td, "wordcount band {wc} vs tpc-ds band {td}");
}

/// The paper's restriction argument: all injected faults cause visible
/// performance degradation (longer runs or higher CPI) — nothing is a
/// silent no-op.
#[test]
fn every_fault_degrades_performance() {
    let runner = Runner::new(304);
    let normal_ticks: f64 = (0..3)
        .map(|i| runner.normal_run(WorkloadType::Wordcount, i).ticks as f64)
        .sum::<f64>()
        / 3.0;
    let normal_cpi: f64 = (0..3)
        .map(|i| {
            runner.normal_run(WorkloadType::Wordcount, i).per_node[2]
                .cpi
                .cpi_p95()
        })
        .sum::<f64>()
        / 3.0;
    for fault in FaultType::ALL.iter().filter(|f| !f.interactive_only()) {
        let r = runner.fault_run(WorkloadType::Wordcount, *fault, 0);
        let slower = r.ticks as f64 > normal_ticks * 1.03;
        let hotter = r.per_node[2].cpi.cpi_p95() > normal_cpi * 1.10;
        assert!(
            slower || hotter,
            "{fault} caused no visible degradation (ticks {} vs {normal_ticks}, cpi p95 {} vs {normal_cpi})",
            r.ticks,
            r.per_node[2].cpi.cpi_p95()
        );
    }
}
