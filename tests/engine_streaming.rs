//! Integration tests of the layered streaming engine: tick-level ingestion
//! must reproduce batch results, state must stay isolated across contexts
//! and threads, and the detector family must be selectable via config.

use std::sync::Arc;

use invarnet_x::core::{
    CusumDetector, DetectorChoice, Engine, EngineCounters, EventSink, InvarNetConfig,
    OperationContext,
};
use invarnet_x::metrics::{MetricFrame, METRIC_COUNT};
use invarnet_x::timeseries::SeriesBuilder;

/// A frame whose metrics are all driven by one latent ramp (strongly
/// associated), with metric 0 optionally replaced by noise.
fn coupled_frame(ticks: usize, seed: u64, break_metric0: bool) -> MetricFrame {
    let mut f = MetricFrame::new();
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for t in 0..ticks {
        let latent = (t as f64 * 0.23).sin() * 5.0 + 10.0 + 0.2 * next();
        let mut row: Vec<f64> = (0..METRIC_COUNT)
            .map(|k| latent * (k + 1) as f64 + 0.1 * next())
            .collect();
        if break_metric0 {
            row[0] = 100.0 * next();
        }
        f.push_tick(&row).unwrap();
    }
    f
}

fn normal_cpi(seed: u64, len: usize) -> Vec<f64> {
    SeriesBuilder::new(len)
        .level(1.0)
        .ar1(0.6)
        .noise(0.02)
        .build(seed)
        .unwrap()
        .into_values()
}

fn streaming_config() -> InvarNetConfig {
    InvarNetConfig {
        min_frame_ticks: 5,
        window_ticks: 40,
        ..InvarNetConfig::default()
    }
}

/// Offline-trains one context on the engine: ARIMA model, invariants, and
/// one recorded fault signature.
fn train_context(engine: &Engine, ctx: &OperationContext, cpi_traces: &[Vec<f64>], seed: u64) {
    engine
        .train_performance_model(ctx.clone(), cpi_traces)
        .unwrap();
    let frames: Vec<MetricFrame> = (0..2).map(|s| coupled_frame(40, seed + s, false)).collect();
    engine.build_invariants(ctx.clone(), &frames).unwrap();
    engine
        .record_signature(ctx, "metric0-break", &coupled_frame(40, seed + 9, true))
        .unwrap();
}

#[test]
fn streamed_ticks_reproduce_batch_detection_and_diagnosis() {
    let counters = Arc::new(EngineCounters::default());
    let engine = Engine::builder()
        .config(streaming_config())
        .event_sink(Arc::clone(&counters) as Arc<dyn EventSink>)
        .build();

    let ctx = OperationContext::new("10.0.0.1", "Wordcount");
    let cpi_traces: Vec<Vec<f64>> = (0..3).map(|s| normal_cpi(s, 120)).collect();
    train_context(&engine, &ctx, &cpi_traces, 100);

    // An anomalous online run: CPI jumps at tick 60 and stays high (a
    // single anomaly onset), metrics break with it.
    let mut cpi = normal_cpi(42, 120);
    for v in cpi[60..].iter_mut() {
        *v *= 1.8;
    }
    let metrics = coupled_frame(120, 7, true);

    let mut onset: Option<usize> = None;
    let mut streamed_diagnosis = None;
    for (t, &sample) in cpi.iter().enumerate() {
        let out = engine.ingest(&ctx, sample, metrics.tick(t)).unwrap();
        assert_eq!(out.tick, t);
        if let Some(d) = out.diagnosis {
            assert!(
                onset.is_none(),
                "diagnosis must be edge-triggered, not per-tick"
            );
            onset = Some(t);
            streamed_diagnosis = Some(d);
        }
    }

    // Detection parity: the accumulated run equals the batch detector
    // (bit-exact, so PartialEq over the f64 residuals holds).
    let streamed = engine.detection_result(&ctx).unwrap();
    let model = engine.performance_model(&ctx).unwrap();
    let batch = model.detect(
        &cpi,
        engine.config().threshold_rule,
        engine.config().consecutive_anomalies,
    );
    assert_eq!(streamed, batch);

    // Diagnosis parity: the onset-tick diagnosis equals a batch diagnosis
    // over the same sliding window contents.
    let t = onset.expect("the injected jump must trigger a diagnosis");
    assert_eq!(Some(t), batch.first_anomaly);
    let window_ticks = engine.config().window_ticks;
    let start = (t + 1).saturating_sub(window_ticks);
    let window = metrics.window(start..t + 1);
    let batch_diagnosis = engine.diagnose(&ctx, &window).unwrap();
    let streamed_diagnosis = streamed_diagnosis.unwrap();
    assert_eq!(streamed_diagnosis, batch_diagnosis);
    assert_eq!(
        streamed_diagnosis.root_cause().unwrap().problem,
        "metric0-break"
    );

    // Observability: every layer reported through the sink.
    assert_eq!(counters.ticks_ingested(), cpi.len() as u64);
    assert_eq!(counters.detections_fired(), 1);
    assert_eq!(counters.diagnoses_run(), 2); // streaming onset + batch replay
    assert!(counters.sweeps_completed() >= 2);
    assert!(counters.sweep_micros_total() >= counters.sweep_micros_max());
}

#[test]
fn concurrent_ingestion_matches_single_threaded_and_isolates_contexts() {
    let trace_len = 100;
    let contexts: Vec<OperationContext> = (0..8)
        .map(|i| OperationContext::new(format!("10.0.0.{i}"), "Wordcount"))
        .collect();
    let cpi_traces: Vec<Vec<f64>> = (0..3).map(|s| normal_cpi(s, trace_len)).collect();

    let setup = || {
        let engine = Engine::new(streaming_config());
        for (i, ctx) in contexts.iter().enumerate() {
            train_context(&engine, ctx, &cpi_traces, 200 + 10 * i as u64);
        }
        engine
    };

    // Per-context online streams: even contexts stay normal, odd contexts
    // get a CPI jump (and broken metrics) so diagnosis paths run under
    // contention too.
    let streams: Vec<(Vec<f64>, MetricFrame)> = contexts
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let mut cpi = normal_cpi(400 + i as u64, trace_len);
            let broken = i % 2 == 1;
            if broken {
                for v in cpi[60..90].iter_mut() {
                    *v *= 1.8;
                }
            }
            (cpi, coupled_frame(trace_len, 500 + i as u64, broken))
        })
        .collect();

    // Reference: one engine, everything ingested from this thread.
    let single = setup();
    for (ctx, (cpi, metrics)) in contexts.iter().zip(&streams) {
        for (t, &sample) in cpi.iter().enumerate() {
            single.ingest(ctx, sample, metrics.tick(t)).unwrap();
        }
    }

    // Concurrent: same work spread over 4 threads, 2 contexts each.
    let concurrent = setup();
    std::thread::scope(|scope| {
        for chunk in contexts.chunks(2) {
            let concurrent = &concurrent;
            let streams = &streams;
            let contexts = &contexts;
            scope.spawn(move || {
                for ctx in chunk {
                    let i = contexts.iter().position(|c| c == ctx).unwrap();
                    let (cpi, metrics) = &streams[i];
                    for (t, &sample) in cpi.iter().enumerate() {
                        concurrent.ingest(ctx, sample, metrics.tick(t)).unwrap();
                    }
                }
            });
        }
    });

    // Shard isolation: every context's detector run and window end up
    // identical to the single-threaded reference, which itself equals the
    // batch detector on that context's own trace.
    for (i, ctx) in contexts.iter().enumerate() {
        let got = concurrent.detection_result(ctx).unwrap();
        let reference = single.detection_result(ctx).unwrap();
        assert_eq!(got, reference, "context {i} detector state diverged");
        let model = concurrent.performance_model(ctx).unwrap();
        let batch = model.detect(&streams[i].0, concurrent.config().threshold_rule, 3);
        assert_eq!(got, batch, "context {i} differs from batch detection");
        assert!(
            batch.is_anomalous() == (i % 2 == 1),
            "context {i} anomaly parity"
        );
        assert_eq!(
            concurrent.window_frame(ctx).unwrap(),
            single.window_frame(ctx).unwrap(),
            "context {i} window diverged"
        );
    }
    assert_eq!(concurrent.contexts().len(), contexts.len());
}

#[test]
fn cusum_detector_is_selectable_through_config() {
    let config = InvarNetConfig {
        detector: DetectorChoice::cusum_default(),
        min_frame_ticks: 5,
        window_ticks: 40,
        ..InvarNetConfig::default()
    };
    let engine = Engine::new(config);
    let ctx = OperationContext::new("10.0.0.1", "Wordcount");
    // Flat CPI traces so CUSUM's in-control calibration is meaningful.
    let traces: Vec<Vec<f64>> = (0..4)
        .map(|s| {
            SeriesBuilder::new(150)
                .level(1.3)
                .noise(0.03)
                .build(s)
                .unwrap()
                .into_values()
        })
        .collect();
    engine
        .train_performance_model(ctx.clone(), &traces)
        .unwrap();
    let frames: Vec<MetricFrame> = (0..2).map(|s| coupled_frame(40, s, false)).collect();
    engine.build_invariants(ctx.clone(), &frames).unwrap();
    engine
        .record_signature(&ctx, "hog", &coupled_frame(40, 9, true))
        .unwrap();

    assert_eq!(engine.detector(&ctx).unwrap().name(), "CUSUM");

    // A sustained 2-sigma shift: the streamed CUSUM must alarm and match
    // the batch CUSUM tick for tick.
    let mut cpi = SeriesBuilder::new(120)
        .level(1.3)
        .noise(0.03)
        .build(77)
        .unwrap()
        .into_values();
    for v in cpi[60..].iter_mut() {
        *v += 0.08;
    }
    let metrics = coupled_frame(120, 11, true);
    let mut diagnosed = false;
    for (t, &sample) in cpi.iter().enumerate() {
        let out = engine.ingest(&ctx, sample, metrics.tick(t)).unwrap();
        diagnosed |= out.diagnosis.is_some();
    }
    let streamed = engine.detection_result(&ctx).unwrap();
    assert!(streamed.is_anomalous(), "shift must alarm under CUSUM");
    assert!(diagnosed, "the alarm onset must trigger a diagnosis");

    let batch_cusum =
        CusumDetector::train(&traces, CusumDetector::DEFAULT_K, CusumDetector::DEFAULT_H)
            .unwrap()
            .detect(&cpi);
    assert_eq!(streamed.anomalies, batch_cusum.alarms);
    assert_eq!(streamed.first_anomaly, batch_cusum.first_alarm);
    // The batch path of Engine::detect streams through the same detector.
    assert_eq!(engine.detect(&ctx, &cpi).unwrap(), streamed);
}

#[test]
fn ingest_errors_are_precise_and_non_destructive() {
    let engine = Engine::new(streaming_config());
    let ctx = OperationContext::new("10.0.0.1", "Wordcount");

    // No model yet: ingest refuses.
    assert!(engine.ingest(&ctx, 1.0, &[1.0; METRIC_COUNT]).is_err());

    let cpi_traces: Vec<Vec<f64>> = (0..3).map(|s| normal_cpi(s, 120)).collect();
    engine
        .train_performance_model(ctx.clone(), &cpi_traces)
        .unwrap();

    // Wrong-width row: rejected without advancing the run.
    assert!(engine.ingest(&ctx, 1.0, &[1.0; 3]).is_err());
    engine.ingest(&ctx, 1.0, &[1.0; METRIC_COUNT]).unwrap();
    let r = engine.detection_result(&ctx).unwrap();
    assert_eq!(r.residuals.len(), 1, "rejected row must not consume a tick");

    // Reset starts a fresh run.
    engine.reset_run(&ctx);
    assert!(engine.detection_result(&ctx).is_none());
    let out = engine.ingest(&ctx, 1.0, &[1.0; METRIC_COUNT]).unwrap();
    assert_eq!(out.tick, 0);
}
