//! Compatibility coverage for the deprecated mutating setters.
//!
//! The builder-first API (`Engine::builder()`) replaced the post-hoc
//! setters in the resilience PR; the old methods remain as thin shims so
//! existing deployments keep compiling. This is the only place they are
//! exercised — everything else in the workspace builds warning-free on the
//! new API.
#![allow(deprecated)]

use std::sync::Arc;

use invarnet_x::core::{
    ArimaDetector, Detector, Engine, EngineCounters, EventSink, InvarNetConfig, InvarNetX,
    OperationContext, Telemetry, ThresholdRule,
};
use invarnet_x::metrics::{MetricFrame, METRIC_COUNT};
use invarnet_x::timeseries::SeriesBuilder;

fn ctx() -> OperationContext {
    OperationContext::new("10.0.0.3", "Wordcount")
}

fn normal_cpi(seed: u64, len: usize) -> Vec<f64> {
    SeriesBuilder::new(len)
        .level(1.0)
        .ar1(0.6)
        .noise(0.02)
        .build(seed)
        .unwrap()
        .into_values()
}

fn coupled_frame(ticks: usize, seed: u64) -> MetricFrame {
    let mut f = MetricFrame::new();
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for t in 0..ticks {
        let latent = (t as f64 * 0.23).sin() * 5.0 + 10.0 + 0.2 * next();
        let row: Vec<f64> = (0..METRIC_COUNT)
            .map(|k| latent * (k + 1) as f64 + 0.1 * next())
            .collect();
        f.push_tick(&row).unwrap();
    }
    f
}

/// The deprecated engine setters still mutate the engine exactly like
/// their builder equivalents.
#[test]
fn engine_setters_still_function() {
    let mut engine = Engine::new(InvarNetConfig {
        min_frame_ticks: 5,
        window_ticks: 40,
        ..InvarNetConfig::default()
    });

    engine.set_threads(3);
    assert_eq!(engine.threads(), 3);

    let counters = Arc::new(EngineCounters::default());
    engine.set_event_sink(Arc::clone(&counters) as Arc<dyn EventSink>);

    let cpi: Vec<Vec<f64>> = (0..3).map(|s| normal_cpi(s, 120)).collect();
    engine.train_performance_model(ctx(), &cpi).unwrap();

    let metrics = coupled_frame(30, 5);
    let samples = normal_cpi(9, 30);
    for (t, &sample) in samples.iter().enumerate() {
        engine.ingest(&ctx(), sample, metrics.tick(t)).unwrap();
    }
    assert_eq!(counters.ticks_ingested(), samples.len() as u64);

    // Attaching telemetry replaces the sink and shares the context
    // registry — the same wiring Engine::builder().telemetry(&hub) does;
    // attribution starts from the attach point.
    let telemetry = Telemetry::shared();
    engine.attach_telemetry(&telemetry);
    assert!(Arc::ptr_eq(engine.context_registry(), telemetry.contexts()));
    for (t, &sample) in samples.iter().enumerate() {
        engine.ingest(&ctx(), sample, metrics.tick(t)).unwrap();
    }
    assert_eq!(telemetry.snapshot().total.ticks, samples.len() as u64);
    assert_eq!(
        counters.ticks_ingested(),
        samples.len() as u64,
        "the replaced sink sees nothing further"
    );
}

/// The deprecated install shims feed state into the engine the same way
/// `Engine::load_state` does.
#[test]
fn engine_install_shims_still_function() {
    let trained = Engine::new(InvarNetConfig {
        min_frame_ticks: 5,
        ..InvarNetConfig::default()
    });
    let cpi: Vec<Vec<f64>> = (0..3).map(|s| normal_cpi(s, 120)).collect();
    trained.train_performance_model(ctx(), &cpi).unwrap();
    let frames: Vec<MetricFrame> = (0..2).map(|s| coupled_frame(40, 100 + s)).collect();
    trained.build_invariants(ctx(), &frames).unwrap();
    let model = trained.performance_model(&ctx()).unwrap().as_ref().clone();
    let invariants = trained.invariant_set(&ctx()).unwrap().as_ref().clone();

    let engine = Engine::new(InvarNetConfig::default());
    engine.install_performance_model(ctx(), model.clone());
    assert!(engine.performance_model(&ctx()).is_some());

    engine.install_invariant_set(ctx(), invariants);
    assert!(engine.invariant_set(&ctx()).is_some());

    let detector: Arc<dyn Detector> = Arc::new(ArimaDetector::new(
        Arc::new(model),
        ThresholdRule::MaxMin,
        3,
    ));
    engine.install_detector(ctx(), detector);
    assert_eq!(engine.detector(&ctx()).unwrap().name(), "ARIMA");
}

/// The deprecated facade setters keep compiling and delegating.
#[test]
fn pipeline_setters_still_function() {
    let mut system = InvarNetX::new(InvarNetConfig::default());
    system.set_threads(2);
    let telemetry = Telemetry::shared();
    system.attach_telemetry(&telemetry);
    let cpi: Vec<Vec<f64>> = (0..3).map(|s| normal_cpi(s, 120)).collect();
    system.train_performance_model(ctx(), &cpi).unwrap();
    assert!(telemetry
        .snapshot()
        .phases
        .iter()
        .any(|p| p.phase == "train"));
}
