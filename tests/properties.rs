//! Property-based tests (proptest) on the statistical substrates' core
//! invariants, exercised through the public facade.

use proptest::prelude::*;

use invarnet_x::core::{pair_count, pair_index, pair_of_index, Similarity};
use invarnet_x::mic::{mic, MicError};
use invarnet_x::timeseries::{
    acf, difference, mean, min_normalize, pearson, percentile, spearman, standardize, stddev,
    undifference,
};

fn finite_series(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6f64..1.0e6, len)
}

proptest! {
    // ------------------------------------------------------- timeseries --

    #[test]
    fn difference_then_undifference_is_identity(xs in finite_series(2..60)) {
        let d = difference(&xs, 1);
        let back = undifference(&d, &[xs[0]]);
        prop_assert_eq!(back.len(), xs.len());
        for (a, b) in back.iter().zip(&xs) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn standardize_yields_zero_mean_unit_sd(xs in finite_series(3..80)) {
        let z = standardize(&xs);
        prop_assert!(mean(&z).abs() < 1e-6);
        let sd = stddev(&z);
        // Constant input maps to zeros (sd 0); otherwise unit sd.
        prop_assert!(sd.abs() < 1e-9 || (sd - 1.0).abs() < 1e-6);
    }

    #[test]
    fn percentile_is_monotone_and_bounded(xs in finite_series(1..50), p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let v_lo = percentile(&xs, lo);
        let v_hi = percentile(&xs, hi);
        prop_assert!(v_lo <= v_hi + 1e-12);
        let mn = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let mx = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v_lo >= mn - 1e-12 && v_hi <= mx + 1e-12);
    }

    #[test]
    fn correlations_are_symmetric_and_bounded(xs in finite_series(2..40), ys in finite_series(2..40)) {
        let n = xs.len().min(ys.len());
        let (a, b) = (&xs[..n], &ys[..n]);
        for f in [pearson, spearman] {
            let r = f(a, b);
            prop_assert!((-1.0..=1.0).contains(&r));
            prop_assert!((r - f(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn pearson_invariant_under_affine_maps(xs in finite_series(3..40), scale in 0.1f64..10.0, shift in -100.0f64..100.0) {
        let ys: Vec<f64> = xs.iter().map(|v| scale * v + shift).collect();
        let r = pearson(&xs, &ys);
        // Unless xs is (near-)constant, a positive affine image correlates 1.
        if stddev(&xs) > 1e-6 {
            prop_assert!((r - 1.0).abs() < 1e-6, "r = {}", r);
        }
    }

    #[test]
    fn acf_lag0_is_one_for_varying_series(xs in finite_series(8..60)) {
        if stddev(&xs) > 1e-9 {
            let a = acf(&xs, 3);
            prop_assert!((a[0] - 1.0).abs() < 1e-9);
            prop_assert!(a.iter().all(|v| v.abs() <= 1.0 + 1e-9));
        }
    }

    #[test]
    fn min_normalize_maps_minimum_to_one(xs in prop::collection::vec(0.001f64..1.0e5, 1..40)) {
        let n = min_normalize(&xs);
        let mn = n.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!((mn - 1.0).abs() < 1e-9);
        prop_assert!(n.iter().all(|&v| v >= 1.0 - 1e-9));
    }

    // -------------------------------------------------------------- mic --

    #[test]
    fn mic_is_bounded_and_symmetric(
        xs in prop::collection::vec(-100.0f64..100.0, 8..40),
        ys in prop::collection::vec(-100.0f64..100.0, 8..40),
    ) {
        let n = xs.len().min(ys.len());
        let (a, b) = (&xs[..n], &ys[..n]);
        let m1 = mic(a, b).expect("valid input");
        let m2 = mic(b, a).expect("valid input");
        prop_assert!((0.0..=1.0).contains(&m1));
        prop_assert!((m1 - m2).abs() < 1e-9);
    }

    #[test]
    fn mic_invariant_under_strictly_monotone_transforms(
        xs in prop::collection::vec(-50.0f64..50.0, 10..30),
        ys in prop::collection::vec(-50.0f64..50.0, 10..30),
    ) {
        let n = xs.len().min(ys.len());
        let (a, b) = (&xs[..n], &ys[..n]);
        let a_t: Vec<f64> = a.iter().map(|v| v.exp().min(1e30)).collect();
        let m1 = mic(a, b).expect("valid");
        let m2 = mic(&a_t, b).expect("valid");
        prop_assert!((m1 - m2).abs() < 1e-9, "{} vs {}", m1, m2);
    }

    #[test]
    fn mic_rejects_bad_input(len in 0usize..4) {
        let xs = vec![1.0; len];
        let too_few = matches!(mic(&xs, &xs), Err(MicError::TooFewPoints { .. }));
        prop_assert!(too_few);
    }

    // ------------------------------------------------------------- core --

    #[test]
    fn pair_indexing_is_a_bijection(idx in 0usize..325) {
        let (a, b) = pair_of_index(idx);
        prop_assert!(a.index() < b.index());
        prop_assert_eq!(pair_index(a.index(), b.index()), idx);
        prop_assert!(idx < pair_count());
    }

    #[test]
    fn similarity_axioms(
        a in prop::collection::vec(0.0f64..1.0, 1..60),
        b in prop::collection::vec(0.0f64..1.0, 1..60),
    ) {
        let n = a.len().min(b.len());
        let (x, y) = (&a[..n], &b[..n]);
        for s in [Similarity::Cosine, Similarity::Jaccard, Similarity::Hamming] {
            let xy = s.score(x, y);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&xy), "{:?}", s);
            prop_assert!((xy - s.score(y, x)).abs() < 1e-12, "{:?} not symmetric", s);
            prop_assert!((s.score(x, x) - 1.0).abs() < 1e-12, "{:?} self-similarity", s);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ARIMA fitting never panics and produces finite artifacts on
    // reasonable series (heavier, so fewer cases).
    #[test]
    fn arima_fit_is_total_on_reasonable_series(
        phi in -0.9f64..0.9,
        sigma in 0.01f64..2.0,
        seed in 0u64..1000,
    ) {
        use invarnet_x::arima::{ArimaModel, ArimaSpec};
        use invarnet_x::timeseries::ArProcess;
        let xs = ArProcess { phi: vec![phi], sigma, c: 0.1 }.generate(200, seed);
        let model = ArimaModel::fit(&xs, ArimaSpec::new(1, 0, 0)).expect("fit");
        prop_assert!(model.sigma2().is_finite() && model.sigma2() >= 0.0);
        prop_assert!(model.ar_coefficients()[0].abs() < 1.5);
        let f = model.one_step_forecasts(&xs);
        prop_assert_eq!(f.len(), xs.len());
        prop_assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn arx_fitness_bounded_on_random_pairs(seed in 0u64..500) {
        use invarnet_x::arx::{arx_association, ArxSearch};
        use invarnet_x::timeseries::ArProcess;
        let x = ArProcess { phi: vec![0.5], sigma: 1.0, c: 0.0 }.generate(120, seed);
        let y = ArProcess { phi: vec![0.3], sigma: 1.0, c: 0.0 }.generate(120, seed + 7);
        let a = arx_association(&x, &y, ArxSearch::default());
        prop_assert!((0.0..=1.0).contains(&a));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // ---------------------------------------------------------- simulator --

    #[test]
    fn simulator_output_is_always_valid(seed in 0u64..10_000, fault_idx in 0usize..15) {
        use invarnet_x::simulator::{FaultInjection, FaultType, RunConfig, simulate, WorkloadType};
        let fault = FaultType::ALL[fault_idx];
        let mut cfg = RunConfig::new(WorkloadType::Grep, seed);
        cfg.fault = Some(FaultInjection {
            fault,
            node: 2,
            start_tick: 20,
            duration_ticks: 30,
        });
        let r = simulate(&cfg);
        prop_assert!(r.ticks > 0 && r.ticks <= cfg.max_ticks);
        for trace in &r.per_node {
            prop_assert_eq!(trace.frame.ticks(), r.ticks);
            prop_assert_eq!(trace.cpi.len(), r.ticks);
            // Finite, non-negative metrics at every tick (spot-check ends).
            for t in [0, r.ticks / 2, r.ticks - 1] {
                prop_assert!(trace.frame.tick(t).iter().all(|v| v.is_finite() && *v >= 0.0));
            }
            prop_assert!(trace.cpi.cpi_series().iter().all(|v| v.is_finite() && *v > 0.0));
        }
    }

    #[test]
    fn simulator_is_deterministic(seed in 0u64..10_000) {
        use invarnet_x::simulator::{RunConfig, simulate, WorkloadType};
        let a = simulate(&RunConfig::new(WorkloadType::Wordcount, seed));
        let b = simulate(&RunConfig::new(WorkloadType::Wordcount, seed));
        prop_assert_eq!(a.ticks, b.ticks);
        for (ta, tb) in a.per_node.iter().zip(&b.per_node) {
            prop_assert_eq!(&ta.frame, &tb.frame);
        }
    }

    #[test]
    fn rolling_stats_are_bounded_by_extremes(xs in prop::collection::vec(-1.0e4f64..1.0e4, 1..50), w in 1usize..12) {
        use invarnet_x::timeseries::{rolling_mean, ewma};
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in rolling_mean(&xs, w) {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
        for v in ewma(&xs, 0.3) {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    // ---------------------------------------------------------- metrics --

    // The streaming ring buffer always holds exactly the suffix an
    // equivalently-built batch frame would: eviction never reorders or
    // corrupts rows.
    #[test]
    fn sliding_window_equals_batch_frame_suffix(
        rows in prop::collection::vec(
            prop::collection::vec(-1.0e6f64..1.0e6, invarnet_x::metrics::METRIC_COUNT..invarnet_x::metrics::METRIC_COUNT + 1),
            0..36,
        ),
        capacity in 1usize..14,
    ) {
        use invarnet_x::metrics::{MetricFrame, SlidingFrame};
        let mut sliding = SlidingFrame::new(capacity);
        let mut batch = MetricFrame::new();
        for row in &rows {
            sliding.push_tick(row).expect("finite row");
            batch.push_tick(row).expect("finite row");
        }
        let suffix_start = rows.len().saturating_sub(capacity);
        prop_assert_eq!(sliding.to_frame(), batch.window(suffix_start..rows.len()));
        prop_assert_eq!(sliding.ticks(), rows.len().min(capacity));
        prop_assert_eq!(sliding.total_pushed(), rows.len() as u64);
        prop_assert_eq!(sliding.is_full(), rows.len() >= capacity);
    }
}
