//! Persistence integration: a trained deployment survives a save/load
//! round-trip and produces identical online behaviour afterwards.

use invarnet_x::core::{
    InvarNetConfig, InvarNetX, ModelStore, OperationContext, SignatureDatabase,
};
use invarnet_x::metrics::MetricFrame;
use invarnet_x::simulator::{FaultType, Runner, WorkloadType};

fn windowed(runner: &Runner, frame: &MetricFrame) -> MetricFrame {
    let len = runner.fault_duration_ticks;
    let start = runner
        .fault_start_tick
        .min(frame.ticks().saturating_sub(len));
    frame.window(start..(start + len).min(frame.ticks()))
}

#[test]
fn save_load_roundtrip_preserves_online_behaviour() {
    let workload = WorkloadType::Grep;
    let runner = Runner::new(401);
    let node = Runner::DEFAULT_FAULT_NODE;
    let context = OperationContext::new(runner.nodes[node].ip(), workload.name());

    // Train.
    let mut system = InvarNetX::new(InvarNetConfig::default());
    let normals = runner.normal_runs(workload, 5);
    let cpi: Vec<Vec<f64>> = normals
        .iter()
        .map(|r| r.per_node[node].cpi.cpi_series())
        .collect();
    system
        .train_performance_model(context.clone(), &cpi)
        .expect("train");
    let frames: Vec<MetricFrame> = normals
        .iter()
        .map(|r| windowed(&runner, &r.per_node[node].frame))
        .collect();
    system
        .build_invariants(context.clone(), &frames)
        .expect("invariants");
    for fault in [FaultType::CpuHog, FaultType::DiskHog] {
        for idx in 0..2 {
            let r = runner.fault_run(workload, fault, idx);
            system
                .record_signature(&context, fault.name(), &r.fault_window().expect("window"))
                .expect("signature");
        }
    }

    // Persist to disk.
    let mut store = ModelStore::new();
    store.put_model(
        &context,
        system.performance_model(&context).expect("trained"),
    );
    store.put_invariants(&context, system.invariant_set(&context).expect("built"));
    store.signatures = system.signature_database();
    let dir = std::env::temp_dir().join("invarnet_integration");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("deployment.json");
    store.save(&path).expect("save");

    // Rehydrate into a fresh system.
    let loaded = ModelStore::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    let mut fresh = InvarNetX::new(InvarNetConfig::default());
    let key = ModelStore::context_key(&context);
    fresh.set_performance_model(
        context.clone(),
        loaded.performance_models[&key]
            .clone()
            .into_model()
            .expect("rebuild"),
    );
    fresh.set_invariant_set(context.clone(), loaded.invariants[&key].clone());
    fresh.set_signature_database(loaded.signatures.clone());

    // Identical online behaviour on a fresh incident.
    let incident = runner.fault_run(workload, FaultType::DiskHog, 7);
    let trace = &incident.per_node[node];
    let w = incident.fault_window().expect("window");

    let det_a = system
        .detect(&context, &trace.cpi.cpi_series())
        .expect("detect");
    let det_b = fresh
        .detect(&context, &trace.cpi.cpi_series())
        .expect("detect");
    assert_eq!(det_a, det_b);

    let diag_a = system.diagnose(&context, &w).expect("diagnose");
    let diag_b = fresh.diagnose(&context, &w).expect("diagnose");
    assert_eq!(diag_a, diag_b);
    assert_eq!(diag_a.root_cause().expect("ranked").problem, "Disk-hog");
}

#[test]
fn signature_database_grows_online() {
    // "As more performance problems are diagnosed, the number of items in
    // signature database increases gradually" — additions go through &self,
    // so a long-running engine can learn while serving queries.
    let workload = WorkloadType::Wordcount;
    let runner = Runner::new(402);
    let node = Runner::DEFAULT_FAULT_NODE;
    let context = OperationContext::new(runner.nodes[node].ip(), workload.name());
    let mut system = InvarNetX::new(InvarNetConfig::default());
    let normals = runner.normal_runs(workload, 4);
    let frames: Vec<MetricFrame> = normals
        .iter()
        .map(|r| windowed(&runner, &r.per_node[node].frame))
        .collect();
    system
        .build_invariants(context.clone(), &frames)
        .expect("invariants");

    let shared: &InvarNetX = &system;
    assert_eq!(shared.signature_database().len(), 0);
    for (i, fault) in [FaultType::CpuHog, FaultType::MemHog, FaultType::NetDrop]
        .iter()
        .enumerate()
    {
        let r = runner.fault_run(workload, *fault, 0);
        shared
            .record_signature(&context, fault.name(), &r.fault_window().expect("window"))
            .expect("record through shared reference");
        assert_eq!(shared.signature_database().len(), i + 1);
    }
}

#[test]
fn xml_export_covers_all_artifacts() {
    let workload = WorkloadType::Sort;
    let runner = Runner::new(403);
    let node = Runner::DEFAULT_FAULT_NODE;
    let context = OperationContext::new(runner.nodes[node].ip(), workload.name());
    let mut system = InvarNetX::new(InvarNetConfig::default());
    let normals = runner.normal_runs(workload, 4);
    let cpi: Vec<Vec<f64>> = normals
        .iter()
        .map(|r| r.per_node[node].cpi.cpi_series())
        .collect();
    system
        .train_performance_model(context.clone(), &cpi)
        .expect("train");
    let frames: Vec<MetricFrame> = normals
        .iter()
        .map(|r| windowed(&runner, &r.per_node[node].frame))
        .collect();
    system
        .build_invariants(context.clone(), &frames)
        .expect("invariants");
    let r = runner.fault_run(workload, FaultType::MemHog, 0);
    system
        .record_signature(&context, "Mem-hog", &r.fault_window().expect("window"))
        .expect("signature");

    let mut store = ModelStore::new();
    store.put_model(
        &context,
        system.performance_model(&context).expect("trained"),
    );
    store.put_invariants(&context, system.invariant_set(&context).expect("built"));
    store.signatures = system.signature_database();

    let xml = invarnet_x::core::to_xml(&store);
    assert!(xml.contains("<model p="));
    assert!(xml.contains(&format!("type=\"{}\"", workload.name())));
    assert!(xml.contains("<invariant m1="));
    assert!(xml.contains("<signature problem=\"Mem-hog\""));

    // The signature bit string length equals the invariant count.
    let bits = xml
        .split("</signature>")
        .next()
        .and_then(|s| s.rsplit('>').next())
        .expect("bits present");
    assert_eq!(bits.len(), store.signatures.records()[0].tuple.len());
}

#[test]
fn empty_signature_database_is_an_error_not_a_panic() {
    let workload = WorkloadType::Wordcount;
    let runner = Runner::new(404);
    let node = Runner::DEFAULT_FAULT_NODE;
    let context = OperationContext::new(runner.nodes[node].ip(), workload.name());
    let mut system = InvarNetX::new(InvarNetConfig::default());
    let normals = runner.normal_runs(workload, 4);
    let frames: Vec<MetricFrame> = normals
        .iter()
        .map(|r| windowed(&runner, &r.per_node[node].frame))
        .collect();
    system
        .build_invariants(context.clone(), &frames)
        .expect("invariants");

    let r = runner.fault_run(workload, FaultType::CpuHog, 0);
    let err = system
        .diagnose(&context, &r.fault_window().expect("window"))
        .expect_err("no signatures recorded");
    assert!(matches!(
        err,
        invarnet_x::core::CoreError::EmptySignatureDatabase(_)
    ));

    // Using a second, isolated signature database wired in is fine.
    system.set_signature_database(SignatureDatabase::new());
    assert_eq!(system.signature_database().len(), 0);
}
