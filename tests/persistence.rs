//! Persistence integration: a trained deployment survives a save/load
//! round-trip and produces identical online behaviour afterwards.

use invarnet_x::core::{
    InvarNetConfig, InvarNetX, ModelStore, OperationContext, SignatureDatabase,
};
use invarnet_x::metrics::MetricFrame;
use invarnet_x::simulator::{FaultType, Runner, WorkloadType};

fn windowed(runner: &Runner, frame: &MetricFrame) -> MetricFrame {
    let len = runner.fault_duration_ticks;
    let start = runner
        .fault_start_tick
        .min(frame.ticks().saturating_sub(len));
    frame.window(start..(start + len).min(frame.ticks()))
}

#[test]
fn save_load_roundtrip_preserves_online_behaviour() {
    let workload = WorkloadType::Grep;
    let runner = Runner::new(401);
    let node = Runner::DEFAULT_FAULT_NODE;
    let context = OperationContext::new(runner.nodes[node].ip(), workload.name());

    // Train.
    let mut system = InvarNetX::new(InvarNetConfig::default());
    let normals = runner.normal_runs(workload, 5);
    let cpi: Vec<Vec<f64>> = normals
        .iter()
        .map(|r| r.per_node[node].cpi.cpi_series())
        .collect();
    system
        .train_performance_model(context.clone(), &cpi)
        .expect("train");
    let frames: Vec<MetricFrame> = normals
        .iter()
        .map(|r| windowed(&runner, &r.per_node[node].frame))
        .collect();
    system
        .build_invariants(context.clone(), &frames)
        .expect("invariants");
    for fault in [FaultType::CpuHog, FaultType::DiskHog] {
        for idx in 0..2 {
            let r = runner.fault_run(workload, fault, idx);
            system
                .record_signature(&context, fault.name(), &r.fault_window().expect("window"))
                .expect("signature");
        }
    }

    // Persist to disk.
    let mut store = ModelStore::new();
    store.put_model(
        &context,
        system.performance_model(&context).expect("trained"),
    );
    store.put_invariants(&context, system.invariant_set(&context).expect("built"));
    store.signatures = system.signature_database();
    let dir = std::env::temp_dir().join("invarnet_integration");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("deployment.json");
    store.save(&path).expect("save");

    // Rehydrate into a fresh system.
    let loaded = ModelStore::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    let mut fresh = InvarNetX::new(InvarNetConfig::default());
    let key = ModelStore::context_key(&context);
    fresh.set_performance_model(
        context.clone(),
        loaded.performance_models[&key]
            .clone()
            .into_model()
            .expect("rebuild"),
    );
    fresh.set_invariant_set(context.clone(), loaded.invariants[&key].clone());
    fresh.set_signature_database(loaded.signatures.clone());

    // Identical online behaviour on a fresh incident.
    let incident = runner.fault_run(workload, FaultType::DiskHog, 7);
    let trace = &incident.per_node[node];
    let w = incident.fault_window().expect("window");

    let det_a = system
        .detect(&context, &trace.cpi.cpi_series())
        .expect("detect");
    let det_b = fresh
        .detect(&context, &trace.cpi.cpi_series())
        .expect("detect");
    assert_eq!(det_a, det_b);

    let diag_a = system.diagnose(&context, &w).expect("diagnose");
    let diag_b = fresh.diagnose(&context, &w).expect("diagnose");
    assert_eq!(diag_a, diag_b);
    assert_eq!(diag_a.root_cause().expect("ranked").problem, "Disk-hog");
}

#[test]
fn signature_database_grows_online() {
    // "As more performance problems are diagnosed, the number of items in
    // signature database increases gradually" — additions go through &self,
    // so a long-running engine can learn while serving queries.
    let workload = WorkloadType::Wordcount;
    let runner = Runner::new(402);
    let node = Runner::DEFAULT_FAULT_NODE;
    let context = OperationContext::new(runner.nodes[node].ip(), workload.name());
    let mut system = InvarNetX::new(InvarNetConfig::default());
    let normals = runner.normal_runs(workload, 4);
    let frames: Vec<MetricFrame> = normals
        .iter()
        .map(|r| windowed(&runner, &r.per_node[node].frame))
        .collect();
    system
        .build_invariants(context.clone(), &frames)
        .expect("invariants");

    let shared: &InvarNetX = &system;
    assert_eq!(shared.with_signature_database(|db| db.len()), 0);
    for (i, fault) in [FaultType::CpuHog, FaultType::MemHog, FaultType::NetDrop]
        .iter()
        .enumerate()
    {
        let r = runner.fault_run(workload, *fault, 0);
        shared
            .record_signature(&context, fault.name(), &r.fault_window().expect("window"))
            .expect("record through shared reference");
        assert_eq!(shared.with_signature_database(|db| db.len()), i + 1);
    }
}

#[test]
fn xml_export_covers_all_artifacts() {
    let workload = WorkloadType::Sort;
    let runner = Runner::new(403);
    let node = Runner::DEFAULT_FAULT_NODE;
    let context = OperationContext::new(runner.nodes[node].ip(), workload.name());
    let mut system = InvarNetX::new(InvarNetConfig::default());
    let normals = runner.normal_runs(workload, 4);
    let cpi: Vec<Vec<f64>> = normals
        .iter()
        .map(|r| r.per_node[node].cpi.cpi_series())
        .collect();
    system
        .train_performance_model(context.clone(), &cpi)
        .expect("train");
    let frames: Vec<MetricFrame> = normals
        .iter()
        .map(|r| windowed(&runner, &r.per_node[node].frame))
        .collect();
    system
        .build_invariants(context.clone(), &frames)
        .expect("invariants");
    let r = runner.fault_run(workload, FaultType::MemHog, 0);
    system
        .record_signature(&context, "Mem-hog", &r.fault_window().expect("window"))
        .expect("signature");

    let mut store = ModelStore::new();
    store.put_model(
        &context,
        system.performance_model(&context).expect("trained"),
    );
    store.put_invariants(&context, system.invariant_set(&context).expect("built"));
    store.signatures = system.signature_database();

    let xml = invarnet_x::core::to_xml(&store);
    assert!(xml.contains("<model p="));
    assert!(xml.contains(&format!("type=\"{}\"", workload.name())));
    assert!(xml.contains("<invariant m1="));
    assert!(xml.contains("<signature problem=\"Mem-hog\""));

    // The signature bit string length equals the invariant count.
    let bits = xml
        .split("</signature>")
        .next()
        .and_then(|s| s.rsplit('>').next())
        .expect("bits present");
    assert_eq!(bits.len(), store.signatures.records()[0].tuple.len());
}

#[test]
fn empty_signature_database_is_an_error_not_a_panic() {
    let workload = WorkloadType::Wordcount;
    let runner = Runner::new(404);
    let node = Runner::DEFAULT_FAULT_NODE;
    let context = OperationContext::new(runner.nodes[node].ip(), workload.name());
    let mut system = InvarNetX::new(InvarNetConfig::default());
    let normals = runner.normal_runs(workload, 4);
    let frames: Vec<MetricFrame> = normals
        .iter()
        .map(|r| windowed(&runner, &r.per_node[node].frame))
        .collect();
    system
        .build_invariants(context.clone(), &frames)
        .expect("invariants");

    let r = runner.fault_run(workload, FaultType::CpuHog, 0);
    let err = system
        .diagnose(&context, &r.fault_window().expect("window"))
        .expect_err("no signatures recorded");
    assert!(matches!(
        err,
        invarnet_x::core::CoreError::EmptySignatureDatabase(_)
    ));

    // Using a second, isolated signature database wired in is fine.
    system.set_signature_database(SignatureDatabase::new());
    assert_eq!(system.with_signature_database(|db| db.len()), 0);
}

#[test]
fn engine_store_roundtrip_with_retry_and_typed_errors() {
    use invarnet_x::core::{CoreError, Engine, ErrorKind};

    let workload = WorkloadType::Grep;
    let runner = Runner::new(405);
    let node = Runner::DEFAULT_FAULT_NODE;
    let context = OperationContext::new(runner.nodes[node].ip(), workload.name());

    let engine = Engine::builder().config(InvarNetConfig::default()).build();
    let normals = runner.normal_runs(workload, 5);
    let cpi: Vec<Vec<f64>> = normals
        .iter()
        .map(|r| r.per_node[node].cpi.cpi_series())
        .collect();
    engine
        .train_performance_model(context.clone(), &cpi)
        .expect("train");
    let frames: Vec<MetricFrame> = normals
        .iter()
        .map(|r| windowed(&runner, &r.per_node[node].frame))
        .collect();
    engine
        .build_invariants(context.clone(), &frames)
        .expect("invariants");
    let r = runner.fault_run(workload, FaultType::CpuHog, 0);
    engine
        .record_signature(&context, "CPU-hog", &r.fault_window().expect("window"))
        .expect("signature");

    // Snapshot → save (with retry policy) → load → rehydrate a fresh engine.
    let dir = std::env::temp_dir().join("invarnet_engine_roundtrip");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("deployment.json");
    let store = engine.snapshot_state();
    engine.save_store(&store, &path).expect("save with retry");

    let fresh = Engine::builder().config(InvarNetConfig::default()).build();
    let loaded = fresh.load_store(&path).expect("load with retry");
    std::fs::remove_file(&path).ok();
    fresh.load_state(&loaded).expect("rehydrate");

    assert!(fresh.performance_model(&context).is_some());
    assert!(fresh.invariant_set(&context).is_some());
    assert_eq!(fresh.with_signature_database(|db| db.len()), 1);

    let w = r.fault_window().expect("window");
    let a = engine.diagnose(&context, &w).expect("diagnose original");
    let b = fresh.diagnose(&context, &w).expect("diagnose rehydrated");
    assert_eq!(a.ranked, b.ranked);

    // A missing file surfaces as a typed Io error with a source chain.
    let err = fresh
        .load_store(&dir.join("does_not_exist.json"))
        .expect_err("missing file");
    assert_eq!(err.kind(), ErrorKind::Io);
    assert!(std::error::Error::source(&err).is_some());
    assert!(matches!(err, CoreError::Io { .. }));
}
