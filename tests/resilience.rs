//! Integration tests of the resilience layer: the degradation ladder picks
//! the declared tier for each failure shape and reports it on the event
//! stream, and the bounded-ingest shed policies always retain a contiguous
//! run of recent ticks at least as long as the detector's
//! consecutive-exceedance window (paper §3.1's 3-tick rule).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use invarnet_x::core::{
    AssociationMeasure, DegradationReason, DegradationTier, DetectionResult, Detector, DetectorRun,
    Engine, EngineEvent, EventSink, InvarNetConfig, MicMeasure, OperationContext, OverloadPolicy,
    SubmitOutcome, SweepBudget, TickDecision,
};
use invarnet_x::metrics::{MetricFrame, METRIC_COUNT};
use proptest::prelude::*;

/// A frame whose metrics all follow one latent ramp, so MIC finds a dense
/// invariant network; `break_metric0` decouples metric 0 for incidents.
fn coupled_frame(ticks: usize, seed: u64, break_metric0: bool) -> MetricFrame {
    let mut f = MetricFrame::new();
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for t in 0..ticks {
        let latent = (t as f64 * 0.23).sin() * 5.0 + 10.0 + 0.2 * next();
        let mut row: Vec<f64> = (0..METRIC_COUNT)
            .map(|k| latent * (k + 1) as f64 + 0.1 * next())
            .collect();
        if break_metric0 {
            row[0] = 100.0 * next();
        }
        f.push_tick(&row).unwrap();
    }
    f
}

/// An [`AssociationMeasure`] that stalls every score call once armed —
/// training runs at full speed, only the measured sweep is slow.
struct SlowWrapper {
    inner: MicMeasure,
    delay: Duration,
    armed: AtomicBool,
}

impl SlowWrapper {
    fn new(delay: Duration) -> Self {
        SlowWrapper {
            inner: MicMeasure::default(),
            delay,
            armed: AtomicBool::new(false),
        }
    }

    fn arm(&self) {
        self.armed.store(true, Ordering::Relaxed);
    }
}

impl AssociationMeasure for SlowWrapper {
    fn score(&self, x: &[f64], y: &[f64]) -> f64 {
        if self.armed.load(Ordering::Relaxed) {
            std::thread::sleep(self.delay);
        }
        self.inner.score(x, y)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
    // No `prepare` override: forces the per-pair path the delay bites on.
}

/// Records the sweep-relevant event sequence as compact labels.
#[derive(Default)]
struct EventLog(Mutex<Vec<String>>);

impl EventLog {
    fn labels(&self) -> Vec<String> {
        self.0.lock().unwrap().clone()
    }
}

impl EventSink for EventLog {
    fn record(&self, event: &EngineEvent) {
        let label = match event {
            EngineEvent::SweepCompleted { .. } => "sweep-completed".to_string(),
            EngineEvent::SweepDegraded { tier, reason, .. } => {
                format!("degraded:{}:{}", tier.name(), reason.name())
            }
            EngineEvent::DiagnosisRan { .. } => "diagnosis-ran".to_string(),
            _ => return,
        };
        self.0.lock().unwrap().push(label);
    }
}

/// Trains invariants and one signature for `ctx` so `diagnose` has both a
/// reference network and a ranking candidate.
fn train(engine: &Engine, ctx: &OperationContext, seed: u64) {
    let frames: Vec<MetricFrame> = (0..2).map(|s| coupled_frame(40, seed + s, false)).collect();
    engine.build_invariants(ctx.clone(), &frames).unwrap();
    engine
        .record_signature(ctx, "metric0-break", &coupled_frame(40, seed + 9, true))
        .unwrap();
}

#[test]
fn warm_cache_degrades_to_tier1_cached_matrix() {
    let slow = Arc::new(SlowWrapper::new(Duration::from_millis(2)));
    let log = Arc::new(EventLog::default());
    let engine = Engine::builder()
        .config(InvarNetConfig::default())
        .measure(Arc::clone(&slow) as Arc<dyn AssociationMeasure>)
        .event_sink(Arc::clone(&log) as Arc<dyn EventSink>)
        .build();
    let ctx = OperationContext::new("10.1.0.1", "Wordcount");
    train(&engine, &ctx, 300);

    // Training sweeps warmed the per-context cache at full fidelity; a
    // fresh incident window under a hopeless budget must fall back to that
    // cached matrix — tier 1, the cheapest acceptable answer.
    slow.arm();
    let incident = coupled_frame(40, 777, true);
    let diagnosis = engine
        .diagnose_with_budget(&ctx, &incident, SweepBudget::wall_millis(5))
        .expect("degraded diagnosis still answers");
    let deg = diagnosis
        .degradation
        .expect("budget overrun must be declared");
    assert_eq!(deg.tier, DegradationTier::CachedMatrix);
    assert!(
        matches!(
            deg.reason,
            DegradationReason::WallClockExceeded | DegradationReason::PredictedOverrun
        ),
        "unexpected reason {:?}",
        deg.reason
    );
    assert!(
        log.labels()
            .iter()
            .any(|l| l.starts_with("degraded:cached-matrix:")),
        "the tier-1 fallback must be visible on the event stream: {:?}",
        log.labels()
    );
}

#[test]
fn cold_cache_degrades_to_tier2_pearson_fallback() {
    let slow = Arc::new(SlowWrapper::new(Duration::from_millis(2)));
    let engine = Engine::builder()
        .config(InvarNetConfig {
            sweep_cache_entries: 0, // no cache → tier 1 unavailable
            ..InvarNetConfig::default()
        })
        .measure(Arc::clone(&slow) as Arc<dyn AssociationMeasure>)
        .build();
    let ctx = OperationContext::new("10.1.0.2", "Wordcount");
    train(&engine, &ctx, 310);

    slow.arm();
    let incident = coupled_frame(40, 778, true);
    let diagnosis = engine
        .diagnose_with_budget(&ctx, &incident, SweepBudget::wall_millis(5))
        .expect("degraded diagnosis still answers");
    let deg = diagnosis
        .degradation
        .expect("budget overrun must be declared");
    assert_eq!(deg.tier, DegradationTier::PearsonFallback);
}

#[test]
fn pair_budget_degrades_to_tier3_partial_matrix() {
    let engine = Engine::builder()
        .config(InvarNetConfig {
            sweep_cache_entries: 0,
            ..InvarNetConfig::default()
        })
        .build();
    let ctx = OperationContext::new("10.1.0.3", "Wordcount");
    train(&engine, &ctx, 320);

    // A pair ceiling below the full population rules out every full sweep
    // (Pearson included): only the partial high-variance matrix fits.
    let incident = coupled_frame(40, 779, true);
    let budget = SweepBudget::default().with_max_pairs(10);
    let diagnosis = engine
        .diagnose_with_budget(&ctx, &incident, budget)
        .expect("degraded diagnosis still answers");
    let deg = diagnosis.degradation.expect("pair budget must be declared");
    assert_eq!(deg.tier, DegradationTier::PartialMatrix);
    assert_eq!(deg.reason, DegradationReason::PairBudgetExceeded);
}

#[test]
fn slow_measure_event_sequence_declares_the_degraded_sweep() {
    let slow = Arc::new(SlowWrapper::new(Duration::from_millis(2)));
    let log = Arc::new(EventLog::default());
    let engine = Engine::builder()
        .config(InvarNetConfig::default())
        .measure(Arc::clone(&slow) as Arc<dyn AssociationMeasure>)
        .event_sink(Arc::clone(&log) as Arc<dyn EventSink>)
        .build();
    let ctx = OperationContext::new("10.1.0.4", "Wordcount");
    train(&engine, &ctx, 330);
    let baseline_labels = log.labels().len();

    // Healthy diagnosis: a completed sweep, then the diagnosis — and no
    // degradation anywhere.
    let incident_a = coupled_frame(40, 780, true);
    engine
        .diagnose_with_budget(&ctx, &incident_a, SweepBudget::UNLIMITED)
        .expect("full-fidelity diagnosis");
    let healthy: Vec<String> = log.labels().split_off(baseline_labels);
    assert_eq!(
        healthy,
        vec!["sweep-completed".to_string(), "diagnosis-ran".to_string()],
        "full fidelity emits completion then diagnosis"
    );

    // Faulted diagnosis: the sweep never completes; a degradation event
    // must precede the diagnosis event, and no completion may be claimed.
    slow.arm();
    let after_healthy = log.labels().len();
    let incident_b = coupled_frame(40, 781, true);
    engine
        .diagnose_with_budget(&ctx, &incident_b, SweepBudget::wall_millis(5))
        .expect("degraded diagnosis");
    let faulted: Vec<String> = log.labels().split_off(after_healthy);
    assert_eq!(
        faulted.len(),
        2,
        "exactly degradation + diagnosis: {faulted:?}"
    );
    assert!(
        faulted[0].starts_with("degraded:cached-matrix:"),
        "degradation is declared before the answer: {faulted:?}"
    );
    assert_eq!(faulted[1], "diagnosis-ran");
}

/// A detector whose per-tick score echoes the CPI sample, so drained
/// [`invarnet_x::core::TickOutcome`]s reveal exactly which submitted ticks
/// survived the shed policy.
struct EchoDetector;

struct EchoRun {
    seen: usize,
}

impl DetectorRun for EchoRun {
    fn step(&mut self, x: f64) -> TickDecision {
        self.seen += 1;
        TickDecision {
            residual: x,
            exceeded: false,
            anomalous: false,
        }
    }

    fn result(&self) -> DetectionResult {
        DetectionResult {
            residuals: Vec::new(),
            exceedances: Vec::new(),
            anomalies: Vec::new(),
            threshold: f64::INFINITY,
            first_anomaly: None,
        }
    }
}

impl Detector for EchoDetector {
    fn name(&self) -> &'static str {
        "echo"
    }

    fn begin_run(&self) -> Box<dyn DetectorRun> {
        Box::new(EchoRun { seen: 0 })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever queue capacity is configured and however hard the queue is
    /// flooded, both shed policies keep a *contiguous* run of submitted
    /// ticks no shorter than the detector's consecutive-exceedance window
    /// (`consecutive_anomalies`, the paper's 3-tick rule) — shedding can
    /// bound memory, but it must never starve anomaly confirmation.
    #[test]
    fn shed_policies_keep_a_contiguous_detection_window(
        cap in 0usize..12,
        n in 0usize..40,
        policy_pick in 0usize..2,
    ) {
        let shed_oldest = policy_pick == 0;
        let policy = if shed_oldest {
            OverloadPolicy::ShedOldest
        } else {
            OverloadPolicy::ShedNewest
        };
        let config = InvarNetConfig {
            ingest_queue_ticks: cap,
            overload: policy,
            ..InvarNetConfig::default()
        };
        let window = config.consecutive_anomalies;
        let ctx = OperationContext::new("10.2.0.1", "Sort");
        let engine = Engine::builder()
            .config(config)
            .detector(ctx.clone(), Arc::new(EchoDetector))
            .build();

        let capacity = engine.ingest_queue_capacity();
        prop_assert!(
            capacity >= window,
            "effective capacity {capacity} below the {window}-tick detection window"
        );

        let mut rejected = 0usize;
        for t in 0..n {
            let row = vec![t as f64; METRIC_COUNT];
            if matches!(
                engine.submit(&ctx, t as f64, &row),
                SubmitOutcome::Rejected
            ) {
                rejected += 1;
            }
        }

        let kept = n.min(capacity);
        let drained = engine.drain(usize::MAX);
        prop_assert_eq!(drained.len(), kept, "queue retains min(n, capacity) ticks");
        prop_assert!(kept >= window.min(n), "retained run shorter than the detection window");
        if shed_oldest {
            prop_assert_eq!(rejected, 0, "ShedOldest never rejects the incoming tick");
        } else {
            prop_assert_eq!(rejected, n - kept, "ShedNewest rejects exactly the overflow");
        }

        // The survivors are the expected *contiguous* slice of the
        // submission order: the newest `kept` under ShedOldest, the oldest
        // `kept` under ShedNewest.
        let mut survived: Vec<usize> = Vec::with_capacity(drained.len());
        for (c, r) in &drained {
            prop_assert_eq!(c, &ctx);
            survived.push(r.as_ref().expect("echo ingest never fails").residual as usize);
        }
        let expected: Vec<usize> = if shed_oldest {
            (n - kept..n).collect()
        } else {
            (0..kept).collect()
        };
        prop_assert_eq!(survived, expected, "survivors are not a contiguous run");
    }
}
