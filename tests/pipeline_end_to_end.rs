//! End-to-end integration: the full offline→online pipeline over the
//! simulator, across crates (simulator → metrics → core).

use invarnet_x::core::{InvarNetConfig, InvarNetX, OperationContext};
use invarnet_x::metrics::MetricFrame;
use invarnet_x::simulator::{FaultType, Runner, WorkloadType};

struct Setup {
    runner: Runner,
    system: InvarNetX,
    context: OperationContext,
    workload: WorkloadType,
}

fn train_system(workload: WorkloadType, seed: u64, faults: &[FaultType]) -> Setup {
    let runner = Runner::new(seed);
    let node = Runner::DEFAULT_FAULT_NODE;
    let context = OperationContext::new(runner.nodes[node].ip(), workload.name());
    let mut system = InvarNetX::new(InvarNetConfig::default());

    let normals = runner.normal_runs(workload, 5);
    let cpi: Vec<Vec<f64>> = normals
        .iter()
        .map(|r| r.per_node[node].cpi.cpi_series())
        .collect();
    system
        .train_performance_model(context.clone(), &cpi)
        .expect("ARIMA training");

    let window = |frame: &MetricFrame| {
        let len = runner.fault_duration_ticks;
        let start = runner
            .fault_start_tick
            .min(frame.ticks().saturating_sub(len));
        frame.window(start..(start + len).min(frame.ticks()))
    };
    let frames: Vec<MetricFrame> = normals
        .iter()
        .map(|r| window(&r.per_node[node].frame))
        .collect();
    system
        .build_invariants(context.clone(), &frames)
        .expect("invariant construction");

    for &fault in faults {
        for run_idx in 0..2 {
            let r = runner.fault_run(workload, fault, run_idx);
            system
                .record_signature(&context, fault.name(), &r.fault_window().expect("window"))
                .expect("signature");
        }
    }
    Setup {
        runner,
        system,
        context,
        workload,
    }
}

#[test]
fn distinct_resource_hogs_are_diagnosed_correctly() {
    let faults = [FaultType::CpuHog, FaultType::MemHog, FaultType::DiskHog];
    let s = train_system(WorkloadType::Wordcount, 101, &faults);
    for fault in faults {
        for run_idx in 3..6 {
            let r = s.runner.fault_run(s.workload, fault, run_idx);
            let d = s
                .system
                .diagnose(&s.context, &r.fault_window().expect("window"))
                .expect("diagnosis");
            assert_eq!(
                d.root_cause().expect("non-empty ranking").problem,
                fault.name(),
                "run {run_idx}"
            );
        }
    }
}

#[test]
fn detection_fires_during_faults_and_stays_quiet_otherwise() {
    let s = train_system(WorkloadType::Wordcount, 102, &[FaultType::CpuHog]);
    let node = Runner::DEFAULT_FAULT_NODE;

    // Fault runs: anomaly within (or shortly after) the injection window.
    for run_idx in 3..6 {
        let r = s.runner.fault_run(s.workload, FaultType::CpuHog, run_idx);
        let det = s
            .system
            .detect(&s.context, &r.per_node[node].cpi.cpi_series())
            .expect("model trained");
        let first = det.first_anomaly.expect("fault must be detected");
        assert!(
            first >= s.runner.fault_start_tick
                && first <= s.runner.fault_start_tick + s.runner.fault_duration_ticks,
            "anomaly at {first}, window starts at {}",
            s.runner.fault_start_tick
        );
    }

    // Fresh normal runs: no anomaly.
    for run_idx in 50..54 {
        let r = s.runner.normal_run(s.workload, run_idx);
        let det = s
            .system
            .detect(&s.context, &r.per_node[node].cpi.cpi_series())
            .expect("model trained");
        assert!(
            !det.is_anomalous(),
            "false alarm at {:?} in run {run_idx}",
            det.first_anomaly
        );
    }
}

#[test]
fn suspend_produces_mass_violations_and_is_unambiguous() {
    let faults = [FaultType::Suspend, FaultType::CpuHog, FaultType::NetDrop];
    let s = train_system(WorkloadType::Wordcount, 103, &faults);
    for run_idx in 3..7 {
        let r = s.runner.fault_run(s.workload, FaultType::Suspend, run_idx);
        let d = s
            .system
            .diagnose(&s.context, &r.fault_window().expect("window"))
            .expect("diagnosis");
        // "These two faults can cause a large number of violations of
        // invariants which makes them easily distinguished".
        assert!(
            d.tuple.violation_count() * 2 > d.tuple.len(),
            "Suspend should violate most invariants ({} of {})",
            d.tuple.violation_count(),
            d.tuple.len()
        );
        assert_eq!(d.root_cause().expect("ranking").problem, "Suspend");
    }
}

#[test]
fn normal_windows_produce_few_violations() {
    let s = train_system(WorkloadType::Wordcount, 104, &[FaultType::CpuHog]);
    let node = Runner::DEFAULT_FAULT_NODE;
    for run_idx in 60..64 {
        let r = s.runner.normal_run(s.workload, run_idx);
        let frame = &r.per_node[node].frame;
        let len = s.runner.fault_duration_ticks;
        let start = s
            .runner
            .fault_start_tick
            .min(frame.ticks().saturating_sub(len));
        let w = frame.window(start..(start + len).min(frame.ticks()));
        let tuple = s.system.violation_tuple(&s.context, &w).expect("tuple");
        let rate = tuple.violation_count() as f64 / tuple.len().max(1) as f64;
        assert!(
            rate < 0.1,
            "normal window violates {:.0}% of invariants",
            rate * 100.0
        );
    }
}

#[test]
fn diagnosis_is_deterministic_given_seeds() {
    let faults = [FaultType::MemHog, FaultType::DiskHog];
    let a = train_system(WorkloadType::Sort, 105, &faults);
    let b = train_system(WorkloadType::Sort, 105, &faults);
    let run_a = a.runner.fault_run(a.workload, FaultType::MemHog, 4);
    let run_b = b.runner.fault_run(b.workload, FaultType::MemHog, 4);
    let d_a = a
        .system
        .diagnose(&a.context, &run_a.fault_window().expect("window"))
        .expect("diagnosis");
    let d_b = b
        .system
        .diagnose(&b.context, &run_b.fault_window().expect("window"))
        .expect("diagnosis");
    assert_eq!(d_a.ranked, d_b.ranked);
    assert_eq!(d_a.tuple, d_b.tuple);
}

#[test]
fn interactive_workload_supports_overload_diagnosis() {
    let faults = [FaultType::Overload, FaultType::Suspend, FaultType::CpuHog];
    let s = train_system(WorkloadType::TpcDs, 106, &faults);
    let mut correct = 0;
    for run_idx in 3..7 {
        let r = s.runner.fault_run(s.workload, FaultType::Overload, run_idx);
        let d = s
            .system
            .diagnose(&s.context, &r.fault_window().expect("window"))
            .expect("diagnosis");
        if d.root_cause().expect("ranking").problem == "Overload" {
            correct += 1;
        }
    }
    assert!(correct >= 3, "Overload diagnosed {correct}/4");
}

#[test]
fn signature_conflict_detector_flags_the_net_faults() {
    use invarnet_x::core::Similarity;
    let faults = [
        FaultType::NetDrop,
        FaultType::NetDelay,
        FaultType::CpuHog,
        FaultType::MemHog,
    ];
    let s = train_system(WorkloadType::Wordcount, 107, &faults);
    let conflicts = s
        .system
        .with_signature_database(|db| db.conflicts(&s.context, Similarity::Cosine, 0.85))
        .expect("consistent tuples");
    // The deliberate Net-drop/Net-delay conflict must surface; the
    // resource hogs must not conflict with each other at this bar.
    assert!(
        conflicts
            .iter()
            .any(|(a, b, _)| a == "Net-delay" && b == "Net-drop"),
        "net conflict missing: {conflicts:?}"
    );
    assert!(
        !conflicts
            .iter()
            .any(|(a, b, _)| a == "CPU-hog" && b == "Mem-hog"),
        "hogs should not conflict: {conflicts:?}"
    );
}

#[test]
fn concurrent_faults_surface_in_top_causes() {
    use invarnet_x::simulator::{simulate, FaultInjection, RunConfig};
    let faults = [FaultType::CpuHog, FaultType::NetDrop, FaultType::MemHog];
    let s = train_system(WorkloadType::Wordcount, 108, &faults);
    let node = Runner::DEFAULT_FAULT_NODE;
    let inj = |fault| FaultInjection {
        fault,
        node,
        start_tick: s.runner.fault_start_tick,
        duration_ticks: s.runner.fault_duration_ticks,
    };
    let mut hits = 0;
    for k in 0..4u64 {
        let mut cfg = RunConfig::new(s.workload, 5000 + k);
        cfg.nodes = s.runner.nodes.clone();
        cfg.fault = Some(inj(FaultType::MemHog));
        cfg.extra_faults.push(inj(FaultType::NetDrop));
        let r = simulate(&cfg);
        let d = s
            .system
            .diagnose(&s.context, &r.fault_window().expect("window"))
            .expect("diagnosis");
        let top2: Vec<&str> = d
            .top_causes(2, 0.0)
            .iter()
            .map(|c| c.problem.as_str())
            .collect();
        if top2.contains(&"Mem-hog") && top2.contains(&"Net-drop") {
            hits += 1;
        }
    }
    assert!(hits >= 2, "both causes in top-2 for only {hits}/4 runs");
}
