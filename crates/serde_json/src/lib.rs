//! Offline compatibility subset of `serde_json`.
//!
//! Serializes the compat `serde` crate's [`Value`] tree to JSON text and
//! parses it back. Floats are written with Rust's shortest-roundtrip
//! formatting (`{:?}`), so every finite `f64` survives a `to_string` →
//! `from_str` round-trip bit-exactly — the property the upstream
//! `float_roundtrip` feature provides and the `ModelStore` persistence
//! tests rely on.

use std::fmt;

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// `serde_json`-style result alias.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------- writing --

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, v: &Value) {
    match *v {
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        _ => unreachable!("write_number only sees numeric variants"),
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(_) | Value::UInt(_) | Value::Float(_) => write_number(out, v),
        Value::Str(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

/// Compact JSON text of any serializable value.
///
/// # Errors
///
/// Never fails for the compat value model; the `Result` mirrors upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Pretty-printed (2-space indented) JSON text.
///
/// # Errors
///
/// Never fails for the compat value model; the `Result` mirrors upstream.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Renders a value tree directly.
///
/// # Errors
///
/// Never fails; mirrors upstream's signature.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

// ---------------------------------------------------------------- parsing --

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.error(&format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{kw}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.error("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| self.error("truncated surrogate"))?;
                                    let low = u32::from_str_radix(
                                        std::str::from_utf8(hex2)
                                            .map_err(|_| self.error("bad surrogate"))?,
                                        16,
                                    )
                                    .map_err(|_| self.error("bad surrogate"))?;
                                    self.pos += 6;
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(self.error("lone surrogate"));
                                }
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(ch)
                                    .ok_or_else(|| self.error("invalid codepoint"))?,
                            );
                        }
                        other => {
                            return Err(self.error(&format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Copy the maximal run of plain bytes in one step; the
                    // input arrived as `&str`, so a run without `"` or `\`
                    // is valid UTF-8 verbatim (validated on the run, not
                    // the whole remaining input — that was quadratic).
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error("invalid float"))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.error("invalid integer"))
        }
    }
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

/// Reconstructs a typed value from a value tree.
///
/// # Errors
///
/// Shape mismatch.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_roundtrip_is_exact() {
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-7, 0.0] {
            let text = to_string(&v).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{text}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nbreak \"quoted\" back\\slash \t tab \u{1}ctrl 💡".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn pretty_output_shape() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let mut out = String::new();
        super::write_value(&mut out, &v, Some(2), 0);
        assert_eq!(
            out,
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ]\n}"
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v: Value = Parser::new(" { \"xs\" : [1, -2, 3.5, 1e3], \"ok\": false } ")
            .parse_value()
            .unwrap();
        let xs = v.field("xs").unwrap().as_array().unwrap();
        assert_eq!(xs.len(), 4);
        assert_eq!(xs[0], Value::Int(1));
        assert_eq!(xs[1], Value::Int(-2));
        assert_eq!(xs[2], Value::Float(3.5));
        assert_eq!(xs[3], Value::Float(1000.0));
        assert_eq!(v.field("ok").unwrap(), &Value::Bool(false));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escape_parsing() {
        let back: String = from_str("\"\\u00e9\\ud83d\\udca1\"").unwrap();
        assert_eq!(back, "é💡");
    }
}
