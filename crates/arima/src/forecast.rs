//! Forecasting on the original (undifferenced) scale.
//!
//! The anomaly detector needs, for every time step `t`, the prediction
//! `M'cpi(t)` the model would have made from the history up to `t - 1`, so
//! the central routine is [`ArimaModel::one_step_forecasts`].

use ix_timeseries::difference;

use crate::ArimaModel;

impl ArimaModel {
    /// One-step-ahead in-sample forecasts aligned with `xs`: entry `t` is
    /// the model's prediction of `xs[t]` given `xs[..t]`.
    ///
    /// The first `warmup()` entries simply echo the observation (residual
    /// zero) because the model has no usable history there; the anomaly
    /// detector treats the warmup region as normal by construction.
    pub fn one_step_forecasts(&self, xs: &[f64]) -> Vec<f64> {
        let spec = self.spec();
        let d = spec.d;
        let n = xs.len();
        let warm = spec.warmup();
        let mut out = Vec::with_capacity(n);

        // Work on the differenced series; innovations are estimated
        // sequentially from the model's own predictions.
        let w = difference(xs, d);
        let wn = w.len();
        let mut e = vec![0.0; wn];
        let mut w_hat = vec![0.0; wn];
        let start = spec.p.max(spec.q);
        for (t, w_hat_t) in w_hat.iter_mut().enumerate() {
            if t < start {
                *w_hat_t = w[t];
                continue;
            }
            let mut pred = self.intercept();
            for (i, &phi) in self.ar_coefficients().iter().enumerate() {
                pred += phi * w[t - 1 - i];
            }
            for (j, &theta) in self.ma_coefficients().iter().enumerate() {
                pred += theta * e[t - 1 - j];
            }
            *w_hat_t = pred;
            e[t] = w[t] - pred;
        }

        // Undifference the predictions: a forecast of the d-th difference at
        // step t plus the known previous original values reconstructs the
        // original-scale forecast. For d = 0 the mapping is identity.
        for t in 0..n {
            if t < warm {
                out.push(xs[t]);
                continue;
            }
            // Index into w for the difference ending at original index t.
            let wt = t - d;
            let mut pred = w_hat[wt];
            // Reconstruct: x[t] = w[t] + sum of binomial-weighted previous
            // original values. For d=0: x=w. For d=1: x[t] = w + x[t-1].
            // For d=2: x[t] = w + 2 x[t-1] - x[t-2]. General: inclusion-
            // exclusion with alternating binomial coefficients.
            let mut sign = 1.0;
            let mut binom = 1.0;
            for k in 1..=d {
                binom = binom * (d - k + 1) as f64 / k as f64;
                sign = -sign;
                pred += -sign * binom * xs[t - k];
            }
            out.push(pred);
        }
        out
    }

    /// In-sample one-step residuals: `xs[t] - one_step_forecasts(xs)[t]`.
    pub fn residuals(&self, xs: &[f64]) -> Vec<f64> {
        self.one_step_forecasts(xs)
            .iter()
            .zip(xs)
            .map(|(f, x)| x - f)
            .collect()
    }

    /// Iterated multi-step forecast of `horizon` future values after the end
    /// of `xs`. Future innovations are set to their expectation (zero).
    pub fn forecast(&self, xs: &[f64], horizon: usize) -> Vec<f64> {
        let spec = self.spec();
        let d = spec.d;
        let mut history = xs.to_vec();

        // Rebuild the innovation sequence over the known history so MA terms
        // have state to start from.
        let w = difference(xs, d);
        let start = spec.p.max(spec.q);
        let mut e = vec![0.0; w.len()];
        for t in start..w.len() {
            let mut pred = self.intercept();
            for (i, &phi) in self.ar_coefficients().iter().enumerate() {
                pred += phi * w[t - 1 - i];
            }
            for (j, &theta) in self.ma_coefficients().iter().enumerate() {
                pred += theta * e[t - 1 - j];
            }
            e[t] = w[t] - pred;
        }

        let mut w_ext = w;
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let t = w_ext.len();
            let mut pred = self.intercept();
            for (i, &phi) in self.ar_coefficients().iter().enumerate() {
                if t > i {
                    pred += phi * w_ext[t - 1 - i];
                }
            }
            for (j, &theta) in self.ma_coefficients().iter().enumerate() {
                if t > j && t - 1 - j < e.len() {
                    pred += theta * e[t - 1 - j];
                }
            }
            w_ext.push(pred);
            // Future innovations are zero in expectation.
            // Reconstruct the original-scale value.
            let ht = history.len();
            let mut x_pred = pred;
            let mut sign = 1.0;
            let mut binom = 1.0;
            for k in 1..=d {
                binom = binom * (d - k + 1) as f64 / k as f64;
                sign = -sign;
                x_pred += -sign * binom * history[ht - k];
            }
            history.push(x_pred);
            out.push(x_pred);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{ArimaModel, ArimaSpec};
    use ix_timeseries::{mean, stddev, ArProcess};

    #[test]
    fn one_step_forecasts_align_and_warmup_echoes() {
        let xs = ArProcess {
            phi: vec![0.7],
            sigma: 1.0,
            c: 0.0,
        }
        .generate(300, 10);
        let m = ArimaModel::fit(&xs, ArimaSpec::new(1, 0, 0)).unwrap();
        let f = m.one_step_forecasts(&xs);
        assert_eq!(f.len(), xs.len());
        assert_eq!(f[0], xs[0]);
    }

    #[test]
    fn residual_stddev_matches_innovation_scale() {
        let xs = ArProcess {
            phi: vec![0.7],
            sigma: 2.0,
            c: 0.0,
        }
        .generate(3000, 11);
        let m = ArimaModel::fit(&xs, ArimaSpec::new(1, 0, 0)).unwrap();
        let r = m.residuals(&xs);
        let s = stddev(&r[10..]);
        assert!((s - 2.0).abs() < 0.2, "residual stddev = {s}");
    }

    #[test]
    fn forecasts_beat_naive_predictor_on_ar_series() {
        let xs = ArProcess {
            phi: vec![0.9],
            sigma: 1.0,
            c: 0.0,
        }
        .generate(1000, 12);
        let m = ArimaModel::fit(&xs, ArimaSpec::new(1, 0, 0)).unwrap();
        let f = m.one_step_forecasts(&xs);
        let model_sse: f64 = (10..xs.len()).map(|t| (xs[t] - f[t]).powi(2)).sum();
        let mean_sse: f64 = {
            let mu = mean(&xs);
            (10..xs.len()).map(|t| (xs[t] - mu).powi(2)).sum()
        };
        assert!(model_sse < 0.5 * mean_sse);
    }

    #[test]
    fn differenced_model_tracks_random_walk() {
        // Random walk: ARIMA(0,1,0) one-step forecast is the previous value.
        let steps = ArProcess {
            phi: vec![],
            sigma: 1.0,
            c: 0.0,
        }
        .generate(500, 13);
        let mut xs = vec![0.0];
        for e in &steps {
            let last = *xs.last().expect("non-empty");
            xs.push(last + e);
        }
        let m = ArimaModel::fit(&xs, ArimaSpec::new(0, 1, 0)).unwrap();
        let f = m.one_step_forecasts(&xs);
        for t in 5..xs.len() {
            // Prediction = previous value + estimated drift (small).
            assert!((f[t] - xs[t - 1]).abs() < 0.2, "t={t}");
        }
    }

    #[test]
    fn multi_step_forecast_converges_to_mean() {
        let xs = ArProcess {
            phi: vec![0.5],
            sigma: 0.5,
            c: 1.0,
        }
        .generate(2000, 14);
        let m = ArimaModel::fit(&xs, ArimaSpec::new(1, 0, 0)).unwrap();
        let f = m.forecast(&xs, 200);
        // Process mean = c / (1 - phi) = 2.
        let tail = f.last().copied().unwrap();
        assert!((tail - 2.0).abs() < 0.3, "forecast tail = {tail}");
    }

    #[test]
    fn forecast_length() {
        let xs = ArProcess {
            phi: vec![0.3],
            sigma: 1.0,
            c: 0.0,
        }
        .generate(200, 15);
        let m = ArimaModel::fit(&xs, ArimaSpec::new(1, 0, 0)).unwrap();
        assert_eq!(m.forecast(&xs, 7).len(), 7);
        assert!(m.forecast(&xs, 0).is_empty());
    }
}
