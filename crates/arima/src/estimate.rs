//! Parameter estimation: Yule–Walker (Levinson–Durbin) and the
//! Hannan–Rissanen two-stage procedure.

use ix_linalg::Matrix;
use ix_timeseries::{autocovariance, difference, mean};

use crate::{ArimaError, ArimaModel, ArimaSpec};

/// Solves the Yule–Walker equations for an AR(`p`) model via the
/// Levinson–Durbin recursion, returning the AR coefficients.
///
/// Returns all-zero coefficients for a constant (zero-variance) series.
///
/// # Panics
///
/// Panics when `p == 0` or `xs.len() <= p` (callers validate first).
pub fn yule_walker(xs: &[f64], p: usize) -> Vec<f64> {
    assert!(p > 0, "yule_walker requires p > 0");
    assert!(xs.len() > p, "yule_walker requires more samples than lags");
    let gamma = autocovariance(xs, p);
    if gamma[0] <= 1e-300 {
        return vec![0.0; p];
    }
    // Levinson–Durbin on the autocovariance sequence.
    let mut phi = vec![0.0; p + 1];
    let mut prev = vec![0.0; p + 1];
    let mut e = gamma[0];
    for k in 1..=p {
        let mut acc = gamma[k];
        for j in 1..k {
            acc -= prev[j] * gamma[k - j];
        }
        let kappa = if e.abs() < 1e-300 { 0.0 } else { acc / e };
        phi[k] = kappa;
        for j in 1..k {
            phi[j] = prev[j] - kappa * prev[k - j];
        }
        e *= 1.0 - kappa * kappa;
        prev[..=k].copy_from_slice(&phi[..=k]);
    }
    phi[1..].to_vec()
}

/// AR(`p`) one-step residuals of `xs` using coefficients `phi` and the
/// series mean as the level. The first `p` entries are zero (warmup).
fn ar_residuals(xs: &[f64], phi: &[f64]) -> Vec<f64> {
    let p = phi.len();
    let m = mean(xs);
    let mut res = vec![0.0; xs.len()];
    for t in p..xs.len() {
        let mut pred = m;
        for (i, &ph) in phi.iter().enumerate() {
            pred += ph * (xs[t - 1 - i] - m);
        }
        res[t] = xs[t] - pred;
    }
    res
}

/// Fits an ARIMA model (see [`ArimaModel::fit`]).
pub(crate) fn fit(xs: &[f64], spec: ArimaSpec) -> Result<ArimaModel, ArimaError> {
    if xs.iter().any(|v| !v.is_finite()) {
        return Err(ArimaError::NonFinite);
    }
    // Enough samples for differencing, the long-AR stage and a handful of
    // regression rows.
    let long_ar = long_ar_order(spec, xs.len().saturating_sub(spec.d));
    let required = spec.d + spec.warmup().max(long_ar) + spec.n_params() + 8;
    if xs.len() < required {
        return Err(ArimaError::TooShort {
            required,
            got: xs.len(),
        });
    }

    let w = difference(xs, spec.d);
    let n = w.len();

    if spec.p == 0 && spec.q == 0 {
        // Pure mean model on the differenced series.
        let c = mean(&w);
        let sigma2 = w.iter().map(|v| (v - c) * (v - c)).sum::<f64>() / n as f64;
        return Ok(ArimaModel::from_parts(spec, c, vec![], vec![], sigma2, n));
    }

    if spec.q == 0 {
        return fit_pure_ar(&w, spec);
    }

    // Hannan–Rissanen stage 1: long AR to proxy the innovations.
    let phi_long = yule_walker(&w, long_ar);
    let e_hat = ar_residuals(&w, &phi_long);

    // Stage 2: OLS of w[t] on [1, w lags, e_hat lags].
    let start = long_ar.max(spec.p).max(spec.q);
    let rows = n - start;
    let cols = 1 + spec.p + spec.q;
    let mut data = Vec::with_capacity(rows * cols);
    let mut y = Vec::with_capacity(rows);
    for t in start..n {
        data.push(1.0);
        for i in 1..=spec.p {
            data.push(w[t - i]);
        }
        for j in 1..=spec.q {
            data.push(e_hat[t - j]);
        }
        y.push(w[t]);
    }
    let design = Matrix::from_vec(rows, cols, data).expect("sized by construction");
    let fit = ix_linalg::ols_residuals(&design, &y).map_err(|_| ArimaError::Degenerate)?;
    let beta = &fit.coefficients;
    let intercept = beta[0];
    let ar = beta[1..1 + spec.p].to_vec();
    let ma = beta[1 + spec.p..].to_vec();
    Ok(ArimaModel::from_parts(
        spec,
        intercept,
        ar,
        ma,
        fit.sigma2(),
        rows,
    ))
}

fn fit_pure_ar(w: &[f64], spec: ArimaSpec) -> Result<ArimaModel, ArimaError> {
    let n = w.len();
    let p = spec.p;
    let rows = n - p;
    let cols = 1 + p;
    let mut data = Vec::with_capacity(rows * cols);
    let mut y = Vec::with_capacity(rows);
    for t in p..n {
        data.push(1.0);
        for i in 1..=p {
            data.push(w[t - i]);
        }
        y.push(w[t]);
    }
    let design = Matrix::from_vec(rows, cols, data).expect("sized by construction");
    let fit = ix_linalg::ols_residuals(&design, &y).map_err(|_| ArimaError::Degenerate)?;
    let beta = &fit.coefficients;
    Ok(ArimaModel::from_parts(
        spec,
        beta[0],
        beta[1..].to_vec(),
        vec![],
        fit.sigma2(),
        rows,
    ))
}

/// Order of the long autoregression in Hannan–Rissanen stage 1.
fn long_ar_order(spec: ArimaSpec, n: usize) -> usize {
    if spec.q == 0 {
        return spec.p;
    }
    let base = spec.p.max(spec.q) + 5;
    // Cap by both a hard limit and a quarter of the data.
    base.min(20).min((n / 4).max(spec.p.max(spec.q) + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_timeseries::{ArProcess, MaProcess};

    #[test]
    fn yule_walker_recovers_ar1() {
        let xs = ArProcess {
            phi: vec![0.8],
            sigma: 1.0,
            c: 0.0,
        }
        .generate(4000, 1);
        let phi = yule_walker(&xs, 1);
        assert!((phi[0] - 0.8).abs() < 0.05, "phi = {:?}", phi);
    }

    #[test]
    fn yule_walker_recovers_ar2() {
        let xs = ArProcess {
            phi: vec![0.5, 0.3],
            sigma: 1.0,
            c: 0.0,
        }
        .generate(8000, 2);
        let phi = yule_walker(&xs, 2);
        assert!((phi[0] - 0.5).abs() < 0.07, "{phi:?}");
        assert!((phi[1] - 0.3).abs() < 0.07, "{phi:?}");
    }

    #[test]
    fn yule_walker_constant_series() {
        assert_eq!(yule_walker(&[5.0; 50], 3), vec![0.0; 3]);
    }

    #[test]
    fn fit_ar1_with_intercept() {
        // mean = c / (1 - phi) = 2 / 0.4 = 5.
        let xs = ArProcess {
            phi: vec![0.6],
            sigma: 0.5,
            c: 2.0,
        }
        .generate(3000, 3);
        let m = ArimaModel::fit(&xs, ArimaSpec::new(1, 0, 0)).unwrap();
        assert!((m.ar_coefficients()[0] - 0.6).abs() < 0.05);
        assert!((m.intercept() - 2.0).abs() < 0.3);
        assert!((m.sigma2() - 0.25).abs() < 0.05);
    }

    #[test]
    fn fit_ma1_recovers_theta() {
        let xs = MaProcess {
            theta: vec![0.6],
            sigma: 1.0,
            mu: 0.0,
        }
        .generate(8000, 4);
        let m = ArimaModel::fit(&xs, ArimaSpec::new(0, 0, 1)).unwrap();
        let theta = m.ma_coefficients()[0];
        assert!((theta - 0.6).abs() < 0.1, "theta = {theta}");
    }

    #[test]
    fn fit_arma11() {
        // x[t] = 0.5 x[t-1] + e[t] + 0.4 e[t-1].
        let ar = ArProcess {
            phi: vec![0.5],
            sigma: 1.0,
            c: 0.0,
        };
        // Build ARMA(1,1) manually: filter an MA(1) through an AR(1).
        let ma_part = MaProcess {
            theta: vec![0.4],
            sigma: 1.0,
            mu: 0.0,
        }
        .generate(6000, 5);
        let mut xs = vec![0.0; ma_part.len()];
        for t in 1..xs.len() {
            xs[t] = 0.5 * xs[t - 1] + ma_part[t];
        }
        let _ = ar; // documented intent; the filter above implements it
        let m = ArimaModel::fit(&xs[100..], ArimaSpec::new(1, 0, 1)).unwrap();
        assert!((m.ar_coefficients()[0] - 0.5).abs() < 0.12, "{m:?}");
        assert!((m.ma_coefficients()[0] - 0.4).abs() < 0.15, "{m:?}");
    }

    #[test]
    fn fit_with_differencing_removes_trend() {
        // Random walk with drift: first difference is white noise + drift.
        let noise = ArProcess {
            phi: vec![],
            sigma: 1.0,
            c: 0.5,
        }
        .generate(2000, 6);
        let mut xs = vec![0.0];
        for e in &noise {
            let last = *xs.last().expect("non-empty");
            xs.push(last + e);
        }
        let m = ArimaModel::fit(&xs, ArimaSpec::new(0, 1, 0)).unwrap();
        // Intercept of the differenced series is the drift 0.5.
        assert!((m.intercept() - 0.5).abs() < 0.1, "{}", m.intercept());
    }

    #[test]
    fn fit_rejects_short_series() {
        let err = ArimaModel::fit(&[1.0; 5], ArimaSpec::new(2, 1, 1)).unwrap_err();
        assert!(matches!(err, ArimaError::TooShort { .. }));
    }

    #[test]
    fn fit_rejects_non_finite() {
        let mut xs = vec![1.0; 100];
        xs[50] = f64::NAN;
        assert_eq!(
            ArimaModel::fit(&xs, ArimaSpec::new(1, 0, 0)).unwrap_err(),
            ArimaError::NonFinite
        );
    }

    #[test]
    fn fit_constant_series_is_noise_free() {
        let m = ArimaModel::fit(&[3.0; 100], ArimaSpec::new(1, 0, 0)).unwrap();
        assert!(m.sigma2() < 1e-12);
    }
}
