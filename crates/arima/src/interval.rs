//! Forecast uncertainty: psi-weights and prediction intervals.
//!
//! The h-step-ahead forecast error variance of an ARMA process is
//! `sigma^2 * sum_{j<h} psi_j^2`, where `psi_j` are the coefficients of the
//! MA(∞) representation. For ARIMA with `d = 1` the psi-weights are the
//! cumulative sums of the ARMA psi-weights (the integration operator).

use crate::{ArimaError, ArimaModel};

/// One forecast step with a symmetric prediction interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastInterval {
    /// Point forecast.
    pub mean: f64,
    /// Lower interval bound.
    pub lower: f64,
    /// Upper interval bound.
    pub upper: f64,
    /// Forecast standard error.
    pub std_error: f64,
}

impl ArimaModel {
    /// The first `n` psi-weights of the model's MA(∞) representation on the
    /// *original* (undifferenced) scale, starting with `psi_0 = 1`.
    ///
    /// # Errors
    ///
    /// [`ArimaError::Degenerate`] for `d > 1` (not supported — the paper's
    /// CPI models never difference twice).
    pub fn psi_weights(&self, n: usize) -> Result<Vec<f64>, ArimaError> {
        let spec = self.spec();
        if spec.d > 1 {
            return Err(ArimaError::Degenerate);
        }
        let ar = self.ar_coefficients();
        let ma = self.ma_coefficients();
        // ARMA psi recursion: psi_0 = 1,
        // psi_j = theta_j + sum_{i=1..min(j,p)} phi_i * psi_{j-i}.
        let mut psi = vec![0.0; n.max(1)];
        psi[0] = 1.0;
        for j in 1..psi.len() {
            let mut v = if j <= ma.len() { ma[j - 1] } else { 0.0 };
            for (i, &phi) in ar.iter().enumerate() {
                if j > i {
                    v += phi * psi[j - 1 - i];
                }
            }
            psi[j] = v;
        }
        if spec.d == 1 {
            // Integration: original-scale weights are cumulative sums.
            let mut acc = 0.0;
            for w in psi.iter_mut() {
                acc += *w;
                *w = acc;
            }
        }
        Ok(psi)
    }

    /// Multi-step forecasts with symmetric Gaussian prediction intervals at
    /// `z` standard errors (1.96 for ~95 %).
    ///
    /// # Errors
    ///
    /// [`ArimaError::Degenerate`] for `d > 1`.
    pub fn forecast_with_interval(
        &self,
        xs: &[f64],
        horizon: usize,
        z: f64,
    ) -> Result<Vec<ForecastInterval>, ArimaError> {
        let means = self.forecast(xs, horizon);
        let psi = self.psi_weights(horizon)?;
        let sigma2 = self.sigma2();
        let mut out = Vec::with_capacity(horizon);
        let mut var = 0.0;
        for (h, &mean) in means.iter().enumerate() {
            var += sigma2 * psi[h] * psi[h];
            let se = var.sqrt();
            out.push(ForecastInterval {
                mean,
                lower: mean - z * se,
                upper: mean + z * se,
                std_error: se,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::{ArimaModel, ArimaSpec};
    use ix_timeseries::ArProcess;

    fn ar1(phi: f64, seed: u64) -> (Vec<f64>, ArimaModel) {
        let xs = ArProcess {
            phi: vec![phi],
            sigma: 1.0,
            c: 0.0,
        }
        .generate(2000, seed);
        let m = ArimaModel::fit(&xs, ArimaSpec::new(1, 0, 0)).unwrap();
        (xs, m)
    }

    #[test]
    fn ar1_psi_weights_are_powers_of_phi() {
        let (_, m) = ar1(0.7, 41);
        let phi = m.ar_coefficients()[0];
        let psi = m.psi_weights(5).unwrap();
        for (j, &w) in psi.iter().enumerate() {
            assert!((w - phi.powi(j as i32)).abs() < 1e-9, "psi[{j}] = {w}");
        }
    }

    #[test]
    fn interval_width_grows_with_horizon_and_saturates() {
        let (xs, m) = ar1(0.6, 42);
        let f = m.forecast_with_interval(&xs, 50, 1.96).unwrap();
        for w in f.windows(2) {
            assert!(w[1].std_error >= w[0].std_error - 1e-12);
        }
        // AR(1) forecast variance saturates at sigma^2 / (1 - phi^2).
        let phi = m.ar_coefficients()[0];
        let limit = (m.sigma2() / (1.0 - phi * phi)).sqrt();
        let tail = f.last().unwrap().std_error;
        assert!((tail - limit).abs() < 0.05 * limit, "{tail} vs {limit}");
    }

    #[test]
    fn intervals_have_roughly_nominal_coverage() {
        // 1-step-ahead 95% intervals should cover ~95% of realized values.
        let xs = ArProcess {
            phi: vec![0.7],
            sigma: 1.0,
            c: 0.0,
        }
        .generate(3000, 43);
        let m = ArimaModel::fit(&xs[..1000], ArimaSpec::new(1, 0, 0)).unwrap();
        let mut covered = 0;
        let mut total = 0;
        for t in 1000..2999 {
            let f = m.forecast_with_interval(&xs[..t], 1, 1.96).unwrap()[0];
            total += 1;
            if xs[t] >= f.lower && xs[t] <= f.upper {
                covered += 1;
            }
        }
        let rate = covered as f64 / total as f64;
        assert!((0.92..=0.98).contains(&rate), "coverage {rate}");
    }

    #[test]
    fn random_walk_interval_grows_like_sqrt_h() {
        let steps = ArProcess {
            phi: vec![],
            sigma: 1.0,
            c: 0.0,
        }
        .generate(1000, 44);
        let mut xs = vec![0.0];
        for e in &steps {
            let last = *xs.last().unwrap();
            xs.push(last + e);
        }
        let m = ArimaModel::fit(&xs, ArimaSpec::new(0, 1, 0)).unwrap();
        let f = m.forecast_with_interval(&xs, 16, 1.0).unwrap();
        // se(h) ~ sigma * sqrt(h): se(16) / se(4) ~ 2.
        let ratio = f[15].std_error / f[3].std_error;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn d2_is_rejected() {
        let xs: Vec<f64> = (0..200).map(|t| (t * t) as f64 * 0.01).collect();
        if let Ok(m) = ArimaModel::fit(&xs, crate::ArimaSpec::new(1, 2, 0)) {
            assert!(m.psi_weights(5).is_err());
        }
    }
}
