//! Order selection by information-criterion grid search.

use crate::{ArimaError, ArimaModel, ArimaSpec};

/// Configuration of the `(p, d, q)` grid search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderSearch {
    /// Largest AR order to try.
    pub max_p: usize,
    /// Largest differencing order to try.
    pub max_d: usize,
    /// Largest MA order to try.
    pub max_q: usize,
    /// Use BIC instead of AIC.
    pub use_bic: bool,
}

impl Default for OrderSearch {
    fn default() -> Self {
        OrderSearch {
            max_p: 3,
            max_d: 1,
            max_q: 2,
            use_bic: false,
        }
    }
}

/// Grid-searches `(p, d, q)` over `0..=max_*` and returns the model with
/// the lowest information criterion together with its order.
///
/// Orders whose fit fails (for example because the series is too short for
/// that order) are skipped; the search errs only when *every* candidate
/// fails.
///
/// # Errors
///
/// The error of the last failed candidate when no order could be fitted.
pub fn select_order(
    xs: &[f64],
    search: OrderSearch,
) -> Result<(ArimaSpec, ArimaModel), ArimaError> {
    let mut best: Option<(f64, ArimaSpec, ArimaModel)> = None;
    let mut last_err = ArimaError::TooShort {
        required: 1,
        got: xs.len(),
    };
    for d in 0..=search.max_d {
        for p in 0..=search.max_p {
            for q in 0..=search.max_q {
                let spec = ArimaSpec::new(p, d, q);
                match ArimaModel::fit(xs, spec) {
                    Ok(m) => {
                        let score = if search.use_bic { m.bic() } else { m.aic() };
                        let better = match &best {
                            Some((s, _, _)) => score < *s,
                            None => true,
                        };
                        if better {
                            best = Some((score, spec, m));
                        }
                    }
                    Err(e) => last_err = e,
                }
            }
        }
    }
    match best {
        Some((_, spec, model)) => Ok((spec, model)),
        None => Err(last_err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_timeseries::ArProcess;

    #[test]
    fn prefers_low_order_for_ar1() {
        let xs = ArProcess {
            phi: vec![0.7],
            sigma: 1.0,
            c: 0.0,
        }
        .generate(1500, 21);
        let (spec, model) = select_order(&xs, OrderSearch::default()).unwrap();
        // AR structure must be detected; AIC may pick a slightly richer
        // model, but the dominant lag-1 coefficient should be there.
        assert!(spec.p >= 1 || spec.q >= 1, "picked {spec}");
        assert!(model.sigma2() < 1.3);
    }

    #[test]
    fn bic_is_no_less_parsimonious_than_aic() {
        let xs = ArProcess {
            phi: vec![0.6],
            sigma: 1.0,
            c: 0.0,
        }
        .generate(800, 22);
        let (aic_spec, _) = select_order(&xs, OrderSearch::default()).unwrap();
        let (bic_spec, _) = select_order(
            &xs,
            OrderSearch {
                use_bic: true,
                ..OrderSearch::default()
            },
        )
        .unwrap();
        assert!(bic_spec.n_params() <= aic_spec.n_params() + 1);
    }

    #[test]
    fn detects_need_for_differencing() {
        // Random walk: stationarity only after one difference. The selected
        // model should either difference or act as a near-unit-root AR.
        let steps = ArProcess {
            phi: vec![],
            sigma: 1.0,
            c: 0.0,
        }
        .generate(600, 23);
        let mut xs = vec![0.0];
        for e in &steps {
            let last = *xs.last().expect("non-empty");
            xs.push(last + e);
        }
        let (spec, model) = select_order(&xs, OrderSearch::default()).unwrap();
        let near_unit_root = spec.p >= 1 && model.ar_coefficients()[0] > 0.9;
        assert!(spec.d == 1 || near_unit_root, "picked {spec} {model:?}");
    }

    #[test]
    fn errors_when_series_hopelessly_short() {
        let err = select_order(&[1.0, 2.0, 3.0], OrderSearch::default()).unwrap_err();
        assert!(matches!(err, ArimaError::TooShort { .. }));
    }
}
