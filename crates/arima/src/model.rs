use std::fmt;

use crate::estimate;

/// The order of an ARIMA model: `p` autoregressive terms, `d` differencing
/// passes, `q` moving-average terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArimaSpec {
    /// Autoregressive order.
    pub p: usize,
    /// Differencing order.
    pub d: usize,
    /// Moving-average order.
    pub q: usize,
}

impl ArimaSpec {
    /// Creates an order triple.
    pub fn new(p: usize, d: usize, q: usize) -> Self {
        ArimaSpec { p, d, q }
    }

    /// Number of free coefficients (AR + MA + intercept).
    pub fn n_params(&self) -> usize {
        self.p + self.q + 1
    }

    /// Samples consumed before the first usable regression row.
    pub fn warmup(&self) -> usize {
        self.d + self.p.max(self.q)
    }
}

impl fmt::Display for ArimaSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ARIMA({},{},{})", self.p, self.d, self.q)
    }
}

/// Errors produced when fitting or applying an ARIMA model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArimaError {
    /// The training series is too short for the requested order.
    TooShort {
        /// Samples required.
        required: usize,
        /// Samples supplied.
        got: usize,
    },
    /// A sample was NaN or infinite.
    NonFinite,
    /// The regression could not be solved even with regularization
    /// (pathologically degenerate input).
    Degenerate,
}

impl fmt::Display for ArimaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArimaError::TooShort { required, got } => {
                write!(f, "series too short: need {required} samples, got {got}")
            }
            ArimaError::NonFinite => write!(f, "series contains non-finite samples"),
            ArimaError::Degenerate => write!(f, "degenerate regression problem"),
        }
    }
}

impl std::error::Error for ArimaError {}

/// A fitted ARIMA model.
///
/// The model is estimated on the `d`-times differenced series `w` as
/// `w[t] = c + sum_i ar[i] w[t-1-i] + sum_j ma[j] e[t-1-j] + e[t]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArimaModel {
    spec: ArimaSpec,
    intercept: f64,
    ar: Vec<f64>,
    ma: Vec<f64>,
    sigma2: f64,
    n_effective: usize,
}

impl ArimaModel {
    /// Fits an ARIMA model by Hannan–Rissanen (pure AR orders fall back to a
    /// single lagged OLS).
    ///
    /// # Errors
    ///
    /// See [`ArimaError`].
    pub fn fit(xs: &[f64], spec: ArimaSpec) -> Result<Self, ArimaError> {
        estimate::fit(xs, spec)
    }

    /// Reconstructs a model from stored coefficients (persistence layers
    /// use this to round-trip fitted models without refitting).
    ///
    /// # Errors
    ///
    /// [`ArimaError::Degenerate`] when coefficient counts disagree with the
    /// spec or values are non-finite.
    pub fn from_coefficients(
        spec: ArimaSpec,
        intercept: f64,
        ar: Vec<f64>,
        ma: Vec<f64>,
        sigma2: f64,
        n_effective: usize,
    ) -> Result<Self, ArimaError> {
        if ar.len() != spec.p || ma.len() != spec.q {
            return Err(ArimaError::Degenerate);
        }
        if !intercept.is_finite()
            || !sigma2.is_finite()
            || sigma2 < 0.0
            || ar.iter().chain(&ma).any(|v| !v.is_finite())
        {
            return Err(ArimaError::Degenerate);
        }
        Ok(Self::from_parts(
            spec,
            intercept,
            ar,
            ma,
            sigma2,
            n_effective,
        ))
    }

    pub(crate) fn from_parts(
        spec: ArimaSpec,
        intercept: f64,
        ar: Vec<f64>,
        ma: Vec<f64>,
        sigma2: f64,
        n_effective: usize,
    ) -> Self {
        ArimaModel {
            spec,
            intercept,
            ar,
            ma,
            sigma2,
            n_effective,
        }
    }

    /// The model order.
    pub fn spec(&self) -> ArimaSpec {
        self.spec
    }

    /// Intercept of the differenced ARMA equation.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// AR coefficients (`ar[0]` multiplies lag 1).
    pub fn ar_coefficients(&self) -> &[f64] {
        &self.ar
    }

    /// MA coefficients (`ma[0]` multiplies the lag-1 innovation).
    pub fn ma_coefficients(&self) -> &[f64] {
        &self.ma
    }

    /// Innovation variance estimate.
    pub fn sigma2(&self) -> f64 {
        self.sigma2
    }

    /// Number of regression rows the fit used.
    pub fn n_effective(&self) -> usize {
        self.n_effective
    }

    /// Akaike information criterion of the fit (Gaussian likelihood
    /// approximation): `n ln(sigma2) + 2 k`.
    pub fn aic(&self) -> f64 {
        let n = self.n_effective.max(1) as f64;
        n * self.sigma2.max(1e-300).ln() + 2.0 * self.spec.n_params() as f64
    }

    /// Bayesian information criterion: `n ln(sigma2) + k ln(n)`.
    pub fn bic(&self) -> f64 {
        let n = self.n_effective.max(1) as f64;
        n * self.sigma2.max(1e-300).ln() + self.spec.n_params() as f64 * n.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_accessors() {
        let s = ArimaSpec::new(2, 1, 1);
        assert_eq!(s.n_params(), 4);
        assert_eq!(s.warmup(), 3);
        assert_eq!(s.to_string(), "ARIMA(2,1,1)");
    }

    #[test]
    fn aic_penalizes_parameters() {
        let base =
            ArimaModel::from_parts(ArimaSpec::new(1, 0, 0), 0.0, vec![0.5], vec![], 1.0, 100);
        let bigger = ArimaModel::from_parts(
            ArimaSpec::new(3, 0, 2),
            0.0,
            vec![0.5; 3],
            vec![0.1; 2],
            1.0,
            100,
        );
        assert!(bigger.aic() > base.aic());
        assert!(bigger.bic() > base.bic());
    }

    #[test]
    fn aic_rewards_fit() {
        let loose =
            ArimaModel::from_parts(ArimaSpec::new(1, 0, 0), 0.0, vec![0.5], vec![], 4.0, 100);
        let tight =
            ArimaModel::from_parts(ArimaSpec::new(1, 0, 0), 0.0, vec![0.5], vec![], 1.0, 100);
        assert!(tight.aic() < loose.aic());
    }
}
