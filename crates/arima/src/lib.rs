//! ARIMA(p, d, q) modelling, built from scratch for InvarNet-X.
//!
//! The paper detects performance anomalies by "checking the ARIMA model
//! drift on CPI data": an ARIMA model is trained per workload per node on
//! normal CPI traces, and at runtime the one-step-ahead prediction residual
//! `|M'cpi(t) - Mcpi(t)|` is thresholded.
//!
//! This crate provides:
//!
//! - [`ArimaModel::fit`] — Hannan–Rissanen two-stage estimation (long-AR
//!   residual proxy, then OLS on lagged values and lagged residuals),
//!   with plain lagged OLS for pure AR models;
//! - [`yule_walker`] — Levinson–Durbin solution of the Yule–Walker
//!   equations, used for the long-AR stage and available standalone;
//! - [`select_order`] — AIC grid search over `(p, d, q)`;
//! - one-step and multi-step forecasting on the original (undifferenced)
//!   scale, plus residual extraction for drift detection;
//! - [`ljung_box`] — residual whiteness diagnostic.
//!
//! # Example
//!
//! ```
//! use ix_arima::{ArimaModel, ArimaSpec};
//! use ix_timeseries::ArProcess;
//!
//! let xs = ArProcess { phi: vec![0.7], sigma: 1.0, c: 0.5 }.generate(400, 42);
//! let model = ArimaModel::fit(&xs, ArimaSpec::new(1, 0, 0)).unwrap();
//! let phi = model.ar_coefficients()[0];
//! assert!((phi - 0.7).abs() < 0.1, "estimated phi = {phi}");
//! ```

mod diagnostics;
mod estimate;
mod forecast;
mod interval;
mod model;
mod select;

pub use diagnostics::{ljung_box, LjungBox};
pub use estimate::yule_walker;
pub use interval::ForecastInterval;
pub use model::{ArimaError, ArimaModel, ArimaSpec};
pub use select::{select_order, OrderSearch};
