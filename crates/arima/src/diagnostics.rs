//! Residual diagnostics.

use ix_timeseries::acf;

/// Result of a Ljung–Box whiteness test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LjungBox {
    /// The Q statistic.
    pub statistic: f64,
    /// Lags included.
    pub lags: usize,
    /// Degrees of freedom (`lags - fitted_params`, floored at 1).
    pub dof: usize,
}

impl LjungBox {
    /// A rough white-noise acceptance check: compares Q against an
    /// approximate chi-squared 95 % critical value (Wilson–Hilferty
    /// approximation). A white residual series passes.
    pub fn passes_at_95(&self) -> bool {
        self.statistic <= chi2_critical_95(self.dof)
    }
}

/// Approximate 95 % critical value of a chi-squared distribution with `k`
/// degrees of freedom (Wilson–Hilferty cube approximation; within ~1 % for
/// `k >= 3`, conservative below).
fn chi2_critical_95(k: usize) -> f64 {
    let k = k.max(1) as f64;
    let z = 1.6448536269514722; // standard normal 95 % quantile
    let t = 1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt();
    k * t * t * t
}

/// Ljung–Box Q statistic of `residuals` over `lags` autocorrelation lags,
/// with `fitted_params` subtracted from the degrees of freedom.
///
/// `Q = n (n + 2) * sum_{k=1..lags} acf_k^2 / (n - k)`.
pub fn ljung_box(residuals: &[f64], lags: usize, fitted_params: usize) -> LjungBox {
    let n = residuals.len();
    let lags = lags.min(n.saturating_sub(1)).max(1);
    let rho = acf(residuals, lags);
    let nf = n as f64;
    let statistic = nf
        * (nf + 2.0)
        * (1..=lags)
            .map(|k| rho[k] * rho[k] / (nf - k as f64))
            .sum::<f64>();
    LjungBox {
        statistic,
        lags,
        dof: lags.saturating_sub(fitted_params).max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_timeseries::ArProcess;

    #[test]
    fn white_noise_passes() {
        let xs = ArProcess {
            phi: vec![],
            sigma: 1.0,
            c: 0.0,
        }
        .generate(1000, 31);
        let lb = ljung_box(&xs, 10, 0);
        assert!(lb.passes_at_95(), "Q = {}", lb.statistic);
    }

    #[test]
    fn strongly_correlated_series_fails() {
        let xs = ArProcess {
            phi: vec![0.9],
            sigma: 1.0,
            c: 0.0,
        }
        .generate(1000, 32);
        let lb = ljung_box(&xs, 10, 0);
        assert!(!lb.passes_at_95(), "Q = {}", lb.statistic);
    }

    #[test]
    fn model_residuals_whiten() {
        use crate::{ArimaModel, ArimaSpec};
        let xs = ArProcess {
            phi: vec![0.8],
            sigma: 1.0,
            c: 0.0,
        }
        .generate(2000, 33);
        let m = ArimaModel::fit(&xs, ArimaSpec::new(1, 0, 0)).unwrap();
        let res = m.residuals(&xs);
        let lb = ljung_box(&res[10..], 10, 1);
        assert!(lb.passes_at_95(), "Q = {}", lb.statistic);
    }

    #[test]
    fn chi2_critical_reasonable() {
        // Known values: chi2(0.95, 10) ~ 18.31, chi2(0.95, 1) ~ 3.84.
        assert!((chi2_critical_95(10) - 18.31).abs() < 0.5);
        assert!((chi2_critical_95(1) - 3.84).abs() < 0.6);
    }

    #[test]
    fn lags_clamped_to_series_length() {
        let lb = ljung_box(&[1.0, -1.0, 1.0, -1.0], 50, 0);
        assert!(lb.lags <= 3);
    }
}
