//! `ix-analysis`: the workspace's own static analysis and concurrency
//! checking toolkit.
//!
//! Two halves:
//!
//! - [`rules`]: a lint pass built on a hand-rolled lexer ([`lexer`]), a
//!   lightweight workspace scanner ([`workspace`]), and a conservative
//!   whole-workspace call graph ([`callgraph`]). The rules encode
//!   repo-specific contracts — justified atomic orderings, the global
//!   lock-acquisition order, panic-free hot paths, exhaustive event
//!   matches, and a transitive determinism-taint pass from the engine's
//!   entry points — that `rustc` and `clippy` cannot express.
//! - [`sched`]: a bounded-interleaving model checker (mini-loom) with
//!   models of the engine's work-stealing cursor, telemetry registry, and
//!   sweep cache, explored exhaustively up to a preemption bound.
//!
//! The `ix-analysis` binary fronts both: `check` runs the lint pass over
//! the workspace, `sched` runs the interleaving models, `rules` prints the
//! catalog. CI gates on all of them.

#![warn(missing_docs)]

pub mod callgraph;
pub mod lexer;
pub mod rules;
pub mod sched;
pub mod workspace;
