//! Model of the work-stealing pair cursor
//! (`crates/core/src/assoc.rs::claim_batch`).
//!
//! Sweep workers claim batches of the flat pair index space off a shared
//! `AtomicUsize` via `fetch_add`. The invariant: every pair is scored
//! exactly once — no pair lost, no pair scored twice. The shipped
//! algorithm's claim is a single atomic read-modify-write; the racy
//! variant splits it into a load and a store, which is exactly the bug a
//! "load, add, store" refactor would introduce.

use crate::sched::Model;

#[derive(Clone, Copy, PartialEq)]
enum Pc {
    /// About to claim (atomic variant does the whole claim here).
    Claim,
    /// Racy variant only: loaded the cursor, about to store it back.
    Store,
    Done,
}

#[derive(Clone)]
struct Worker {
    pc: Pc,
    /// Cursor value observed by the racy split load.
    loaded: usize,
    /// Claimed batch starts.
    claimed: Vec<usize>,
}

/// See module docs.
#[derive(Clone)]
pub struct CursorModel {
    racy: bool,
    cursor: usize,
    n_pairs: usize,
    batch: usize,
    workers: Vec<Worker>,
}

impl CursorModel {
    /// `threads` workers over `n_pairs` pairs in batches of `batch`;
    /// `racy` selects the split load/store claim.
    pub fn new(threads: usize, n_pairs: usize, batch: usize, racy: bool) -> Self {
        Self {
            racy,
            cursor: 0,
            n_pairs,
            batch,
            workers: vec![
                Worker {
                    pc: Pc::Claim,
                    loaded: 0,
                    claimed: Vec::new(),
                };
                threads
            ],
        }
    }

    fn finish_claim(&mut self, tid: usize, start: usize) {
        let w = &mut self.workers[tid];
        if start < self.n_pairs {
            w.claimed.push(start);
            w.pc = Pc::Claim;
        } else {
            w.pc = Pc::Done;
        }
    }
}

impl Model for CursorModel {
    fn name(&self) -> &'static str {
        if self.racy {
            "work-stealing cursor (racy split load/store)"
        } else {
            "work-stealing cursor (fetch_add)"
        }
    }

    fn thread_count(&self) -> usize {
        self.workers.len()
    }

    fn is_done(&self, tid: usize) -> bool {
        self.workers[tid].pc == Pc::Done
    }

    fn step(&mut self, tid: usize) -> Result<(), String> {
        match self.workers[tid].pc {
            Pc::Claim if !self.racy => {
                // claim_batch: one atomic fetch_add.
                let start = self.cursor;
                self.cursor += self.batch;
                self.finish_claim(tid, start);
            }
            Pc::Claim => {
                // Racy: the load is its own step...
                self.workers[tid].loaded = self.cursor;
                self.workers[tid].pc = Pc::Store;
            }
            Pc::Store => {
                // ...and the store happens later, clobbering interleaved
                // claims.
                let start = self.workers[tid].loaded;
                self.cursor = start + self.batch;
                self.finish_claim(tid, start);
            }
            Pc::Done => return Err(format!("t{tid} stepped past completion")),
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        let mut times_claimed = vec![0usize; self.n_pairs];
        for (tid, w) in self.workers.iter().enumerate() {
            for &start in &w.claimed {
                let end = (start + self.batch).min(self.n_pairs);
                for (pair, count) in times_claimed.iter_mut().enumerate().take(end).skip(start) {
                    *count += 1;
                    if *count > 1 {
                        return Err(format!(
                            "pair {pair} claimed twice (t{tid} re-claimed a stolen batch)"
                        ));
                    }
                }
            }
        }
        if let Some(pair) = times_claimed.iter().position(|&c| c == 0) {
            return Err(format!("pair {pair} never claimed (lost batch)"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{explore, DEFAULT_BOUND};

    #[test]
    fn fetch_add_claim_is_exhaustively_exact() {
        let stats = explore(&CursorModel::new(2, 6, 2, false), DEFAULT_BOUND).unwrap();
        assert!(stats.schedules > 1);
    }

    #[test]
    fn split_claim_double_claims_under_one_preemption() {
        let cex = explore(&CursorModel::new(2, 6, 2, true), 1).unwrap_err();
        assert!(cex.error.contains("claimed twice"), "{cex}");
    }
}
