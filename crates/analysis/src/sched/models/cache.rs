//! Model of sweep-cache insertion and MRU eviction
//! (`crates/core/src/engine/sweep_cache.rs`).
//!
//! Two engine threads diagnosing the same window both miss the cache,
//! both run the sweep, and both insert the result. The shipped insert
//! dedups under the entry mutex (second inserter refreshes the existing
//! entry instead of pushing a duplicate) and evicts from the LRU end on
//! overflow. Invariants: the key ends up cached exactly once, capacity is
//! never exceeded, and the freshest other key survives eviction. The racy
//! variant pushes without the dedup re-check — a duplicate entry means a
//! later eviction can leave a stale copy that shadows invalidation
//! (double dispatch of one logical frame).

use crate::sched::{Model, ShimMutex};

#[derive(Clone, Copy, PartialEq)]
enum Pc {
    /// Probe the cache under the lock (one short critical section).
    Probe,
    /// Compute the sweep result (no lock held).
    Compute,
    /// Waiting to take the entry lock for insert.
    Acquire,
    /// Insert (and release the lock).
    Insert,
    Done,
}

/// See module docs.
#[derive(Clone)]
pub struct MruCacheModel {
    racy: bool,
    /// Cached keys, most-recently-used first.
    entries: Vec<u32>,
    cap: usize,
    key: u32,
    lock: ShimMutex,
    threads: Vec<Pc>,
    /// Whether any thread observed a hit on probe (used by the final
    /// check: a hit thread never inserts).
    hits: usize,
}

impl MruCacheModel {
    /// `threads` threads all resolving `key` against a cache pre-seeded
    /// with `seed` (MRU-first) and capacity `cap`.
    pub fn new(threads: usize, key: u32, seed: &[u32], cap: usize, racy: bool) -> Self {
        Self {
            racy,
            entries: seed.to_vec(),
            cap,
            key,
            lock: ShimMutex::new(),
            threads: vec![Pc::Probe; threads],
            hits: 0,
        }
    }
}

impl Model for MruCacheModel {
    fn name(&self) -> &'static str {
        if self.racy {
            "sweep-cache insert (no dedup re-check)"
        } else {
            "sweep-cache insert (dedup + MRU evict)"
        }
    }

    fn thread_count(&self) -> usize {
        self.threads.len()
    }

    fn is_done(&self, tid: usize) -> bool {
        self.threads[tid] == Pc::Done
    }

    fn is_blocked(&self, tid: usize) -> bool {
        self.threads[tid] == Pc::Acquire && self.lock.would_block(tid)
    }

    fn step(&mut self, tid: usize) -> Result<(), String> {
        match self.threads[tid] {
            Pc::Probe => {
                if self.entries.contains(&self.key) {
                    self.hits += 1;
                    self.threads[tid] = Pc::Done;
                } else {
                    self.threads[tid] = Pc::Compute;
                }
            }
            Pc::Compute => {
                self.threads[tid] = Pc::Acquire;
            }
            Pc::Acquire => {
                if !self.lock.try_acquire(tid) {
                    return Err(format!("t{tid} stepped while blocked on the entry lock"));
                }
                self.threads[tid] = Pc::Insert;
            }
            Pc::Insert => {
                if self.racy {
                    // Push without re-checking: the other miss may have
                    // inserted while we were computing.
                    self.entries.insert(0, self.key);
                } else if let Some(pos) = self.entries.iter().position(|&k| k == self.key) {
                    // Dedup: refresh the existing entry to MRU instead.
                    let k = self.entries.remove(pos);
                    self.entries.insert(0, k);
                } else {
                    self.entries.insert(0, self.key);
                }
                self.entries.truncate(self.cap);
                self.lock.release(tid);
                self.threads[tid] = Pc::Done;
            }
            Pc::Done => return Err(format!("t{tid} stepped past completion")),
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        let copies = self.entries.iter().filter(|&&k| k == self.key).count();
        if copies != 1 {
            return Err(format!(
                "key cached {copies} times (duplicate frame survives eviction)"
            ));
        }
        if self.entries.len() > self.cap {
            return Err(format!(
                "cache holds {} entries over capacity {}",
                self.entries.len(),
                self.cap
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{explore, DEFAULT_BOUND};

    #[test]
    fn dedup_insert_caches_the_frame_exactly_once() {
        // Seeded with one colder key and cap 2: insertion must evict the
        // cold key, never duplicate the new one.
        let stats = explore(&MruCacheModel::new(2, 7, &[10], 2, false), DEFAULT_BOUND).unwrap();
        assert!(stats.schedules > 1);
    }

    #[test]
    fn unchecked_insert_duplicates_the_frame() {
        let cex = explore(&MruCacheModel::new(2, 7, &[], 4, true), 1).unwrap_err();
        assert!(cex.error.contains("cached 2 times"), "{cex}");
    }
}
