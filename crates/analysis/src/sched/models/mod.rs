//! Concurrency models of the engine's lock-free and locked structures.
//!
//! Each model mirrors one real algorithm (the file and function it models
//! is named in its docs) and comes in two flavors: the shipped algorithm,
//! which must pass exhaustively, and a `racy` variant with the
//! synchronization deliberately weakened, which the explorer must catch.
//! The racy variants are the checker's own regression tests — if a
//! refactor of the explorer stops catching them, the checker is broken,
//! not the engine.

mod cache;
mod cursor;
mod registry;

pub use cache::MruCacheModel;
pub use cursor::CursorModel;
pub use registry::{CounterModel, GaugeMaxModel, ScopeGrowModel};

use super::ShimMutex;
use crate::sched::Model;

/// Two threads taking two [`ShimMutex`]es; `inverted` makes thread 1
/// acquire them in the opposite order, the textbook ABBA deadlock the
/// `lock-order` lint rule exists to prevent. The explorer reports it as a
/// deadlock counterexample rather than hanging.
#[derive(Clone)]
pub struct TwoLockModel {
    /// Whether thread 1 acquires in reverse order (the bug).
    pub inverted: bool,
    locks: [ShimMutex; 2],
    pc: [usize; 2],
}

impl TwoLockModel {
    /// A fresh model; `inverted` selects the buggy acquisition order.
    pub fn new(inverted: bool) -> Self {
        Self {
            inverted,
            locks: [ShimMutex::new(), ShimMutex::new()],
            pc: [0, 0],
        }
    }

    /// Lock indices in the order thread `tid` acquires them.
    fn order(&self, tid: usize) -> [usize; 2] {
        if tid == 1 && self.inverted {
            [1, 0]
        } else {
            [0, 1]
        }
    }
}

impl Model for TwoLockModel {
    fn name(&self) -> &'static str {
        if self.inverted {
            "two-lock (inverted order)"
        } else {
            "two-lock (declared order)"
        }
    }

    fn thread_count(&self) -> usize {
        2
    }

    fn is_done(&self, tid: usize) -> bool {
        self.pc[tid] == 4
    }

    fn is_blocked(&self, tid: usize) -> bool {
        let [first, second] = self.order(tid);
        match self.pc[tid] {
            0 => self.locks[first].would_block(tid),
            1 => self.locks[second].would_block(tid),
            _ => false,
        }
    }

    fn step(&mut self, tid: usize) -> Result<(), String> {
        let [first, second] = self.order(tid);
        match self.pc[tid] {
            0 => {
                if !self.locks[first].try_acquire(tid) {
                    return Err(format!("t{tid} stepped while blocked on lock {first}"));
                }
            }
            1 => {
                if !self.locks[second].try_acquire(tid) {
                    return Err(format!("t{tid} stepped while blocked on lock {second}"));
                }
            }
            2 => self.locks[second].release(tid),
            3 => self.locks[first].release(tid),
            _ => return Err(format!("t{tid} stepped past completion")),
        }
        self.pc[tid] += 1;
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::explore;

    #[test]
    fn declared_order_never_deadlocks() {
        let stats = explore(&TwoLockModel::new(false), 8).unwrap();
        assert!(stats.schedules > 1);
    }

    #[test]
    fn inverted_order_deadlocks_and_is_reported() {
        let cex = explore(&TwoLockModel::new(true), 8).unwrap_err();
        assert!(cex.error.contains("deadlock"), "{cex}");
    }
}
