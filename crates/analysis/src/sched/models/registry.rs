//! Models of the lock-free telemetry registry
//! (`crates/core/src/engine/telemetry/registry.rs`).
//!
//! Three algorithms live there: plain `fetch_add` counters (exact-total
//! invariant), the `gauge_max` CAS-raise loop (the gauge must end at the
//! true maximum no matter how the CASes interleave), and the
//! read-check-then-write-grow scope table (two threads racing to register
//! the same scope must agree on one slot). Each gets a racy variant with
//! the key atomicity removed.

use crate::sched::Model;

// --- exact-total counter ---------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum CounterPc {
    /// Next increment (atomic variant completes it in one step).
    Add,
    /// Racy variant: value loaded, store pending.
    Store,
    Done,
}

/// Counter model: `threads` threads each add 1 `increments` times; the
/// total must be exact. Mirrors `ContextScope`'s event counters.
#[derive(Clone)]
pub struct CounterModel {
    racy: bool,
    value: u64,
    increments: usize,
    /// Per thread: (pc, loaded value, increments remaining).
    threads: Vec<(CounterPc, u64, usize)>,
}

impl CounterModel {
    /// `threads` × `increments` increments; `racy` splits load from store.
    pub fn new(threads: usize, increments: usize, racy: bool) -> Self {
        Self {
            racy,
            value: 0,
            increments,
            threads: vec![(CounterPc::Add, 0, increments); threads],
        }
    }
}

impl Model for CounterModel {
    fn name(&self) -> &'static str {
        if self.racy {
            "telemetry counter (racy load+store)"
        } else {
            "telemetry counter (fetch_add)"
        }
    }

    fn thread_count(&self) -> usize {
        self.threads.len()
    }

    fn is_done(&self, tid: usize) -> bool {
        self.threads[tid].0 == CounterPc::Done
    }

    fn step(&mut self, tid: usize) -> Result<(), String> {
        let (pc, loaded, left) = self.threads[tid];
        match pc {
            CounterPc::Add if !self.racy => {
                self.value += 1;
                let left = left - 1;
                self.threads[tid] = (
                    if left == 0 {
                        CounterPc::Done
                    } else {
                        CounterPc::Add
                    },
                    0,
                    left,
                );
            }
            CounterPc::Add => {
                self.threads[tid] = (CounterPc::Store, self.value, left);
            }
            CounterPc::Store => {
                self.value = loaded + 1;
                let left = left - 1;
                self.threads[tid] = (
                    if left == 0 {
                        CounterPc::Done
                    } else {
                        CounterPc::Add
                    },
                    0,
                    left,
                );
            }
            CounterPc::Done => return Err(format!("t{tid} stepped past completion")),
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        let expected = (self.threads.len() * self.increments) as u64;
        if self.value == expected {
            Ok(())
        } else {
            Err(format!(
                "lost update: counter is {} after {} increments",
                self.value, expected
            ))
        }
    }
}

// --- CAS max gauge ---------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum GaugePc {
    /// Load the current gauge value.
    Load,
    /// CAS (correct) or blind store (racy) the raise.
    Raise,
    Done,
}

/// Gauge model: each thread raises a shared gauge to its own target via
/// the `gauge_max` CAS loop; the gauge must end at the global maximum.
/// The racy variant replaces the CAS with a checked-then-blind store
/// (i.e. `gauge_set` misused for a running maximum).
#[derive(Clone)]
pub struct GaugeMaxModel {
    racy: bool,
    gauge: u64,
    targets: Vec<u64>,
    /// Per thread: (pc, observed value).
    threads: Vec<(GaugePc, u64)>,
}

impl GaugeMaxModel {
    /// One thread per target; `racy` drops the compare from the exchange.
    pub fn new(targets: &[u64], racy: bool) -> Self {
        Self {
            racy,
            gauge: 0,
            targets: targets.to_vec(),
            threads: vec![(GaugePc::Load, 0); targets.len()],
        }
    }
}

impl Model for GaugeMaxModel {
    fn name(&self) -> &'static str {
        if self.racy {
            "gauge_max (racy blind store)"
        } else {
            "gauge_max (CAS loop)"
        }
    }

    fn thread_count(&self) -> usize {
        self.threads.len()
    }

    fn is_done(&self, tid: usize) -> bool {
        self.threads[tid].0 == GaugePc::Done
    }

    fn step(&mut self, tid: usize) -> Result<(), String> {
        let (pc, observed) = self.threads[tid];
        let target = self.targets[tid];
        match pc {
            GaugePc::Load => {
                if self.gauge >= target {
                    // Someone already raised past us: done, like the
                    // real loop's early return.
                    self.threads[tid] = (GaugePc::Done, 0);
                } else {
                    self.threads[tid] = (GaugePc::Raise, self.gauge);
                }
            }
            GaugePc::Raise if !self.racy => {
                // compare_exchange_weak: succeeds only if unchanged.
                if self.gauge == observed {
                    self.gauge = target;
                    self.threads[tid] = (GaugePc::Done, 0);
                } else {
                    self.threads[tid] = (GaugePc::Load, 0);
                }
            }
            GaugePc::Raise => {
                // Blind store: clobbers raises that landed in between.
                self.gauge = target;
                self.threads[tid] = (GaugePc::Done, 0);
            }
            GaugePc::Done => return Err(format!("t{tid} stepped past completion")),
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        let max = self.targets.iter().copied().max().unwrap_or(0);
        if self.gauge == max {
            Ok(())
        } else {
            Err(format!(
                "gauge ended at {} but the maximum raise was {max}",
                self.gauge
            ))
        }
    }
}

// --- scope table grow ------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum ScopePc {
    /// Read-locked lookup.
    Check,
    /// Write-locked insert (correct variant re-checks here).
    Insert,
    Done,
}

/// Scope-registration model: two threads race to register the same scope
/// key in the registry's grow-only table. The shipped code re-checks under
/// the write lock before pushing; both threads must end up with the same
/// slot and the table must hold the key once. The racy variant pushes
/// without the re-check.
#[derive(Clone)]
pub struct ScopeGrowModel {
    racy: bool,
    key: u32,
    table: Vec<u32>,
    /// Per thread: (pc, resolved slot).
    threads: Vec<(ScopePc, Option<usize>)>,
}

impl ScopeGrowModel {
    /// `threads` threads all registering `key`; `racy` drops the re-check
    /// under the write lock.
    pub fn new(threads: usize, key: u32, racy: bool) -> Self {
        Self {
            racy,
            key,
            table: Vec::new(),
            threads: vec![(ScopePc::Check, None); threads],
        }
    }
}

impl Model for ScopeGrowModel {
    fn name(&self) -> &'static str {
        if self.racy {
            "scope table grow (no re-check under write lock)"
        } else {
            "scope table grow (double-checked)"
        }
    }

    fn thread_count(&self) -> usize {
        self.threads.len()
    }

    fn is_done(&self, tid: usize) -> bool {
        self.threads[tid].0 == ScopePc::Done
    }

    fn step(&mut self, tid: usize) -> Result<(), String> {
        let (pc, _) = self.threads[tid];
        match pc {
            ScopePc::Check => {
                if let Some(slot) = self.table.iter().position(|&k| k == self.key) {
                    self.threads[tid] = (ScopePc::Done, Some(slot));
                } else {
                    self.threads[tid] = (ScopePc::Insert, None);
                }
            }
            ScopePc::Insert => {
                let slot = if self.racy {
                    // Push without re-checking: the race window between
                    // the read check and the write insert.
                    self.table.push(self.key);
                    self.table.len() - 1
                } else {
                    match self.table.iter().position(|&k| k == self.key) {
                        Some(slot) => slot,
                        None => {
                            self.table.push(self.key);
                            self.table.len() - 1
                        }
                    }
                };
                self.threads[tid] = (ScopePc::Done, Some(slot));
            }
            ScopePc::Done => return Err(format!("t{tid} stepped past completion")),
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        let occurrences = self.table.iter().filter(|&&k| k == self.key).count();
        if occurrences != 1 {
            return Err(format!(
                "scope key registered {occurrences} times (split-brain counters)"
            ));
        }
        let slots: Vec<Option<usize>> = self.threads.iter().map(|&(_, s)| s).collect();
        if slots.windows(2).any(|w| w[0] != w[1]) {
            return Err(format!("threads resolved different slots: {slots:?}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{explore, DEFAULT_BOUND};

    #[test]
    fn fetch_add_counter_total_is_exact() {
        let stats = explore(&CounterModel::new(2, 2, false), DEFAULT_BOUND).unwrap();
        assert!(stats.schedules > 1);
    }

    #[test]
    fn split_counter_loses_updates_under_one_preemption() {
        let cex = explore(&CounterModel::new(2, 2, true), 1).unwrap_err();
        assert!(cex.error.contains("lost update"), "{cex}");
    }

    #[test]
    fn cas_gauge_always_ends_at_max() {
        let stats = explore(&GaugeMaxModel::new(&[3, 7, 5], false), DEFAULT_BOUND).unwrap();
        assert!(stats.schedules > 1);
    }

    #[test]
    fn blind_store_gauge_drops_the_max() {
        let cex = explore(&GaugeMaxModel::new(&[3, 7], true), 1).unwrap_err();
        assert!(cex.error.contains("maximum raise"), "{cex}");
    }

    #[test]
    fn double_checked_grow_agrees_on_one_slot() {
        let stats = explore(&ScopeGrowModel::new(2, 42, false), DEFAULT_BOUND).unwrap();
        assert!(stats.schedules > 1);
    }

    #[test]
    fn unchecked_grow_splits_the_scope() {
        let cex = explore(&ScopeGrowModel::new(2, 42, true), 1).unwrap_err();
        assert!(cex.error.contains("registered 2 times"), "{cex}");
    }
}
