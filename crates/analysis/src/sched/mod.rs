//! A bounded-interleaving concurrency checker (mini-loom).
//!
//! Real-thread tests only ever witness the interleavings the OS scheduler
//! happens to produce; the lost-update and double-dispatch bugs this
//! engine cares about live in the interleavings it doesn't. Here the
//! shared-state algorithms are re-expressed as [`Model`]s — explicit
//! per-thread step machines where each `step` is one atomic action — and
//! [`explore`] enumerates *every* schedule up to a preemption bound,
//! checking invariants at the end of each complete schedule and detecting
//! deadlock along the way.
//!
//! The preemption bound is the CHESS insight: counting only *preemptive*
//! switches (taking the CPU from a thread that could have continued) keeps
//! the search polynomial while still covering the overwhelming majority of
//! real concurrency bugs, which need only one or two adverse preemptions.
//! The models under [`models`] are exhaustive at `DEFAULT_BOUND`: their
//! step counts are small enough that every schedule within the bound is
//! enumerated, so a clean pass is a proof over that space, not a sample.

pub mod models;

/// Preemption bound the CI `sched` run uses. Each model in [`models`] has
/// at most ~6 steps per thread, so bound 3 already covers every schedule
/// that differs from round-robin by up to three adverse switches — and the
/// seeded racy variants are all caught at bound 1.
pub const DEFAULT_BOUND: usize = 3;

/// A concurrent algorithm expressed as a cloneable step machine.
///
/// Each thread owns a program counter; [`Model::step`] advances one thread
/// by exactly one atomic action. The explorer clones the model at every
/// branch point, so state must be plain data (no real locks or threads).
pub trait Model: Clone {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Number of model threads.
    fn thread_count(&self) -> usize;

    /// Whether thread `tid` has finished its program.
    fn is_done(&self, tid: usize) -> bool;

    /// Whether thread `tid` cannot currently take a step (e.g. waiting on
    /// a [`ShimMutex`] held by another thread).
    fn is_blocked(&self, tid: usize) -> bool {
        let _ = tid;
        false
    }

    /// Advances thread `tid` by one atomic action.
    ///
    /// # Errors
    ///
    /// An error aborts exploration and becomes a [`CounterExample`] — use
    /// it for invariants checkable mid-schedule.
    fn step(&mut self, tid: usize) -> Result<(), String>;

    /// Invariant check once every thread is done.
    ///
    /// # Errors
    ///
    /// Describes the violated invariant; becomes a [`CounterExample`].
    fn check_final(&self) -> Result<(), String>;
}

/// Search statistics for a clean exploration.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Complete schedules enumerated (all of them passed `check_final`).
    pub schedules: u64,
    /// Total atomic steps executed across all schedules.
    pub steps: u64,
    /// Longest schedule, in steps.
    pub max_depth: usize,
    /// The preemption bound the search ran under.
    pub bound: usize,
}

/// A failing schedule: the exact thread sequence that violates an
/// invariant, plus the violation.
#[derive(Debug, Clone)]
pub struct CounterExample {
    /// Thread ids in execution order.
    pub schedule: Vec<usize>,
    /// What went wrong.
    pub error: String,
}

impl std::fmt::Display for CounterExample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sched: Vec<String> = self.schedule.iter().map(|t| format!("t{t}")).collect();
        write!(f, "schedule [{}]: {}", sched.join(" "), self.error)
    }
}

/// Exhaustively explores every schedule of `initial` with at most `bound`
/// preemptions.
///
/// # Errors
///
/// The first [`CounterExample`] found — a deadlock, a mid-schedule `step`
/// error, or a `check_final` failure.
pub fn explore<M: Model>(initial: &M, bound: usize) -> Result<Stats, CounterExample> {
    let mut stats = Stats {
        schedules: 0,
        steps: 0,
        max_depth: 0,
        bound,
    };
    let mut trace = Vec::new();
    dfs(initial, None, 0, bound, &mut trace, &mut stats)?;
    Ok(stats)
}

fn dfs<M: Model>(
    state: &M,
    last: Option<usize>,
    preemptions: usize,
    bound: usize,
    trace: &mut Vec<usize>,
    stats: &mut Stats,
) -> Result<(), CounterExample> {
    let n = state.thread_count();
    if (0..n).all(|t| state.is_done(t)) {
        stats.schedules += 1;
        stats.max_depth = stats.max_depth.max(trace.len());
        return state.check_final().map_err(|e| CounterExample {
            schedule: trace.clone(),
            error: e,
        });
    }
    let runnable: Vec<usize> = (0..n)
        .filter(|&t| !state.is_done(t) && !state.is_blocked(t))
        .collect();
    if runnable.is_empty() {
        let blocked: Vec<String> = (0..n)
            .filter(|&t| !state.is_done(t))
            .map(|t| format!("t{t}"))
            .collect();
        return Err(CounterExample {
            schedule: trace.clone(),
            error: format!(
                "deadlock: {} blocked with no runnable thread",
                blocked.join(", ")
            ),
        });
    }
    for &tid in &runnable {
        // CHESS-style accounting: a switch only costs budget when it takes
        // the CPU away from a thread that could have kept running.
        let preemptive = last.is_some_and(|l| l != tid && runnable.contains(&l));
        let p = preemptions + usize::from(preemptive);
        if p > bound {
            continue;
        }
        let mut next = state.clone();
        stats.steps += 1;
        trace.push(tid);
        next.step(tid).map_err(|e| CounterExample {
            schedule: trace.clone(),
            error: e,
        })?;
        dfs(&next, Some(tid), p, bound, trace, stats)?;
        trace.pop();
    }
    Ok(())
}

/// A model-world mutex: plain data, safe to clone with the model. Blocking
/// is expressed through [`Model::is_blocked`], letting the explorer detect
/// deadlock instead of hanging.
#[derive(Debug, Clone, Default)]
pub struct ShimMutex {
    owner: Option<usize>,
}

impl ShimMutex {
    /// An unlocked mutex.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to take the lock for `tid`; false when another thread
    /// holds it (re-entry by the owner is a model bug and also false).
    pub fn try_acquire(&mut self, tid: usize) -> bool {
        if self.owner.is_none() {
            self.owner = Some(tid);
            true
        } else {
            false
        }
    }

    /// Whether anyone but `tid` holds the lock (i.e. `tid` would block).
    pub fn would_block(&self, tid: usize) -> bool {
        self.owner.is_some_and(|o| o != tid)
    }

    /// Whether `tid` holds the lock.
    pub fn held_by(&self, tid: usize) -> bool {
        self.owner == Some(tid)
    }

    /// Releases the lock if `tid` holds it.
    pub fn release(&mut self, tid: usize) {
        if self.owner == Some(tid) {
            self.owner = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads, two steps each, no shared state: exploration counts
    /// schedules and never errors.
    #[derive(Clone)]
    struct Independent {
        pc: [usize; 2],
    }

    impl Model for Independent {
        fn name(&self) -> &'static str {
            "independent"
        }
        fn thread_count(&self) -> usize {
            2
        }
        fn is_done(&self, tid: usize) -> bool {
            self.pc[tid] == 2
        }
        fn step(&mut self, tid: usize) -> Result<(), String> {
            self.pc[tid] += 1;
            Ok(())
        }
        fn check_final(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn unbounded_exploration_counts_all_interleavings() {
        // 2 threads x 2 steps: C(4,2) = 6 interleavings.
        let stats = explore(&Independent { pc: [0, 0] }, 99).unwrap();
        assert_eq!(stats.schedules, 6);
        assert_eq!(stats.max_depth, 4);
    }

    #[test]
    fn bound_zero_allows_only_non_preemptive_schedules() {
        // With zero preemptions each thread runs to completion once
        // scheduled: t0 t0 t1 t1 and t1 t1 t0 t0.
        let stats = explore(&Independent { pc: [0, 0] }, 0).unwrap();
        assert_eq!(stats.schedules, 2);
    }

    #[test]
    fn shim_mutex_blocks_and_releases() {
        let mut m = ShimMutex::new();
        assert!(m.try_acquire(0));
        assert!(m.would_block(1));
        assert!(!m.try_acquire(1));
        m.release(0);
        assert!(m.try_acquire(1));
    }
}
