//! Workspace discovery and per-file lexing context for the lint pass.
//!
//! The pass scans the *product* crates of the workspace (engine, kernels,
//! data layers, simulator) plus the facade crate's `src/`. The in-repo
//! compat crates (`rand`, `serde`, `proptest`, ...) mirror external
//! libraries and follow their upstream idioms, so they are excluded, as
//! are `tests/`, `benches/` and `examples/` trees (test idiom — `unwrap`,
//! prints — is fine there; `#[cfg(test)]` modules inside scanned files are
//! skipped per rule instead).

use std::fs;
use std::path::{Path, PathBuf};

use crate::callgraph::CallGraph;
use crate::lexer::{lex, LexedFile, TokKind};

/// In-repo compatibility crates that mirror external libraries and follow
/// their upstream idioms — excluded from the lint pass. Every name listed
/// here must exist as a workspace member: a stale entry fails the scan
/// loudly instead of silently shrinking coverage.
pub const EXCLUDED_CRATES: &[&str] = &[
    "criterion",
    "proptest",
    "rand",
    "rand_chacha",
    "serde",
    "serde_derive",
    "serde_json",
];

/// Discovers the product crates to lint from the workspace `Cargo.toml`
/// members list (globs expanded against `crates/`), minus
/// [`EXCLUDED_CRATES`]. New crates are picked up automatically — PRs 6–8
/// each had to remember to append to a hand-maintained array.
///
/// # Errors
///
/// Fails loudly on drift: an excluded crate that is no longer a member
/// (stale exclude list), an unreadable/parseless manifest, or an empty
/// discovery result.
pub fn product_crates(root: &Path) -> Result<Vec<String>, String> {
    let manifest_path = root.join("Cargo.toml");
    let manifest = fs::read_to_string(&manifest_path)
        .map_err(|e| format!("read {}: {e}", manifest_path.display()))?;
    let members = workspace_members(&manifest)
        .ok_or_else(|| format!("no [workspace] members list in {}", manifest_path.display()))?;

    let mut names: Vec<String> = Vec::new();
    for member in &members {
        if let Some(prefix) = member
            .strip_suffix("/*")
            .or_else(|| member.strip_suffix("/*/"))
        {
            let dir = root.join(prefix);
            let entries = fs::read_dir(&dir).map_err(|e| {
                format!(
                    "expand member glob {member}: read_dir {}: {e}",
                    dir.display()
                )
            })?;
            for entry in entries {
                let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
                let path = entry.path();
                if path.is_dir() && path.join("Cargo.toml").is_file() {
                    names.push(entry.file_name().to_string_lossy().into_owned());
                }
            }
        } else if let Some(name) = member.strip_prefix("crates/") {
            names.push(name.to_string());
        }
    }
    names.sort();
    names.dedup();

    for excluded in EXCLUDED_CRATES {
        if !names.iter().any(|n| n == excluded) {
            return Err(format!(
                "excluded crate `{excluded}` is not a workspace member — \
                 EXCLUDED_CRATES has drifted from {}",
                manifest_path.display()
            ));
        }
    }
    names.retain(|n| !EXCLUDED_CRATES.contains(&n.as_str()));
    if names.is_empty() {
        return Err(format!(
            "workspace member discovery found no product crates in {}",
            manifest_path.display()
        ));
    }
    Ok(names)
}

/// The string entries of the `members = [ ... ]` array under
/// `[workspace]`. A deliberately small TOML subset: this repository's own
/// manifest, not arbitrary input.
fn workspace_members(manifest: &str) -> Option<Vec<String>> {
    let ws = manifest.find("[workspace]")?;
    let after = &manifest[ws..];
    let members = after.find("members")?;
    let open = after[members..].find('[')? + members;
    let close = after[open..].find(']')? + open;
    let body = &after[open + 1..close];
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(q) = rest.find('"') {
        let tail = &rest[q + 1..];
        let end = tail.find('"')?;
        out.push(tail[..end].to_string());
        rest = &tail[end + 1..];
    }
    Some(out)
}

/// The span of one `fn` item (or method) in a file.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token index of the body's opening `{` (body-less signatures get the
    /// index of the terminating `;`).
    pub body_open: usize,
    /// Token index of the body's closing `}` (or the `;`).
    pub body_close: usize,
}

/// One scanned source file with everything rules need.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// The lexed token/comment streams.
    pub lex: LexedFile,
    /// Token-index ranges `[start, end]` covered by `#[cfg(test)]` /
    /// `#[test]` items (inclusive).
    pub test_ranges: Vec<(usize, usize)>,
    /// Every `fn` item span, in source order (nested fns/closures give
    /// nested spans; resolve sites with [`SourceFile::enclosing_fn`]).
    pub fns: Vec<FnSpan>,
    /// Whether the file is a binary root (`src/main.rs`, `src/bin/**`).
    pub is_bin: bool,
}

impl SourceFile {
    /// Whether the token at `idx` falls inside a test item.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| idx >= s && idx <= e)
    }

    /// The innermost `fn` whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| idx >= f.fn_tok && idx <= f.body_close)
            .min_by_key(|f| f.body_close - f.fn_tok)
    }

    /// Whether any comment intersecting lines `[from, to]` contains
    /// `needle` (case-sensitive).
    pub fn comment_contains(&self, from: u32, to: u32, needle: &str) -> bool {
        self.lex
            .comments_in(from, to)
            .any(|c| c.text.contains(needle))
    }

    /// Whether a `// lint: allow(<rule>)` or `// lint: allow(<rule>,
    /// <reason>)` escape covers `line` (same line or up to two lines
    /// above).
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        let bare = format!("lint: allow({rule})");
        let with_reason = format!("lint: allow({rule},");
        self.lex
            .comments_in(line.saturating_sub(2), line)
            .any(|c| c.text.contains(&bare) || c.text.contains(&with_reason))
    }
}

/// The scanned workspace: all lintable files plus cross-file facts.
#[derive(Debug)]
pub struct Workspace {
    /// The workspace root directory.
    pub root: PathBuf,
    /// Product crate names the scan covered (auto-discovered).
    pub crates: Vec<String>,
    /// All scanned files, sorted by path.
    pub files: Vec<SourceFile>,
    /// Variant names of `ix_core::EngineEvent`, parsed from its source.
    pub engine_event_variants: Vec<String>,
    /// Type names with an `impl Drop` anywhere in the scanned files.
    pub drop_types: Vec<String>,
    /// The whole-workspace call graph over the scanned files.
    pub graph: CallGraph,
}

impl Workspace {
    /// Scans the workspace rooted at `root`, discovering the product
    /// crates from the workspace manifest (see [`product_crates`]).
    ///
    /// # Errors
    ///
    /// Returns an error when crate discovery drifts or a crate source
    /// directory cannot be read.
    pub fn scan(root: &Path) -> Result<Workspace, String> {
        let crates = product_crates(root)?;
        let mut paths: Vec<PathBuf> = Vec::new();
        for krate in &crates {
            let src = root.join("crates").join(krate).join("src");
            if src.is_dir() {
                collect_rs(&src, &mut paths)?;
            }
        }
        collect_rs(&root.join("src"), &mut paths)?;
        paths.sort();

        let mut files = Vec::with_capacity(paths.len());
        for path in &paths {
            let source =
                fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
            files.push(build_file(root, path, &source));
        }
        let engine_event_variants = files
            .iter()
            .find(|f| f.rel == "crates/core/src/engine/events.rs")
            .map(|f| enum_variants(f, "EngineEvent"))
            .unwrap_or_default();
        let drop_types = files.iter().flat_map(drop_impl_targets).collect();
        let graph = CallGraph::build(files.iter());
        Ok(Workspace {
            root: root.to_path_buf(),
            crates,
            files,
            engine_event_variants,
            drop_types,
            graph,
        })
    }

    /// Finds the workspace root by walking up from `start` looking for a
    /// `Cargo.toml` declaring `[workspace]`.
    pub fn find_root(start: &Path) -> Option<PathBuf> {
        let mut dir = Some(start.to_path_buf());
        while let Some(d) = dir {
            let manifest = d.join("Cargo.toml");
            if manifest.is_file() {
                if let Ok(text) = fs::read_to_string(&manifest) {
                    if text.contains("[workspace]") {
                        return Some(d);
                    }
                }
            }
            dir = d.parent().map(Path::to_path_buf);
        }
        None
    }

    /// The file whose workspace-relative path is `rel`, if scanned.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Builds the [`SourceFile`] for one path: lex, then derive test-item
/// spans and `fn` spans from the token stream.
pub fn build_file(root: &Path, path: &Path, source: &str) -> SourceFile {
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    let lexed = lex(source);
    let test_ranges = test_item_ranges(&lexed);
    let fns = fn_spans(&lexed);
    let is_bin = rel.ends_with("src/main.rs") || rel.contains("/src/bin/");
    SourceFile {
        rel,
        lex: lexed,
        test_ranges,
        fns,
        is_bin,
    }
}

/// Token ranges of items annotated `#[cfg(test)]` / `#[test]` /
/// `#[bench]`.
fn test_item_ranges(lexed: &LexedFile) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            let attr_start = i;
            let Some(attr_end) = matching(toks, i + 1, '[', ']') else {
                break;
            };
            let body: Vec<&str> = toks[attr_start..=attr_end]
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.as_str())
                .collect();
            let is_test_attr = body.first() == Some(&"test")
                || body.first() == Some(&"bench")
                || (body.first() == Some(&"cfg") && body.contains(&"test"));
            if is_test_attr {
                if let Some(end) = item_end(toks, attr_end + 1) {
                    out.push((attr_start, end));
                    i = end + 1;
                    continue;
                }
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// The end (inclusive) of the item starting at `i`: skips further
/// attributes, then runs to the matching `}` of the first brace block, or
/// to the first `;` if one appears before any `{`.
fn item_end(toks: &[crate::lexer::Token], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            i = matching(toks, i + 1, '[', ']')? + 1;
            continue;
        }
        if toks[i].is_punct(';') {
            return Some(i);
        }
        if toks[i].is_punct('{') {
            return matching(toks, i, '{', '}');
        }
        i += 1;
    }
    None
}

/// Index of the closer matching the opener at `open_idx`.
fn matching(
    toks: &[crate::lexer::Token],
    open_idx: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Every `fn` item/method span in the file.
fn fn_spans(lexed: &LexedFile) -> Vec<FnSpan> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue; // `fn(` type position, e.g. `Fn(usize)`.
        }
        // Find the body opener: first `{` before a `;` (trait signatures
        // end at `;`), skipping over parenthesized/bracketed groups and
        // where-clause braces don't exist before the body.
        let mut j = i + 2;
        let mut body = None;
        while let Some(t) = toks.get(j) {
            if t.is_punct('(') || t.is_punct('[') {
                let close = if t.is_punct('(') { ')' } else { ']' };
                let open = if t.is_punct('(') { '(' } else { '[' };
                match matching(toks, j, open, close) {
                    Some(e) => j = e + 1,
                    None => break,
                }
                continue;
            }
            if t.is_punct(';') {
                body = Some((j, j));
                break;
            }
            if t.is_punct('{') {
                let end = matching(toks, j, '{', '}').unwrap_or(toks.len() - 1);
                body = Some((j, end));
                break;
            }
            j += 1;
        }
        if let Some((open, close)) = body {
            out.push(FnSpan {
                name: name_tok.text.clone(),
                line: toks[i].line,
                fn_tok: i,
                body_open: open,
                body_close: close,
            });
        }
    }
    out
}

/// Variant names of `enum <name>` as declared in `file`.
pub fn enum_variants(file: &SourceFile, name: &str) -> Vec<String> {
    let toks = &file.lex.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("enum") && toks.get(i + 1).is_some_and(|t| t.is_ident(name))) {
            continue;
        }
        // Skip generics to the body opener.
        let mut j = i + 2;
        while let Some(t) = toks.get(j) {
            if t.is_punct('{') {
                break;
            }
            j += 1;
        }
        let Some(end) = matching(toks, j, '{', '}') else {
            continue;
        };
        // Variants are the depth-1 identifiers that start a variant arm:
        // after `{`, `,` or a closed variant body.
        let mut depth = 0usize;
        let mut expect_variant = true;
        for t in &toks[j..=end] {
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
                if depth > 1 {
                    expect_variant = false;
                }
                continue;
            }
            if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
                continue;
            }
            if depth == 1 {
                if t.is_punct(',') {
                    expect_variant = true;
                } else if expect_variant && t.kind == TokKind::Ident {
                    out.push(t.text.clone());
                    expect_variant = false;
                }
            }
        }
        break;
    }
    out
}

/// Names `X` of every `impl Drop for X` in `file`.
fn drop_impl_targets(file: &SourceFile) -> Vec<String> {
    let toks = &file.lex.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("impl")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("Drop"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("for"))
        {
            if let Some(t) = toks.get(i + 3) {
                if t.kind == TokKind::Ident {
                    out.push(t.text.clone());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn file_from(src: &str) -> SourceFile {
        build_file(Path::new("/ws"), Path::new("/ws/crates/x/src/lib.rs"), src)
    }

    #[test]
    fn test_items_are_spanned() {
        let f = file_from(
            "fn live() { x.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n    fn helper() { y.unwrap(); }\n}\n",
        );
        let unwraps: Vec<bool> = f
            .lex
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| f.in_test(i))
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn fn_spans_nest_and_resolve_innermost() {
        let f = file_from("fn outer() {\n    fn inner() { body(); }\n}\n");
        assert_eq!(f.fns.len(), 2);
        let body_idx = f
            .lex
            .tokens
            .iter()
            .position(|t| t.is_ident("body"))
            .unwrap();
        assert_eq!(f.enclosing_fn(body_idx).unwrap().name, "inner");
    }

    #[test]
    fn enum_variants_are_parsed() {
        let f = file_from(
            "pub enum EngineEvent {\n  A { x: u64 },\n  B,\n  C { y: f64, z: bool },\n}\n",
        );
        assert_eq!(enum_variants(&f, "EngineEvent"), vec!["A", "B", "C"]);
    }

    #[test]
    fn drop_targets_are_collected() {
        let f = file_from("impl Drop for Guarded { fn drop(&mut self) {} }");
        assert_eq!(drop_impl_targets(&f), vec!["Guarded"]);
    }

    #[test]
    fn allow_escape_covers_nearby_lines() {
        let f = file_from("// lint: allow(some-rule) reason\nlet x = 1;\n");
        assert!(f.allowed("some-rule", 2));
        assert!(!f.allowed("other-rule", 2));
    }
}
