//! Lock discipline rules.
//!
//! `lock-order`: the engine holds more than one lock only in a handful of
//! carefully-ordered places (shard map → sweep cache → signature store →
//! telemetry). [`LOCK_ORDER`] declares the global acquisition order by
//! field name; acquiring a lower-ranked lock while a higher-ranked guard
//! is live is a deadlock-shaped bug even when today's call graph happens
//! not to interleave the two call sites.
//!
//! `poison-recovery`: the engine's policy is that a panicking writer must
//! not take the whole diagnosis pipeline down with it, so every guard
//! acquisition recovers from poisoning with
//! `unwrap_or_else(PoisonError::into_inner)` instead of `.unwrap()`.

use super::{Rule, Violation};
use crate::lexer::{TokKind, Token};
use crate::workspace::{SourceFile, Workspace};

/// One declared lock, identified by the field it is stored in.
#[derive(Debug, Clone, Copy)]
pub struct LockClass {
    /// Field name holding the lock (`self.<field>` / `<field>[i]`).
    pub field: &'static str,
    /// Acquisition rank: locks must be acquired in non-decreasing rank.
    pub rank: u8,
    /// The type that owns the field.
    pub holder: &'static str,
    /// `Mutex` or `RwLock`.
    pub kind: &'static str,
    /// Why the lock sits at this rank.
    pub why: &'static str,
}

/// The workspace's global lock-acquisition order, outermost first.
///
/// Rationale: ingest touches the sharded state map first and may then
/// consult the sweep cache and signature store; telemetry sinks (scope
/// table, span ring) are leaves that never acquire anything else; the
/// sweep pool's job queue is drained only on worker threads that hold no
/// other lock.
pub const LOCK_ORDER: &[LockClass] = &[
    LockClass {
        field: "shards",
        rank: 0,
        holder: "ShardedStateMap",
        kind: "RwLock",
        why: "per-metric state is touched first on every tick",
    },
    LockClass {
        field: "entries",
        rank: 1,
        holder: "SweepCache",
        kind: "Mutex",
        why: "cache probe/insert happens inside a diagnosis pass, after state reads",
    },
    LockClass {
        field: "signatures",
        rank: 2,
        holder: "Engine",
        kind: "RwLock",
        why: "signature matching runs after the association matrix is ready",
    },
    LockClass {
        field: "scopes",
        rank: 3,
        holder: "MetricsRegistry",
        kind: "RwLock",
        why: "telemetry scope lookup is a leaf on the metrics path",
    },
    LockClass {
        field: "ring",
        rank: 4,
        holder: "SpanRing",
        kind: "Mutex",
        why: "span capture is a leaf on the tracing path",
    },
    LockClass {
        field: "job_rx",
        rank: 5,
        holder: "SweepPool",
        kind: "Mutex",
        why: "drained only by workers that hold nothing else",
    },
];

fn class_of(field: &str) -> Option<&'static LockClass> {
    LOCK_ORDER.iter().find(|c| c.field == field)
}

/// A live guard tracked during the scan.
struct Held {
    class: &'static LockClass,
    /// Binding name for `let g = ...` guards (`drop(g)` releases them).
    name: Option<String>,
    /// Brace depth at acquisition; leaving the block releases the guard.
    depth: usize,
    line: u32,
}

/// See module docs (`lock-order`).
pub struct LockOrder;

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "declared locks must be acquired in LOCK_ORDER rank order"
    }

    fn check(&self, file: &SourceFile, _ws: &Workspace, out: &mut Vec<Violation>) {
        let toks = &file.lex.tokens;
        let mut held: Vec<Held> = Vec::new();
        let mut depth = 0usize;
        // Index of the first token of the current statement, for spotting
        // `let <name> =` bindings.
        let mut stmt_start = 0usize;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.is_punct('{') {
                depth += 1;
                stmt_start = i + 1;
                continue;
            }
            if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                // Guards bound inside the block die with it; statement
                // temporaries acquired at deeper depth are long gone too.
                held.retain(|h| h.depth <= depth);
                stmt_start = i + 1;
                continue;
            }
            if t.is_punct(';') {
                // Statement temporaries (guards never bound to a name)
                // drop at the end of their statement.
                held.retain(|h| h.name.is_some() || h.depth != depth);
                stmt_start = i + 1;
                continue;
            }
            // Explicit `drop(name)` releases a bound guard early.
            if t.is_ident("drop")
                && toks.get(i + 1).is_some_and(|x| x.is_punct('('))
                && toks.get(i + 3).is_some_and(|x| x.is_punct(')'))
            {
                if let Some(name) = toks.get(i + 2) {
                    held.retain(|h| h.name.as_deref() != Some(name.text.as_str()));
                }
                continue;
            }
            // Acquisition: `<recv>.lock()` / `.read()` / `.write()`.
            let is_acquire = (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
                && i >= 1
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|x| x.is_punct('('))
                && toks.get(i + 2).is_some_and(|x| x.is_punct(')'));
            if !is_acquire || file.in_test(i) {
                continue;
            }
            let Some(class) = receiver_class(toks, i - 1) else {
                continue; // not a declared lock
            };
            for h in &held {
                if h.class.rank > class.rank {
                    out.push(Violation {
                        rule: self.id(),
                        path: file.rel.clone(),
                        line: t.line,
                        message: format!(
                            "acquires `{}` (rank {}) while `{}` (rank {}, line {}) is held \
                             — declared order is {}",
                            class.field,
                            class.rank,
                            h.class.field,
                            h.class.rank,
                            h.line,
                            order_summary(),
                        ),
                        chain: Vec::new(),
                    });
                }
            }
            held.push(Held {
                class,
                name: let_binding(toks, stmt_start, i),
                depth,
                line: t.line,
            });
        }
    }
}

/// Walks back from the `.` before the acquiring method to find which
/// declared lock field is being locked, skipping index groups
/// (`shards[idx].read()`) and path segments.
fn receiver_class(toks: &[Token], dot_idx: usize) -> Option<&'static LockClass> {
    let mut j = dot_idx; // points at the `.`
    let mut hops = 0;
    while j > 0 && hops < 12 {
        j -= 1;
        hops += 1;
        let t = &toks[j];
        if t.is_punct(']') {
            // Skip the whole `[...]` group.
            let mut d = 1usize;
            while j > 0 && d > 0 {
                j -= 1;
                if toks[j].is_punct(']') {
                    d += 1;
                } else if toks[j].is_punct('[') {
                    d -= 1;
                }
            }
            continue;
        }
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_punct('=') {
            break;
        }
        if t.kind == TokKind::Ident {
            if let Some(c) = class_of(&t.text) {
                return Some(c);
            }
            if t.text == "self" {
                break; // reached the receiver root without a match
            }
        }
    }
    None
}

/// If the statement starting at `stmt_start` is `let <name> = ...` and the
/// acquisition at `site` belongs to it, the guard is (conservatively)
/// treated as bound to `<name>` for the rest of the block.
fn let_binding(toks: &[Token], stmt_start: usize, site: usize) -> Option<String> {
    let t = toks.get(stmt_start)?;
    if !t.is_ident("let") || stmt_start + 2 > site {
        return None;
    }
    let name = toks.get(stmt_start + 1)?;
    let mut idx = stmt_start + 1;
    if name.is_ident("mut") {
        idx += 1;
    }
    let name = toks.get(idx)?;
    (name.kind == TokKind::Ident).then(|| name.text.clone())
}

fn order_summary() -> String {
    LOCK_ORDER
        .iter()
        .map(|c| c.field)
        .collect::<Vec<_>>()
        .join(" < ")
}

/// See module docs (`poison-recovery`).
pub struct PoisonRecovery;

impl Rule for PoisonRecovery {
    fn id(&self) -> &'static str {
        "poison-recovery"
    }

    fn description(&self) -> &'static str {
        "guard acquisitions must recover from poisoning, not .unwrap()/.expect()"
    }

    fn check(&self, file: &SourceFile, _ws: &Workspace, out: &mut Vec<Violation>) {
        let toks = &file.lex.tokens;
        for i in 0..toks.len() {
            let is_acquire =
                (toks[i].is_ident("lock") || toks[i].is_ident("read") || toks[i].is_ident("write"))
                    && i >= 1
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|x| x.is_punct('('))
                    && toks.get(i + 2).is_some_and(|x| x.is_punct(')'));
            if !is_acquire || file.in_test(i) {
                continue;
            }
            // Only police declared locks; `.read()` on a reader type etc.
            // is out of scope.
            if receiver_class(toks, i - 1).is_none() {
                continue;
            }
            let Some(next) = toks.get(i + 4) else {
                continue;
            };
            if toks[i + 3].is_punct('.') && (next.is_ident("unwrap") || next.is_ident("expect")) {
                out.push(Violation {
                    rule: self.id(),
                    path: file.rel.clone(),
                    line: toks[i].line,
                    message: format!(
                        ".{}() panics on a poisoned `{}` guard — use \
                         `.unwrap_or_else(std::sync::PoisonError::into_inner)`",
                        next.text,
                        // receiver_class returned Some above.
                        receiver_class(toks, i - 1).map_or("?", |c| c.field),
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }
}
