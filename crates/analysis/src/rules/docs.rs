//! Rule `engine-missing-docs`: every `pub` item under
//! `crates/core/src/engine/` needs a doc comment.
//!
//! The engine directory is the crate's public API surface; `ix-core`
//! additionally compiles with `#![warn(missing_docs)]`, and this rule
//! keeps the same bar inside the lint pass (so `ix-analysis check` fails
//! fast without a compile). A `pub mod name;` declaration is satisfied by
//! module-level `//!` docs in the target file.

use super::{Rule, Violation};
use crate::lexer::Token;
use crate::workspace::{SourceFile, Workspace};

/// Item keywords whose `pub` form requires docs.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "mod", "const", "type", "static",
];

/// See module docs.
pub struct MissingDocs;

impl Rule for MissingDocs {
    fn id(&self) -> &'static str {
        "engine-missing-docs"
    }

    fn description(&self) -> &'static str {
        "pub items under crates/core/src/engine/ need doc comments"
    }

    fn check(&self, file: &SourceFile, ws: &Workspace, out: &mut Vec<Violation>) {
        if !file.rel.starts_with("crates/core/src/engine/") {
            return;
        }
        let toks = &file.lex.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("pub") || file.in_test(i) {
                continue;
            }
            // `pub(crate)` / `pub(super)` are not public API.
            if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            let Some(kw) = toks.get(i + 1) else {
                continue;
            };
            if !ITEM_KEYWORDS.contains(&kw.text.as_str()) {
                continue; // `pub use` re-exports, fields, etc.
            }
            let Some(name) = toks.get(i + 2) else {
                continue;
            };
            let anchor_line = item_anchor_line(toks, i);
            if documented_above(file, anchor_line) {
                continue;
            }
            // `pub mod x;` is fine when the target file opens with `//!`.
            if kw.is_ident("mod")
                && toks.get(i + 3).is_some_and(|t| t.is_punct(';'))
                && target_module_has_inner_docs(ws, &file.rel, &name.text)
            {
                continue;
            }
            out.push(Violation {
                rule: self.id(),
                path: file.rel.clone(),
                line: toks[i].line,
                message: format!(
                    "public {} `{}` has no doc comment (engine items are public API)",
                    kw.text, name.text
                ),
                chain: Vec::new(),
            });
        }
    }
}

/// Whether a `///` doc comment sits in the contiguous comment block
/// directly above `anchor_line` (plain `//` comments — e.g. `// ordering:`
/// justifications — may sit between the doc and the item).
fn documented_above(file: &SourceFile, anchor_line: u32) -> bool {
    let mut expected = anchor_line.saturating_sub(1);
    while expected > 0 {
        let Some(c) = file.lex.comments.iter().find(|c| c.end_line == expected) else {
            return false;
        };
        if c.text.starts_with("///") {
            return true;
        }
        expected = c.line.saturating_sub(1);
    }
    false
}

/// The line of the item's first token, stepping back over any attributes
/// preceding the `pub` at `pub_idx` so docs above `#[derive(..)]` count.
fn item_anchor_line(toks: &[Token], pub_idx: usize) -> u32 {
    let mut j = pub_idx;
    while j >= 1 && toks[j - 1].is_punct(']') {
        let mut depth = 1usize;
        let mut k = j - 1;
        while k > 0 && depth > 0 {
            k -= 1;
            if toks[k].is_punct(']') {
                depth += 1;
            } else if toks[k].is_punct('[') {
                depth -= 1;
            }
        }
        if k >= 1 && toks[k - 1].is_punct('#') {
            j = k - 1;
        } else {
            break;
        }
    }
    toks[j].line
}

/// Whether `<dir of rel>/<name>.rs` or `.../<name>/mod.rs` starts with
/// module-level `//!` docs.
fn target_module_has_inner_docs(ws: &Workspace, rel: &str, name: &str) -> bool {
    let dir = rel.rsplit_once('/').map_or("", |(d, _)| d);
    [format!("{dir}/{name}.rs"), format!("{dir}/{name}/mod.rs")]
        .iter()
        .filter_map(|cand| ws.file(cand))
        .any(|f| {
            f.lex
                .comments
                .first()
                .is_some_and(|c| c.text.starts_with("//!"))
        })
}
