//! Rule `event-match-exhaustive`: every `match` over [`EngineEvent`]
//! outside tests must name each variant explicitly and must not use a `_`
//! wildcard arm.
//!
//! Event sinks (counters, exporters, the span ring) are the engine's
//! observable surface. A wildcard arm means a newly added event variant
//! silently disappears from an exporter instead of failing to compile —
//! precisely the class of drift the telemetry PR introduced these sinks to
//! prevent. The variant list is parsed from
//! `crates/core/src/engine/events.rs` at scan time, so the rule tracks the
//! enum without a hand-maintained copy.

use super::{Rule, Violation};
use crate::workspace::{SourceFile, Workspace};

/// See module docs.
pub struct EventMatchExhaustive;

impl Rule for EventMatchExhaustive {
    fn id(&self) -> &'static str {
        "event-match-exhaustive"
    }

    fn description(&self) -> &'static str {
        "matches over EngineEvent must name every variant, with no `_` arm"
    }

    fn check(&self, file: &SourceFile, ws: &Workspace, out: &mut Vec<Violation>) {
        if ws.engine_event_variants.is_empty() {
            return; // events.rs not in the scan set (unit-test workspaces)
        }
        let toks = &file.lex.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("match") || file.in_test(i) {
                continue;
            }
            // Find the match body: the first `{` at group depth 0 after
            // the scrutinee expression.
            let mut j = i + 1;
            let mut body = None;
            while let Some(t) = toks.get(j) {
                if t.is_punct('(') || t.is_punct('[') {
                    let (open, close) = if t.is_punct('(') {
                        ('(', ')')
                    } else {
                        ('[', ']')
                    };
                    match matching(toks, j, open, close) {
                        Some(e) => j = e + 1,
                        None => break,
                    }
                    continue;
                }
                if t.is_punct('{') {
                    body = matching(toks, j, '{', '}').map(|e| (j, e));
                    break;
                }
                if t.is_punct(';') {
                    break;
                }
                j += 1;
            }
            let Some((open, close)) = body else {
                continue;
            };

            // Collect `EngineEvent::Variant` mentions and depth-1 `_ =>`
            // arms inside the body.
            let mut named: Vec<&str> = Vec::new();
            let mut wildcard_line = None;
            let mut depth = 0usize;
            for k in open..=close {
                let t = &toks[k];
                if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                    depth = depth.saturating_sub(1);
                } else if depth == 1
                    && t.is_ident("EngineEvent")
                    && toks.get(k + 1).is_some_and(|x| x.is_punct(':'))
                    && toks.get(k + 2).is_some_and(|x| x.is_punct(':'))
                    && in_pattern_position(toks, k + 4, close)
                {
                    if let Some(v) = toks.get(k + 3) {
                        named.push(v.text.as_str());
                    }
                } else if depth == 1
                    && t.is_ident("_")
                    && toks.get(k + 1).is_some_and(|x| x.is_punct('='))
                    && toks.get(k + 2).is_some_and(|x| x.is_punct('>'))
                {
                    wildcard_line = Some(t.line);
                }
            }
            if named.is_empty() {
                continue; // not a match over EngineEvent
            }
            if let Some(line) = wildcard_line {
                out.push(Violation {
                    rule: self.id(),
                    path: file.rel.clone(),
                    line,
                    message: "`_` arm in a match over EngineEvent — name every variant so new \
                              events fail to compile instead of vanishing"
                        .into(),
                    chain: Vec::new(),
                });
            }
            let missing: Vec<&str> = ws
                .engine_event_variants
                .iter()
                .map(String::as_str)
                .filter(|v| !named.contains(v))
                .collect();
            if !missing.is_empty() && wildcard_line.is_none() {
                out.push(Violation {
                    rule: self.id(),
                    path: file.rel.clone(),
                    line: toks[i].line,
                    message: format!(
                        "match over EngineEvent does not name variant(s): {}",
                        missing.join(", ")
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }
}

/// Whether the `EngineEvent::Variant` path whose payload starts at `from`
/// sits in *pattern* position: scanning forward at arm depth, the `=>` of
/// an arm appears before an arm-ending `,` or the match body's end. Arm
/// *bodies* that construct events (`Some(d) => sink.record(&EngineEvent::X
/// { .. })`) hit the `,`/end first and are not patterns.
fn in_pattern_position(toks: &[crate::lexer::Token], from: usize, body_close: usize) -> bool {
    let mut depth = 0usize;
    let mut k = from;
    while k < body_close {
        let t = &toks[k];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            if depth == 0 {
                return false; // fell out of the arm without seeing `=>`
            }
            depth -= 1;
        } else if depth == 0 {
            if t.is_punct(',') {
                return false;
            }
            if t.is_punct('=') && toks.get(k + 1).is_some_and(|x| x.is_punct('>')) {
                return true;
            }
        }
        k += 1;
    }
    false
}

fn matching(
    toks: &[crate::lexer::Token],
    open_idx: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}
