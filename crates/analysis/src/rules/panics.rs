//! Rule `hot-path-panic`: the streaming-engine and MIC-kernel hot paths
//! must not contain panicking shortcuts.
//!
//! A panic inside `Engine::ingest` or the pairwise scoring kernel poisons
//! shard locks and kills sweep workers mid-sweep — the diagnosis verdict
//! then silently degrades, which is exactly what the paper's "trustworthy
//! invariants" promise forbids. Outside `#[cfg(test)]`, the directories
//! `crates/core/src/engine/` and `crates/mic/src/` may not call
//! `.unwrap()` / `.expect(..)` or invoke `panic!` / `unreachable!` /
//! `todo!` / `unimplemented!`. Invariants that genuinely cannot fail are
//! documented with a `// lint: allow(hot-path-panic) <why>` escape.

use super::{Rule, Violation};
use crate::workspace::{SourceFile, Workspace};

/// Directories the rule polices (workspace-relative prefixes).
const HOT_DIRS: &[&str] = &["crates/core/src/engine/", "crates/mic/src/"];

/// Panicking macros.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// See module docs.
pub struct HotPathPanic;

impl Rule for HotPathPanic {
    fn id(&self) -> &'static str {
        "hot-path-panic"
    }

    fn description(&self) -> &'static str {
        "no .unwrap()/.expect()/panic-family macros in engine and MIC hot paths"
    }

    fn check(&self, file: &SourceFile, _ws: &Workspace, out: &mut Vec<Violation>) {
        if !HOT_DIRS.iter().any(|d| file.rel.starts_with(d)) {
            return;
        }
        let toks = &file.lex.tokens;
        for i in 0..toks.len() {
            if file.in_test(i) {
                continue;
            }
            // `.unwrap()` / `.expect(` — the dot requirement keeps local
            // functions that happen to be named `unwrap` out of scope, and
            // exact ident match leaves `.unwrap_or_else(..)` alone.
            let method_panic = i >= 1
                && toks[i - 1].is_punct('.')
                && (toks[i].is_ident("unwrap") || toks[i].is_ident("expect"))
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
            let macro_panic = PANIC_MACROS.iter().any(|m| toks[i].is_ident(m))
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
            if !(method_panic || macro_panic) {
                continue;
            }
            let what = if method_panic {
                format!(".{}()", toks[i].text)
            } else {
                format!("{}!", toks[i].text)
            };
            out.push(Violation {
                rule: self.id(),
                path: file.rel.clone(),
                line: toks[i].line,
                message: format!(
                    "{what} in a hot path — return an error, use a total \
                     comparison/fallback, or add `// lint: allow(hot-path-panic) <why>`"
                ),
                chain: Vec::new(),
            });
        }
    }
}
