//! Rule `must-use-guards`: RAII guards, builders, and sweep plans must be
//! marked `#[must_use]`.
//!
//! A silently dropped [`Span`] closes its phase instantly (timings become
//! lies), a dropped `ConfigBuilder` discards its settings, and a dropped
//! `SweepPool` joins its workers early. Any type with a `Drop` impl in the
//! scanned workspace, any `*Guard`/`*Builder`-named type, and the trait
//! objects listed in [`EXPLICIT`] must carry `#[must_use]` so call sites
//! that ignore them warn under `-D warnings`.

use super::{Rule, Violation};
use crate::lexer::Token;
use crate::workspace::{SourceFile, Workspace};

/// Type/trait names that must be `#[must_use]` regardless of naming.
const EXPLICIT: &[&str] = &["Span", "SweepPool", "SweepPlan"];

/// See module docs.
pub struct MustUseGuards;

impl Rule for MustUseGuards {
    fn id(&self) -> &'static str {
        "must-use-guards"
    }

    fn description(&self) -> &'static str {
        "Drop types, *Guard/*Builder types, and sweep plans need #[must_use]"
    }

    fn check(&self, file: &SourceFile, ws: &Workspace, out: &mut Vec<Violation>) {
        let toks = &file.lex.tokens;
        for i in 0..toks.len() {
            let is_decl = toks[i].is_ident("struct") || toks[i].is_ident("trait");
            if !is_decl || file.in_test(i) {
                continue;
            }
            let Some(name) = toks.get(i + 1) else {
                continue;
            };
            let needs = ws.drop_types.iter().any(|d| d == &name.text)
                || name.text.ends_with("Guard")
                || name.text.ends_with("Builder")
                || EXPLICIT.contains(&name.text.as_str());
            if !needs {
                continue;
            }
            if has_must_use_attr(toks, i) {
                continue;
            }
            out.push(Violation {
                rule: self.id(),
                path: file.rel.clone(),
                line: toks[i].line,
                message: format!(
                    "`{}` is a guard/builder (or has a Drop impl) but is not #[must_use] — \
                     dropping it silently discards its effect",
                    name.text
                ),
                chain: Vec::new(),
            });
        }
    }
}

/// Whether any attribute directly preceding the item at `decl_idx`
/// contains `must_use` (skipping `pub`, visibility groups, and other
/// attributes).
fn has_must_use_attr(toks: &[Token], decl_idx: usize) -> bool {
    let mut j = decl_idx;
    loop {
        // Step back over `pub` / `pub(crate)` / `pub(super)`.
        if j >= 1 && toks[j - 1].is_ident("pub") {
            j -= 1;
            continue;
        }
        if j >= 4
            && toks[j - 1].is_punct(')')
            && toks[j - 3].is_punct('(')
            && toks[j - 4].is_ident("pub")
        {
            j -= 4;
            continue;
        }
        // Step back over one `#[...]` group, checking it for must_use.
        if j >= 1 && toks[j - 1].is_punct(']') {
            let mut depth = 1usize;
            let mut k = j - 1;
            while k > 0 && depth > 0 {
                k -= 1;
                if toks[k].is_punct(']') {
                    depth += 1;
                } else if toks[k].is_punct('[') {
                    depth -= 1;
                }
            }
            if k >= 1 && toks[k - 1].is_punct('#') {
                if toks[k..j].iter().any(|t| t.is_ident("must_use")) {
                    return true;
                }
                j = k - 1;
                continue;
            }
        }
        return false;
    }
}
