//! The lint rule catalog.
//!
//! Each rule checks one repo-specific invariant that `rustc`/`clippy`
//! cannot express — mostly concurrency-hygiene contracts of the streaming
//! engine (justified atomic orderings, the declared lock order, panic-free
//! hot paths) plus a few API-quality gates. Rules report [`Violation`]s
//! with workspace-relative paths and 1-based lines.
//!
//! Suppression: a finding at line `L` is suppressed by a
//! `// lint: allow(<rule-id>) <reason>` comment on line `L` or up to two
//! lines above. Every suppression should carry a reason; the escape is for
//! sites where the rule's invariant is upheld by construction.

mod degradation;
mod determinism;
mod docs;
mod events;
mod locks;
mod must_use;
mod ordering;
mod panics;
mod printing;
mod purity;
mod safety;
mod wire;

use std::borrow::Cow;

use crate::callgraph::{CallGraph, ChainHop};
use crate::workspace::{SourceFile, Workspace};

pub use determinism::{SinkClass, ROOT_FUNCTIONS};
pub use locks::{LockClass, LOCK_ORDER};
pub use purity::HOT_FUNCTIONS;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the offending site.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Root→site call chain for call-graph rules (empty otherwise).
    pub chain: Vec<ChainHop>,
}

impl Violation {
    /// A chainless finding (most rules).
    pub fn new(
        rule: &'static str,
        path: impl Into<String>,
        line: u32,
        message: impl Into<String>,
    ) -> Violation {
        Violation {
            rule,
            path: path.into(),
            line,
            message: message.into(),
            chain: Vec::new(),
        }
    }

    /// Stable identifier used by `--json` / `--explain`:
    /// `rule@path:line`.
    pub fn id(&self) -> String {
        format!("{}@{}:{}", self.rule, self.path, self.line)
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )?;
        if !self.chain.is_empty() {
            let rendered: Vec<String> = self
                .chain
                .iter()
                .map(|h| format!("{} ({}:{})", h.function, h.path, h.line))
                .collect();
            write!(f, " [chain: {}]", rendered.join(" -> "))?;
        }
        Ok(())
    }
}

/// A lint rule: scans one file at a time against workspace-level facts.
pub trait Rule {
    /// Stable kebab-case identifier (used in output and allow-escapes).
    fn id(&self) -> &'static str;

    /// One-line description for `ix-analysis rules`.
    fn description(&self) -> &'static str;

    /// Appends this rule's findings in `file` to `out`.
    fn check(&self, file: &SourceFile, ws: &Workspace, out: &mut Vec<Violation>);
}

/// Every rule, in catalog order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(ordering::AtomicOrderingComment),
        Box::new(panics::HotPathPanic),
        Box::new(locks::LockOrder),
        Box::new(locks::PoisonRecovery),
        Box::new(events::EventMatchExhaustive),
        Box::new(degradation::DegradationEmitsEvent),
        Box::new(safety::UnsafeSafetyComment),
        Box::new(purity::ScoringPathPurity),
        Box::new(must_use::MustUseGuards),
        Box::new(printing::NoPrint),
        Box::new(docs::MissingDocs),
        Box::new(determinism::DeterminismTaint),
        Box::new(wire::WireCoverage),
    ]
}

/// The call graph to use when checking `file`: the workspace's cached
/// graph when `file` is part of the scan, or a freshly built graph with
/// `file` spliced in (replacing any scanned file with the same relative
/// path) for fixture checks.
pub(crate) fn graph_for<'a>(file: &SourceFile, ws: &'a Workspace) -> Cow<'a, CallGraph> {
    let in_ws = ws.file(&file.rel).is_some_and(|f| std::ptr::eq(f, file));
    if in_ws {
        return Cow::Borrowed(&ws.graph);
    }
    let spliced = ws
        .files
        .iter()
        .filter(|f| f.rel != file.rel)
        .chain(std::iter::once(file));
    Cow::Owned(CallGraph::build(spliced))
}

/// Runs every rule over every scanned file; findings are sorted by path,
/// line, then rule id.
pub fn run_all(ws: &Workspace) -> Vec<Violation> {
    let rules = all_rules();
    let mut out = Vec::new();
    for file in &ws.files {
        for rule in &rules {
            let mut found = Vec::new();
            rule.check(file, ws, &mut found);
            found.retain(|v| !file.allowed(rule.id(), v.line));
            out.append(&mut found);
        }
    }
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    out
}

/// Shared helper: whether a justification comment containing `needle`
/// covers the site at token `tok_idx` / line `line` — same line, up to
/// `window` lines above, or in the header of the enclosing function (up to
/// 8 lines above the `fn` keyword through the body's opening line).
pub(crate) fn justified(
    file: &SourceFile,
    tok_idx: usize,
    line: u32,
    needle: &str,
    window: u32,
) -> bool {
    if file.comment_contains(line.saturating_sub(window), line, needle) {
        return true;
    }
    if let Some(f) = file.enclosing_fn(tok_idx) {
        let body_open_line = file.lex.tokens.get(f.body_open).map_or(f.line, |t| t.line);
        if file.comment_contains(f.line.saturating_sub(8), body_open_line, needle) {
            return true;
        }
    }
    false
}
