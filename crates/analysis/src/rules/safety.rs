//! Rule `unsafe-safety-comment`: every `unsafe` keyword outside tests
//! needs an adjacent `// SAFETY:` comment stating the invariant that makes
//! it sound.
//!
//! The workspace is currently `unsafe`-free by design (the kernels get
//! their speed from layout and reuse, not from `unchecked` indexing). If
//! an unsafe block ever does land, this rule makes the soundness argument
//! a checked artifact from day one.

use super::{justified, Rule, Violation};
use crate::workspace::{SourceFile, Workspace};

/// See module docs.
pub struct UnsafeSafetyComment;

impl Rule for UnsafeSafetyComment {
    fn id(&self) -> &'static str {
        "unsafe-safety-comment"
    }

    fn description(&self) -> &'static str {
        "`unsafe` requires an adjacent `// SAFETY:` justification"
    }

    fn check(&self, file: &SourceFile, _ws: &Workspace, out: &mut Vec<Violation>) {
        let toks = &file.lex.tokens;
        for (i, tok) in toks.iter().enumerate() {
            if !tok.is_ident("unsafe") || file.in_test(i) {
                continue;
            }
            let line = tok.line;
            if justified(file, i, line, "SAFETY", 3) {
                continue;
            }
            out.push(Violation {
                rule: self.id(),
                path: file.rel.clone(),
                line,
                message: "`unsafe` without a `// SAFETY:` comment (same line, 3 lines above, \
                          or the enclosing fn's header)"
                    .into(),
                chain: Vec::new(),
            });
        }
    }
}
