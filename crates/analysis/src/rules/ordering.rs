//! Rule `atomic-ordering-comment`: every atomic memory-ordering argument
//! must carry a written justification.
//!
//! The engine's correctness story for its lock-free structures (sweep
//! cursor, telemetry counters) is "every `Relaxed` is justified by an
//! external happens-before edge or by single-variable monotonicity". That
//! story only stays true if each site says *which* edge. This rule makes
//! the justification a build-enforced artifact: any `Ordering::Relaxed`,
//! `::Acquire`, `::Release`, `::AcqRel` or `::SeqCst` outside tests needs
//! an `// ordering:` comment on the same line, within the three lines
//! above, or in the enclosing function's header.

use super::{justified, Rule, Violation};
use crate::workspace::{SourceFile, Workspace};

/// Atomic (not `cmp`) ordering variant names.
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// See module docs.
pub struct AtomicOrderingComment;

impl Rule for AtomicOrderingComment {
    fn id(&self) -> &'static str {
        "atomic-ordering-comment"
    }

    fn description(&self) -> &'static str {
        "atomic Ordering arguments need an adjacent `// ordering:` justification"
    }

    fn check(&self, file: &SourceFile, _ws: &Workspace, out: &mut Vec<Violation>) {
        let toks = &file.lex.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("Ordering") {
                continue;
            }
            let Some(variant) = toks.get(i + 3) else {
                continue;
            };
            if !(toks[i + 1].is_punct(':') && toks[i + 2].is_punct(':')) {
                continue;
            }
            if !ATOMIC_ORDERINGS.contains(&variant.text.as_str()) {
                continue; // cmp::Ordering::{Less, Equal, Greater} etc.
            }
            if file.in_test(i) {
                continue;
            }
            let line = toks[i].line;
            if justified(file, i, line, "ordering:", 3) {
                continue;
            }
            out.push(Violation {
                rule: self.id(),
                path: file.rel.clone(),
                line,
                message: format!(
                    "Ordering::{} without an `// ordering:` justification (same line, \
                     3 lines above, or the enclosing fn's header)",
                    variant.text
                ),
                chain: Vec::new(),
            });
        }
    }
}
