//! Rule `degradation-emits-event`: every function that constructs a
//! `SweepDegradation` must also emit the corresponding engine event.
//!
//! The resilience layer's contract is *correct or explicitly degraded* —
//! a degraded verdict attached to a [`ix_core::Diagnosis`] is only half
//! the declaration; operators watch the event stream, so the same site
//! must raise `EngineEvent::SweepDegraded` (directly or via the
//! `note_degradation` helper). A construction site whose enclosing
//! function never mentions either is a degradation the telemetry surface
//! will not see.

use super::{Rule, Violation};
use crate::workspace::{SourceFile, Workspace};

/// See module docs.
pub struct DegradationEmitsEvent;

impl Rule for DegradationEmitsEvent {
    fn id(&self) -> &'static str {
        "degradation-emits-event"
    }

    fn description(&self) -> &'static str {
        "functions constructing SweepDegradation must emit SweepDegraded (or call note_degradation)"
    }

    fn check(&self, file: &SourceFile, _ws: &Workspace, out: &mut Vec<Violation>) {
        let toks = &file.lex.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("SweepDegradation") || file.in_test(i) {
                continue;
            }
            // Construction sites only: `SweepDegradation {` that is not the
            // struct's own declaration.
            if !toks.get(i + 1).is_some_and(|t| t.is_punct('{')) {
                continue;
            }
            if i >= 1 && toks[i - 1].is_ident("struct") {
                continue;
            }
            let Some(f) = file.enclosing_fn(i) else {
                continue; // const/static initializers have no event path
            };
            let emits = toks[f.fn_tok..=f.body_close]
                .iter()
                .any(|t| t.is_ident("note_degradation") || t.is_ident("SweepDegraded"));
            if !emits {
                out.push(Violation {
                    rule: self.id(),
                    path: file.rel.clone(),
                    line: toks[i].line,
                    message: format!(
                        "`{}` constructs a SweepDegradation but never emits \
                         EngineEvent::SweepDegraded (or calls note_degradation) — \
                         the degradation is invisible to event sinks",
                        f.name
                    ),
                });
            }
        }
    }
}
