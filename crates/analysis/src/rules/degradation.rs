//! Rule `degradation-emits-event`: every function that constructs a
//! `SweepDegradation` must also emit the corresponding engine event.
//!
//! The resilience layer's contract is *correct or explicitly degraded* —
//! a degraded verdict attached to a [`ix_core::Diagnosis`] is only half
//! the declaration; operators watch the event stream, so the same site
//! must raise `EngineEvent::SweepDegraded` (directly or via the
//! `note_degradation` helper). The emit may live in a *callee*: the rule
//! closes over the constructing function's confident call-graph
//! descendants, so routing the event through a helper satisfies the
//! contract, while a construction whose whole closure never mentions the
//! event is flagged.

use super::{graph_for, Rule, Violation};
use crate::callgraph::EdgeFilter;
use crate::workspace::{SourceFile, Workspace};

/// See module docs.
pub struct DegradationEmitsEvent;

impl Rule for DegradationEmitsEvent {
    fn id(&self) -> &'static str {
        "degradation-emits-event"
    }

    fn description(&self) -> &'static str {
        "functions constructing SweepDegradation must emit SweepDegraded (or call note_degradation)"
    }

    fn check(&self, file: &SourceFile, ws: &Workspace, out: &mut Vec<Violation>) {
        let graph = graph_for(file, ws);
        let toks = &file.lex.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("SweepDegradation") || file.in_test(i) {
                continue;
            }
            // Construction sites only: `SweepDegradation {` that is not the
            // struct's own declaration.
            if !toks.get(i + 1).is_some_and(|t| t.is_punct('{')) {
                continue;
            }
            if i >= 1 && toks[i - 1].is_ident("struct") {
                continue;
            }
            let Some(f) = file.enclosing_fn(i) else {
                continue; // const/static initializers have no event path
            };
            // The emit may happen transitively: walk every function
            // confidently reachable from the constructing one and accept
            // a mention anywhere in the closure.
            let emits = match graph.node_at(&file.rel, i) {
                Some(root) => graph
                    .reach(&[root], EdgeFilter::Confident)
                    .keys()
                    .any(|&n| {
                        let node = &graph.nodes[n];
                        // `file` first: for fixture checks the graph was
                        // built with `file` spliced over the same-rel
                        // workspace file, so its token offsets win.
                        let Some(nf) = (node.file == file.rel)
                            .then_some(file)
                            .or_else(|| ws.file(&node.file))
                        else {
                            return false;
                        };
                        let ntoks = &nf.lex.tokens;
                        let end = node.body.1.min(ntoks.len().saturating_sub(1));
                        ntoks[node.body.0..=end]
                            .iter()
                            .any(|t| t.is_ident("note_degradation") || t.is_ident("SweepDegraded"))
                    }),
                // Not a graph node (e.g. a test-only fn): fall back to the
                // enclosing fn's own body.
                None => toks[f.fn_tok..=f.body_close]
                    .iter()
                    .any(|t| t.is_ident("note_degradation") || t.is_ident("SweepDegraded")),
            };
            if !emits {
                out.push(Violation {
                    rule: self.id(),
                    path: file.rel.clone(),
                    line: toks[i].line,
                    message: format!(
                        "`{}` constructs a SweepDegradation but never emits \
                         EngineEvent::SweepDegraded (or calls note_degradation) — \
                         the degradation is invisible to event sinks",
                        f.name
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }
}
