//! Rule `scoring-path-purity`: the per-pair scoring path must stay
//! allocation-free and clock-free.
//!
//! The sweep optimization PR got its speedup by making the inner loop
//! reuse caller-held scratch: one pair's score costs zero allocations once
//! the buffers are warm, and never reads a clock (timing is attributed at
//! batch granularity by the pool, not per pair). [`HOT_FUNCTIONS`] lists
//! the functions on that path; inside their bodies the rule bans clock
//! reads (`Instant`, `SystemTime`) and the common allocating constructs
//! (`vec!`, `Vec::new`, `with_capacity`, `to_vec`, `Box::new`, `format!`,
//! `String::new`, `collect`).

use super::{Rule, Violation};
use crate::workspace::{SourceFile, Workspace};

/// `(workspace-relative file, fn name)` pairs on the per-pair scoring path.
pub const HOT_FUNCTIONS: &[(&str, &str)] = &[
    ("crates/mic/src/mine.rs", "mic_with_profiles_scratch"),
    ("crates/mic/src/mine.rs", "half_characteristic_into"),
    ("crates/mic/src/mine.rs", "mic_screen_bound_scratch"),
    ("crates/mic/src/mine.rs", "corner_entry_into"),
    ("crates/mic/src/profile.rs", "slide"),
    ("crates/core/src/measure.rs", "score_pair"),
    ("crates/core/src/measure.rs", "screen_bound"),
    ("crates/core/src/assoc.rs", "score_one"),
    ("crates/core/src/assoc.rs", "claim_batch"),
    ("crates/core/src/incremental.rs", "rescore"),
];

/// Idents banned inside hot-function bodies, with why.
const BANNED: &[(&str, &str)] = &[
    ("Instant", "clock read in the per-pair path"),
    ("SystemTime", "clock read in the per-pair path"),
    ("vec", "allocates per call"),
    ("with_capacity", "allocates per call"),
    ("to_vec", "allocates per call"),
    ("format", "allocates per call"),
    ("collect", "allocates per call"),
];

/// See module docs.
pub struct ScoringPathPurity;

impl Rule for ScoringPathPurity {
    fn id(&self) -> &'static str {
        "scoring-path-purity"
    }

    fn description(&self) -> &'static str {
        "no clocks or allocation in the per-pair scoring path (HOT_FUNCTIONS)"
    }

    fn check(&self, file: &SourceFile, _ws: &Workspace, out: &mut Vec<Violation>) {
        let hot: Vec<&str> = HOT_FUNCTIONS
            .iter()
            .filter(|(f, _)| *f == file.rel)
            .map(|(_, name)| *name)
            .collect();
        if hot.is_empty() {
            return;
        }
        let toks = &file.lex.tokens;
        for f in file.fns.iter().filter(|f| hot.contains(&f.name.as_str())) {
            for i in f.body_open..=f.body_close.min(toks.len().saturating_sub(1)) {
                let t = &toks[i];
                // `Vec::new` / `String::new` / `Box::new`.
                let alloc_new = t.is_ident("new")
                    && i >= 3
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':')
                    && (toks[i - 3].is_ident("Vec")
                        || toks[i - 3].is_ident("String")
                        || toks[i - 3].is_ident("Box"));
                let banned = BANNED.iter().find(|(name, _)| {
                    t.is_ident(name)
                        // `vec` and `format` only as macros.
                        && (!matches!(*name, "vec" | "format")
                            || toks.get(i + 1).is_some_and(|x| x.is_punct('!')))
                });
                let why = if alloc_new {
                    Some("allocates per call")
                } else {
                    banned.map(|(_, why)| *why)
                };
                let Some(why) = why else { continue };
                out.push(Violation {
                    rule: self.id(),
                    path: file.rel.clone(),
                    line: t.line,
                    message: format!(
                        "`{}` inside hot fn `{}` — {why}; hoist into scratch/plan state",
                        if alloc_new {
                            format!("{}::new", toks[i - 3].text)
                        } else {
                            t.text.clone()
                        },
                        f.name
                    ),
                });
            }
        }
    }
}
