//! Rule `scoring-path-purity`: the per-pair scoring path must stay
//! allocation-free and clock-free.
//!
//! The sweep optimization PR got its speedup by making the inner loop
//! reuse caller-held scratch: one pair's score costs zero allocations once
//! the buffers are warm, and never reads a clock (timing is attributed at
//! batch granularity by the pool, not per pair). [`HOT_FUNCTIONS`] lists
//! the functions at the top of that path; the rule closes over their
//! *confident* callees in the workspace call graph (same-file helpers,
//! qualified calls, `self` methods — dyn-dispatch fan-out is excluded,
//! trait contracts take over at that boundary) and bans clock reads
//! (`Instant`, `SystemTime`) and the common allocating constructs (`vec!`,
//! `Vec::new`, `with_capacity`, `to_vec`, `Box::new`, `format!`,
//! `String::new`, `collect`) in every reachable body. A violation in a
//! helper three calls down reports the full hot-fn→helper chain.

use super::{graph_for, Rule, Violation};
use crate::callgraph::EdgeFilter;
use crate::workspace::{SourceFile, Workspace};

/// `(workspace-relative file, fn name)` pairs on the per-pair scoring path.
pub const HOT_FUNCTIONS: &[(&str, &str)] = &[
    ("crates/mic/src/mine.rs", "mic_with_profiles_scratch"),
    ("crates/mic/src/mine.rs", "half_characteristic_into"),
    ("crates/mic/src/mine.rs", "mic_screen_bound_scratch"),
    ("crates/mic/src/mine.rs", "corner_entry_into"),
    ("crates/mic/src/profile.rs", "slide"),
    ("crates/core/src/measure.rs", "score_pair"),
    ("crates/core/src/measure.rs", "screen_bound"),
    ("crates/core/src/assoc.rs", "score_one"),
    ("crates/core/src/assoc.rs", "claim_batch"),
    ("crates/core/src/incremental.rs", "rescore"),
];

/// Idents banned inside hot-function bodies, with why.
const BANNED: &[(&str, &str)] = &[
    ("Instant", "clock read in the per-pair path"),
    ("SystemTime", "clock read in the per-pair path"),
    ("vec", "allocates per call"),
    ("with_capacity", "allocates per call"),
    ("to_vec", "allocates per call"),
    ("format", "allocates per call"),
    ("collect", "allocates per call"),
];

/// See module docs.
pub struct ScoringPathPurity;

impl Rule for ScoringPathPurity {
    fn id(&self) -> &'static str {
        "scoring-path-purity"
    }

    fn description(&self) -> &'static str {
        "no clocks or allocation in the per-pair scoring path (HOT_FUNCTIONS)"
    }

    fn check(&self, file: &SourceFile, ws: &Workspace, out: &mut Vec<Violation>) {
        let graph = graph_for(file, ws);
        let roots: Vec<usize> = graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                HOT_FUNCTIONS
                    .iter()
                    .any(|&(f, name)| n.file == f && n.name == name)
            })
            .map(|(i, _)| i)
            .collect();
        if roots.is_empty() {
            return;
        }
        // Close over confident callees only: dyn-dispatch fan-out would
        // pull every same-named trait impl (e.g. the allocating non-scratch
        // `score` path) into the hot set.
        let parents = graph.reach(&roots, EdgeFilter::Confident);
        let toks = &file.lex.tokens;
        for (&node_idx, _) in parents
            .iter()
            .filter(|(&i, _)| graph.nodes[i].file == file.rel)
        {
            let node = &graph.nodes[node_idx];
            let (start, end) = node.body;
            let end = end.min(toks.len().saturating_sub(1));
            // Tokens owned by nested nodes are scanned when (and only
            // when) the nested node is itself reachable.
            let nested: Vec<(usize, usize)> = graph
                .nodes
                .iter()
                .enumerate()
                .filter(|&(i, n)| {
                    i != node_idx && n.file == node.file && n.body.0 > start && n.body.1 <= end
                })
                .map(|(_, n)| n.body)
                .collect();
            let mut i = start;
            while i <= end {
                if let Some(&(_, nest_end)) = nested.iter().find(|&&(s, e)| i >= s && i <= e) {
                    i = nest_end + 1;
                    continue;
                }
                let t = &toks[i];
                // `Vec::new` / `String::new` / `Box::new`.
                let alloc_new = t.is_ident("new")
                    && i >= 3
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':')
                    && (toks[i - 3].is_ident("Vec")
                        || toks[i - 3].is_ident("String")
                        || toks[i - 3].is_ident("Box"));
                let banned = BANNED.iter().find(|(name, _)| {
                    t.is_ident(name)
                        // `vec` and `format` only as macros.
                        && (!matches!(*name, "vec" | "format")
                            || toks.get(i + 1).is_some_and(|x| x.is_punct('!')))
                });
                let why = if alloc_new {
                    Some("allocates per call")
                } else {
                    banned.map(|(_, why)| *why)
                };
                let Some(why) = why else {
                    i += 1;
                    continue;
                };
                let chain = graph.chain(&parents, node_idx);
                let root = chain
                    .first()
                    .map(|h| h.function.clone())
                    .unwrap_or_default();
                out.push(Violation {
                    rule: self.id(),
                    path: file.rel.clone(),
                    line: t.line,
                    message: format!(
                        "`{}` in `{}` on the hot path from `{root}` — {why}; hoist into \
                         scratch/plan state",
                        if alloc_new {
                            format!("{}::new", toks[i - 3].text)
                        } else {
                            t.text.clone()
                        },
                        node.qualified_name(),
                    ),
                    chain,
                });
                i += 1;
            }
        }
    }
}
