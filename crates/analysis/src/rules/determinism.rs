//! Rule `determinism`: no nondeterminism source may be reachable from a
//! determinism root.
//!
//! Every headline guarantee of this reproduction — replay `verify()`
//! byte-exactness, the golden-sweep fixture, query-vs-live bit-identity,
//! incremental-vs-rebuild equivalence — rests on the engine being a pure
//! function of its inputs. This pass proves the property *statically*: it
//! declares the functions those guarantees enter through
//! ([`ROOT_FUNCTIONS`]), closes over the workspace call graph
//! (over-approximate [`EdgeFilter::All`] — dyn dispatch fans out to every
//! impl), and reports any reachable function whose body contains a member
//! of the nondeterminism-sink taxonomy ([`SinkClass`]) as a full
//! root→…→sink call chain with `file:line` per hop.
//!
//! Sinks that are *deliberate* (wall-clock telemetry attribution that
//! replay normalizes away, deadline checks whose effect is a *declared*
//! degradation) are escaped with `// lint: allow(determinism, <reason>)`
//! at the sink line; the reason is mandatory by convention and the escape
//! is audited in review like any other.

use super::{graph_for, Rule, Violation};
use crate::callgraph::{CallGraph, EdgeFilter, FnNode};
use crate::lexer::{TokKind, Token};
use crate::workspace::{SourceFile, Workspace};

/// The determinism roots: `(impl type, method)` pairs every reproduction
/// guarantee enters the engine through. Specs that stop matching any
/// function fail the pass loudly (root drift) instead of silently
/// shrinking coverage.
pub const ROOT_FUNCTIONS: &[(&str, &str)] = &[
    // Streaming ingest and the bounded-queue path.
    ("Engine", "ingest"),
    ("Engine", "submit"),
    ("Engine", "drain"),
    ("Engine", "diagnose"),
    // The association sweep paths (full, pooled, incremental).
    ("AssociationMatrix", "compute"),
    ("SweepPool", "sweep"),
    ("SweepPool", "sweep_bounded"),
    ("IncrementalSweep", "rescore"),
    // Replay byte-exactness.
    ("Replayer", "verify"),
    // IXHIST01 persistence round-trip.
    ("HistoryStore", "save"),
    ("HistoryStore", "load"),
    ("HistoryStore", "load_with_warnings"),
    // Query execution (must reproduce live results bit-exactly).
    ("Explanations", "rank"),
    ("Cooccurrence", "compute"),
    ("Counterfactual", "compute"),
    // Fleet serving: the evict→snapshot→warm twin guarantee enters
    // through the tenant-routed tick paths and the snapshot round-trip.
    ("Fleet", "ingest"),
    ("Fleet", "drain"),
    ("Fleet", "diagnose"),
    ("TenantSnapshot", "to_bytes"),
    ("TenantSnapshot", "from_bytes"),
];

/// One class of nondeterminism sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkClass {
    /// `HashMap`/`HashSet` iteration (`RandomState` order varies per run).
    HashIteration,
    /// Explicit `RandomState` construction.
    RandomState,
    /// `Instant::now` / `SystemTime::now` wall-clock reads.
    WallClock,
    /// `thread::current()` identity (`.id()`, `.name()`).
    ThreadId,
    /// Pointer-to-integer casts (address-dependent keys/sort inputs).
    PtrAsInt,
    /// `env::var` reads (host-dependent behavior).
    EnvRead,
    /// Float accumulation in a thread-spawning function (unordered
    /// parallel reduction — float addition does not commute in rounding).
    ParallelFloatReduction,
}

impl SinkClass {
    /// Short description for messages.
    pub fn describe(self) -> &'static str {
        match self {
            SinkClass::HashIteration => "HashMap/HashSet iteration order varies per process",
            SinkClass::RandomState => "RandomState is seeded per process",
            SinkClass::WallClock => "wall-clock read",
            SinkClass::ThreadId => "thread identity varies per run",
            SinkClass::PtrAsInt => "pointer-to-integer cast is address-dependent",
            SinkClass::EnvRead => "environment read is host-dependent",
            SinkClass::ParallelFloatReduction => {
                "float accumulation in a spawning function — unordered parallel \
                 reduction rounds differently per schedule"
            }
        }
    }
}

/// A sink found in a function body.
struct SinkSite {
    class: SinkClass,
    token: String,
    line: u32,
}

/// See module docs.
pub struct DeterminismTaint;

impl Rule for DeterminismTaint {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "no nondeterminism sink (hash iteration, clocks, thread ids, ptr casts, env, \
         unordered float reduction) reachable from a determinism root"
    }

    fn check(&self, file: &SourceFile, ws: &Workspace, out: &mut Vec<Violation>) {
        let graph = graph_for(file, ws);
        // Root drift fails loudly — reported once, against the file that
        // declares the root list (this rule's own source).
        if file.rel == "crates/analysis/src/rules/determinism.rs" {
            for (owner, name) in ROOT_FUNCTIONS {
                if graph.find(Some(owner), name).is_empty() {
                    out.push(Violation::new(
                        self.id(),
                        file.rel.clone(),
                        1,
                        format!(
                            "determinism root `{owner}::{name}` matches no function in the \
                             workspace — ROOT_FUNCTIONS has drifted from the engine API"
                        ),
                    ));
                }
            }
        }

        let mut roots = Vec::new();
        for (owner, name) in ROOT_FUNCTIONS {
            roots.extend(graph.find(Some(owner), name));
        }
        if roots.is_empty() {
            return;
        }
        let parents = graph.reach(&roots, EdgeFilter::All);
        let hash_names = hash_typed_names(file);

        for &node_idx in parents.keys() {
            let node = &graph.nodes[node_idx];
            if node.file != file.rel {
                continue;
            }
            for sink in sinks_in(file, &graph, node_idx, node, &hash_names) {
                let chain = graph.chain(&parents, node_idx);
                let root = chain
                    .first()
                    .map(|h| h.function.clone())
                    .unwrap_or_default();
                out.push(Violation {
                    rule: self.id(),
                    path: file.rel.clone(),
                    line: sink.line,
                    message: format!(
                        "`{}` in `{}` — {}; reachable from determinism root `{}` \
                         ({} hop{}). Fix it or escape with \
                         `// lint: allow(determinism, <reason>)`",
                        sink.token,
                        node.qualified_name(),
                        sink.class.describe(),
                        root,
                        chain.len() - 1,
                        if chain.len() == 2 { "" } else { "s" },
                    ),
                    chain,
                });
            }
        }
    }
}

/// Identifiers in `file` whose declaration (let binding, struct field, or
/// parameter) mentions `HashMap`/`HashSet` — the receivers whose iteration
/// is order-nondeterministic.
fn hash_typed_names(file: &SourceFile) -> Vec<String> {
    let toks = &file.lex.tokens;
    let mut out: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet")) {
            continue;
        }
        // Walk back to the nearest `:` (type ascription — field, param,
        // or typed let) or `=` (inferred let), then take the ident before
        // it. `use std::collections::HashMap` never matches: the walk
        // stops at `;`/`{`/`(` first... it stops at `::`'s second colon —
        // guarded by requiring an ident immediately before the `:`.
        let mut j = i;
        let mut found = None;
        while j > 0 && i - j < 40 {
            j -= 1;
            let t = &toks[j];
            if t.is_punct(';')
                || t.is_punct('{')
                || t.is_punct('}')
                || t.is_punct('(')
                || t.is_punct(')')
            {
                // Statement/item boundary — and crucially the param-list
                // `)` before a `-> ... HashMap<...>` return type, which
                // must not tag the last parameter as hash-typed.
                break;
            }
            if (t.is_punct(':') || t.is_punct('='))
                && j >= 1
                && toks[j - 1].kind == TokKind::Ident
                && !(t.is_punct(':') && j >= 2 && toks[j - 2].is_punct(':'))
                && !toks[j - 1].is_ident("use")
            {
                found = Some(toks[j - 1].text.clone());
                break;
            }
        }
        if let Some(name) = found {
            if !out.contains(&name) {
                out.push(name);
            }
        }
    }
    out
}

/// Iteration methods that are nondeterministic on hash collections.
const HASH_ITER_METHODS: &[&str] = &[
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "iter",
    "iter_mut",
    "keys",
    "retain",
    "values",
    "values_mut",
];

/// Scans the body of `node` for nondeterminism sinks. Tokens belonging to
/// *other* (nested) nodes are skipped — a helper fn defined inside a
/// reachable fn reports its own sinks only if it is itself reachable.
fn sinks_in(
    file: &SourceFile,
    graph: &CallGraph,
    node_idx: usize,
    node: &FnNode,
    hash_names: &[String],
) -> Vec<SinkSite> {
    let toks = &file.lex.tokens;
    let (start, end) = node.body;
    let end = end.min(toks.len().saturating_sub(1));
    let nested: Vec<(usize, usize)> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|&(i, n)| {
            i != node_idx && n.file == node.file && n.body.0 > start && n.body.1 <= end
        })
        .map(|(_, n)| n.body)
        .collect();
    let has_spawn = (start..=end).any(|i| toks[i].is_ident("spawn") || toks[i].is_ident("scope"));

    let mut out = Vec::new();
    let mut i = start;
    while i <= end {
        if let Some(&(_, nest_end)) = nested.iter().find(|&&(s, e)| i >= s && i <= e) {
            i = nest_end + 1;
            continue;
        }
        let t = &toks[i];
        // Wall clock: `Instant::now`, `SystemTime::now`.
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && toks.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && toks.get(i + 3).is_some_and(|x| x.is_ident("now"))
        {
            out.push(SinkSite {
                class: SinkClass::WallClock,
                token: format!("{}::now", t.text),
                line: t.line,
            });
        }
        // RandomState.
        if t.is_ident("RandomState") {
            out.push(SinkSite {
                class: SinkClass::RandomState,
                token: "RandomState".into(),
                line: t.line,
            });
        }
        // Thread identity: `thread::current()`.
        if t.is_ident("thread")
            && toks.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && toks.get(i + 3).is_some_and(|x| x.is_ident("current"))
        {
            out.push(SinkSite {
                class: SinkClass::ThreadId,
                token: "thread::current".into(),
                line: t.line,
            });
        }
        // Environment reads: `env::var`, `env::var_os`, `env::vars`.
        if t.is_ident("env")
            && toks.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && toks
                .get(i + 3)
                .is_some_and(|x| x.is_ident("var") || x.is_ident("var_os") || x.is_ident("vars"))
        {
            out.push(SinkSite {
                class: SinkClass::EnvRead,
                token: format!("env::{}", toks[i + 3].text),
                line: t.line,
            });
        }
        // Pointer-to-integer casts: `.as_ptr() as usize` and
        // `as *const T as usize` forms.
        if t.is_ident("as_ptr") || t.is_ident("as_mut_ptr") {
            if let Some(cast_line) = ptr_cast_ahead(toks, i, end) {
                out.push(SinkSite {
                    class: SinkClass::PtrAsInt,
                    token: format!("{} as <int>", t.text),
                    line: cast_line,
                });
            }
        }
        if t.is_ident("as")
            && toks.get(i + 1).is_some_and(|x| x.is_punct('*'))
            && toks
                .get(i + 2)
                .is_some_and(|x| x.is_ident("const") || x.is_ident("mut"))
        {
            if let Some(cast_line) = ptr_cast_ahead(toks, i + 2, end) {
                out.push(SinkSite {
                    class: SinkClass::PtrAsInt,
                    token: "as *_ as <int>".into(),
                    line: cast_line,
                });
            }
        }
        // Hash iteration: `recv.<iter-method>(` where the receiver chain
        // names a hash-typed binding/field, or a `for` loop over one.
        if i >= 1
            && toks[i - 1].is_punct('.')
            && t.kind == TokKind::Ident
            && HASH_ITER_METHODS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|x| x.is_punct('('))
        {
            let chain = non_call_receiver_idents(toks, i - 1);
            if chain.iter().any(|r| hash_names.iter().any(|h| h == r)) {
                out.push(SinkSite {
                    class: SinkClass::HashIteration,
                    token: format!(".{}()", t.text),
                    line: t.line,
                });
            }
        }
        if t.is_ident("for") {
            if let Some(line) = for_over_hash(toks, i, end, hash_names) {
                out.push(SinkSite {
                    class: SinkClass::HashIteration,
                    token: "for over HashMap/HashSet".into(),
                    line,
                });
            }
        }
        // Unordered parallel float reduction: `+=` on a float (or an
        // f64 `.sum()`) in a body that also spawns.
        if has_spawn
            && t.is_punct('+')
            && toks.get(i + 1).is_some_and(|x| x.is_punct('='))
            && float_context(toks, start, end)
        {
            out.push(SinkSite {
                class: SinkClass::ParallelFloatReduction,
                token: "+=".into(),
                line: t.line,
            });
        }
        i += 1;
    }
    // `for (_, v) in m.iter()` trips both the method-call and for-loop
    // detectors — keep one finding per (class, line).
    out.sort_by_key(|s| (s.line, s.class as u8));
    out.dedup_by_key(|s| (s.line, s.class as u8));
    out
}

/// Field/variable identifiers in the receiver chain ending at the `.` at
/// `dot_idx` — method names are *excluded* (a call returns a fresh value,
/// so `store.contexts().iter()` must not hash-match a field named
/// `contexts`; only `self.contexts.iter()` should).
fn non_call_receiver_idents(toks: &[Token], dot_idx: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut j = dot_idx;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(')') || t.is_punct(']') {
            // Skip the group; the ident before its opener (if any) is a
            // call/index name — skip that too.
            let close = if t.is_punct(')') { '(' } else { '[' };
            let mut depth = 1i32;
            while j > 0 && depth > 0 {
                j -= 1;
                if toks[j].is_punct(if close == '(' { ')' } else { ']' }) {
                    depth += 1;
                } else if toks[j].is_punct(close) {
                    depth -= 1;
                }
            }
            if j > 0 && toks[j - 1].kind == TokKind::Ident {
                j -= 1; // the call name — excluded from the chain
            }
        } else if t.kind == TokKind::Ident {
            out.push(t.text.clone());
        } else if t.is_punct('?') {
            continue;
        } else if !t.is_punct('.') {
            break;
        }
    }
    out
}

/// After a pointer-producing token at `i`, is there an `as <int-type>`
/// cast within the next few tokens?
fn ptr_cast_ahead(toks: &[Token], i: usize, end: usize) -> Option<u32> {
    const INT_TYPES: &[&str] = &["usize", "isize", "u64", "i64", "u32", "i32", "u128"];
    for j in i + 1..(i + 10).min(end + 1) {
        if toks[j].is_ident("as")
            && toks
                .get(j + 1)
                .is_some_and(|x| INT_TYPES.contains(&x.text.as_str()))
        {
            return Some(toks[j].line);
        }
    }
    None
}

/// For a `for` at `i`: does the iterated expression (tokens between `in`
/// and the loop body `{`) name a hash-typed ident?
fn for_over_hash(toks: &[Token], i: usize, end: usize, hash_names: &[String]) -> Option<u32> {
    let mut j = i + 1;
    // Find the `in` at pattern depth 0.
    let mut depth = 0isize;
    while j <= end {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_ident("in") {
            break;
        } else if t.is_punct('{') {
            return None; // `for` in a comment-free oddity; bail
        }
        j += 1;
    }
    let expr_start = j + 1;
    let mut k = expr_start;
    let mut depth = 0isize;
    while k <= end {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            break;
        }
        k += 1;
    }
    let stop = k.min(end + 1);
    toks[expr_start..stop]
        .iter()
        .enumerate()
        .find(|(off, t)| {
            t.kind == TokKind::Ident
                && hash_names.iter().any(|h| h == &t.text)
                // A call name is not a hash receiver — its return value is
                // fresh (`for c in store.contexts()` is fine).
                && !toks
                    .get(expr_start + off + 1)
                    .is_some_and(|n| n.is_punct('('))
        })
        .map(|(_, t)| t.line)
}

/// Whether the body declares or sums 32/64-bit floats — the accumulator
/// check for the parallel-reduction sink.
fn float_context(toks: &[Token], start: usize, end: usize) -> bool {
    (start..=end).any(|i| toks[i].is_ident("f64") || toks[i].is_ident("f32"))
}
