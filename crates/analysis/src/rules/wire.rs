//! Rule `wire-coverage`: every `EngineEvent` variant must be exercised by
//! the wire-format tests.
//!
//! The IXWIRE frame format in `crates/core/src/engine/wire.rs` is the
//! compatibility surface between the engine, the replay corpus, and the
//! history store. Its test module pins both directions (round-trip and
//! literal-JSON decode) per variant; a variant added to `EngineEvent`
//! without a matching wire test silently ships an unpinned encoding. This
//! rule fires on the file that declares the enum and demands each variant
//! identifier appear inside `wire.rs`'s `#[cfg(test)]` ranges.

use super::{Rule, Violation};
use crate::lexer::TokKind;
use crate::workspace::{SourceFile, Workspace};

/// The file that declares the event enum.
const EVENTS_RS: &str = "crates/core/src/engine/events.rs";
/// The file whose test module must cover every variant.
const WIRE_RS: &str = "crates/core/src/engine/wire.rs";

/// See module docs.
pub struct WireCoverage;

impl Rule for WireCoverage {
    fn id(&self) -> &'static str {
        "wire-coverage"
    }

    fn description(&self) -> &'static str {
        "every EngineEvent variant appears in the wire round-trip tests"
    }

    fn check(&self, file: &SourceFile, ws: &Workspace, out: &mut Vec<Violation>) {
        if file.rel != EVENTS_RS {
            return;
        }
        let Some(wire) = ws.file(WIRE_RS) else {
            out.push(Violation::new(
                self.id(),
                file.rel.clone(),
                1,
                format!("`{WIRE_RS}` is missing — the wire-coverage rule has drifted"),
            ));
            return;
        };
        let tested = |variant: &str| {
            wire.lex
                .tokens
                .iter()
                .enumerate()
                .any(|(i, t)| t.is_ident(variant) && wire.in_test(i))
        };
        for (variant, line) in variants_with_lines(file, "EngineEvent") {
            if !tested(&variant) {
                out.push(Violation::new(
                    self.id(),
                    file.rel.clone(),
                    line,
                    format!(
                        "`EngineEvent::{variant}` has no wire test — add it to the \
                         round-trip / literal-JSON tests in `{WIRE_RS}`"
                    ),
                ));
            }
        }
    }
}

/// Variant `(name, line)` pairs of the enum `name` declared in `file` —
/// like [`crate::workspace::enum_variants`] but keeping the source line so
/// findings anchor to the offending variant.
fn variants_with_lines(file: &SourceFile, name: &str) -> Vec<(String, u32)> {
    let toks = &file.lex.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("enum") && toks.get(i + 1).is_some_and(|t| t.is_ident(name))) {
            continue;
        }
        // Find the brace after the name (skipping generics), then walk
        // depth-0 idents that open a variant (followed by `,`, `{`, or
        // `(`) — mirrors `workspace::enum_variants`.
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('{') {
            j += 1;
        }
        let Some(close) = crate::callgraph::matching_braces(toks, j) else {
            break;
        };
        let mut depth = 0isize;
        let mut k = j + 1;
        while k < close {
            let t = &toks[k];
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0
                && t.kind == TokKind::Ident
                && !t.is_ident("pub")
                && toks
                    .get(k + 1)
                    .is_some_and(|n| n.is_punct(',') || n.is_punct('{') || n.is_punct('('))
            {
                out.push((t.text.clone(), t.line));
            }
            k += 1;
        }
        break;
    }
    out
}
