//! Rule `no-print-in-lib`: library code must not print.
//!
//! The engine's observable surface is the event sink and the metrics
//! registry; exporters render those on demand. A stray `println!` in
//! library code bypasses that surface, corrupts downstream pipes (the
//! bench harness parses stdout), and cannot be turned off. Binaries
//! (`src/main.rs`, `src/bin/**`) are exempt — printing is their job.

use super::{Rule, Violation};
use crate::workspace::{SourceFile, Workspace};

/// Printing macros the rule bans in library code.
const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// See module docs.
pub struct NoPrint;

impl Rule for NoPrint {
    fn id(&self) -> &'static str {
        "no-print-in-lib"
    }

    fn description(&self) -> &'static str {
        "no println!/eprintln!/dbg! outside binary roots"
    }

    fn check(&self, file: &SourceFile, _ws: &Workspace, out: &mut Vec<Violation>) {
        if file.is_bin {
            return;
        }
        let toks = &file.lex.tokens;
        for i in 0..toks.len() {
            let is_print = PRINT_MACROS.iter().any(|m| toks[i].is_ident(m))
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
            if !is_print || file.in_test(i) {
                continue;
            }
            out.push(Violation {
                rule: self.id(),
                path: file.rel.clone(),
                line: toks[i].line,
                message: format!(
                    "{}! in library code — emit an EngineEvent or write through an \
                     exporter instead",
                    toks[i].text
                ),
                chain: Vec::new(),
            });
        }
    }
}
