//! A lightweight hand-rolled Rust lexer.
//!
//! The lint pass needs exactly three things from a tokenizer: (1) never
//! mistake the inside of a string or comment for code, (2) keep comments
//! (with their line spans and text) so justification rules like
//! `// ordering:` and `// SAFETY:` can be checked, and (3) line numbers on
//! every token so findings are clickable. Full fidelity to rustc's lexer
//! (numeric suffix grammar, raw identifiers in every position, etc.) is
//! explicitly *not* a goal — the pass runs over this repository's own
//! style-consistent sources, in the spirit of the other in-repo compat
//! crates.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `Ordering`, `unwrap`, ...).
    Ident,
    /// A lifetime (`'a`) — kept distinct so char literals are never
    /// confused with borrows.
    Lifetime,
    /// A single punctuation character (`.`/`:`/`{`/`!`/...). Multi-char
    /// operators appear as consecutive punct tokens.
    Punct,
    /// Integer or float literal (one token, suffix included).
    Number,
    /// String / raw-string / byte-string literal (contents dropped).
    Str,
    /// Character or byte literal.
    Char,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token kind.
    pub kind: TokKind,
    /// The token text (single character for [`TokKind::Punct`]; literal
    /// bodies are replaced by an empty string).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One comment (line or block, doc or plain), with its original prefix
/// (`//`, `///`, `//!`, `/*`, ...) preserved in `text`.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Full comment text including the `//` / `/*` prefix.
    pub text: String,
}

/// The lexed form of one source file: code tokens and comments,
/// side by side.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// All non-comment tokens, in source order.
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

impl LexedFile {
    /// Comments whose span intersects the inclusive line range
    /// `[from, to]`.
    pub fn comments_in(&self, from: u32, to: u32) -> impl Iterator<Item = &Comment> {
        self.comments
            .iter()
            .filter(move |c| c.end_line >= from && c.line <= to)
    }
}

/// Tokenizes `source`. Never panics: malformed trailing constructs simply
/// truncate (an unterminated string swallows the rest of the file, which
/// is also what it does to the program's meaning).
pub fn lex(source: &str) -> LexedFile {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: LexedFile::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: LexedFile,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push_tok(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> LexedFile {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string();
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_lit();
                }
                'r' if self.peek(1) == Some('"')
                    || (self.peek(1) == Some('#') && self.raw_ahead()) =>
                {
                    self.raw_string()
                }
                // `br"..."` / `br#"..."#` only — a bare `r` after `b` is
                // an identifier (`break`, `branch`...), not a prefix.
                'b' if self.peek(1) == Some('r')
                    && (self.peek(2) == Some('"')
                        || (self.peek(2) == Some('#') && self.raw_ahead_from(2))) =>
                {
                    self.bump();
                    self.raw_string();
                }
                '\'' => self.lifetime_or_char(),
                c if c.is_ascii_digit() => self.number(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                _ => {
                    self.bump();
                    self.push_tok(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    /// After an `r`: does `#...` lead to a raw string (`r#"`/`r##"`)
    /// rather than a raw identifier (`r#match`)?
    fn raw_ahead(&self) -> bool {
        self.raw_ahead_from(1)
    }

    /// Same as [`Lexer::raw_ahead`] from an arbitrary offset (used for the
    /// `br#...` prefix, where the hashes start two chars ahead).
    fn raw_ahead_from(&self, start: usize) -> bool {
        let mut i = start;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            text,
        });
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push_tok(TokKind::Str, String::new(), line);
    }

    fn raw_string(&mut self) {
        let line = self.line;
        self.bump(); // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push_tok(TokKind::Str, String::new(), line);
    }

    fn char_lit(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push_tok(TokKind::Char, String::new(), line);
    }

    fn lifetime_or_char(&mut self) {
        // `'` then ident-char then NOT `'` → lifetime ('a, 'static);
        // otherwise a char literal ('x', '\n', '\u{1F600}').
        let is_lifetime = matches!(self.peek(1), Some(c) if c.is_alphabetic() || c == '_')
            && self.peek(2) != Some('\'');
        if !is_lifetime {
            self.char_lit();
            return;
        }
        let line = self.line;
        self.bump(); // '\''
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_tok(TokKind::Lifetime, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.'
                && matches!(self.peek(1), Some(d) if d.is_ascii_digit())
                && !text.contains('.')
            {
                // Fraction — but `0..n` stays three tokens (the second dot
                // check rejects `1..2`, and `.` followed by ident is a
                // method call like `1.max(2)`).
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-')
                && matches!(text.chars().last(), Some('e') | Some('E'))
                && text.contains('.')
            {
                // Float exponent sign: 1.5e-3.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_tok(TokKind::Number, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        // Raw identifier prefix r#ident.
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_tok(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_separated_from_code() {
        let src = r#"
// ordering: a justification
fn f() -> &'static str {
    let _x = "not // a comment";
    /* block /* nested */ still comment */
    "s"
}
"#;
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("ordering:"));
        assert!(lexed.comments[1].text.contains("nested"));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("fn")));
        // The string body never leaks tokens.
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("comment")));
        // 'static is a lifetime, not a char literal.
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "static"));
    }

    #[test]
    fn lines_are_tracked() {
        let src = "fn a() {}\nfn b() {}\n";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 2);
    }

    #[test]
    fn numbers_ranges_and_floats() {
        let lexed = lex("let x = 1.5e-3; for i in 0..10 { a[i.0] }");
        let nums: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["1.5e-3", "0", "10", "0"]);
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let lexed = lex(r##"let s = r#"raw " body"#; let c = '}'; fn f<'a>() {}"##);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Str)
                .count(),
            1
        );
        // `'}'` is a char literal ('a' followed by `>` is a lifetime) and
        // must not unbalance brace tracking.
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            1
        );
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        let opens = lexed.tokens.iter().filter(|t| t.is_punct('{')).count();
        let closes = lexed.tokens.iter().filter(|t| t.is_punct('}')).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn break_is_an_ident_not_a_byte_raw_string_prefix() {
        // Regression: `b` + `r` used to enter raw-string mode on the
        // keyword `break`, swallowing everything to the next `"` and
        // silently hiding the rest of the file from every rule.
        let lexed = lex("loop { break; }\nfn after() { let s = br\"x\"; let t = br#\"y\"#; }");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("break")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("after")));
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Str)
                .count(),
            2
        );
    }
}
