//! The `ix-analysis` command-line front end.
//!
//! - `ix-analysis check [--root PATH]` — run the lint pass; nonzero exit
//!   on any violation.
//! - `ix-analysis sched [--bound N]` — run the interleaving models:
//!   shipped algorithms must pass exhaustively, seeded racy variants must
//!   be caught; nonzero exit otherwise.
//! - `ix-analysis rules` — print the rule catalog, the lock-order map,
//!   and the hot-function list.

use std::path::PathBuf;
use std::process::ExitCode;

use ix_analysis::rules::{all_rules, run_all, HOT_FUNCTIONS, LOCK_ORDER};
use ix_analysis::sched::models::{
    CounterModel, CursorModel, GaugeMaxModel, MruCacheModel, ScopeGrowModel, TwoLockModel,
};
use ix_analysis::sched::{explore, Model, DEFAULT_BOUND};
use ix_analysis::workspace::Workspace;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("sched") => sched(&args[1..]),
        Some("rules") => rules(),
        _ => {
            eprintln!("usage: ix-analysis <check [--root PATH] | sched [--bound N] | rules>");
            ExitCode::from(2)
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn check(args: &[String]) -> ExitCode {
    let root = match flag_value(args, "--root") {
        Some(p) => PathBuf::from(p),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match Workspace::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "ix-analysis: no workspace root found above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let ws = match Workspace::scan(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("ix-analysis: {e}");
            return ExitCode::from(2);
        }
    };
    let violations = run_all(&ws);
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!(
            "ix-analysis check: {} files, {} rules, 0 violations",
            ws.files.len(),
            all_rules().len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "ix-analysis check: {} violation(s) in {} files",
            violations.len(),
            ws.files.len()
        );
        ExitCode::FAILURE
    }
}

/// Runs one model that must pass exhaustively. Returns failure text.
fn expect_clean<M: Model>(model: &M, bound: usize) -> Result<String, String> {
    match explore(model, bound) {
        Ok(stats) => Ok(format!(
            "pass  {:<48} {} schedules, {} steps, depth {}, bound {}",
            model.name(),
            stats.schedules,
            stats.steps,
            stats.max_depth,
            stats.bound
        )),
        Err(cex) => Err(format!("FAIL  {:<48} {cex}", model.name())),
    }
}

/// Runs one seeded-bug model that the explorer must catch.
fn expect_caught<M: Model>(model: &M, bound: usize) -> Result<String, String> {
    match explore(model, bound) {
        Err(cex) => Ok(format!("catch {:<48} {cex}", model.name())),
        Ok(_) => Err(format!(
            "FAIL  {:<48} seeded bug was NOT caught — the checker is broken",
            model.name()
        )),
    }
}

fn sched(args: &[String]) -> ExitCode {
    let bound = flag_value(args, "--bound")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_BOUND);
    let runs = [
        expect_clean(&CursorModel::new(2, 6, 2, false), bound),
        expect_caught(&CursorModel::new(2, 6, 2, true), bound),
        expect_clean(&CounterModel::new(2, 2, false), bound),
        expect_caught(&CounterModel::new(2, 2, true), bound),
        expect_clean(&GaugeMaxModel::new(&[3, 7, 5], false), bound),
        expect_caught(&GaugeMaxModel::new(&[3, 7], true), bound),
        expect_clean(&ScopeGrowModel::new(2, 42, false), bound),
        expect_caught(&ScopeGrowModel::new(2, 42, true), bound),
        expect_clean(&MruCacheModel::new(2, 7, &[10], 2, false), bound),
        expect_caught(&MruCacheModel::new(2, 7, &[], 4, true), bound),
        expect_clean(&TwoLockModel::new(false), bound.max(4)),
        expect_caught(&TwoLockModel::new(true), bound.max(4)),
    ];
    let mut failed = false;
    for run in &runs {
        match run {
            Ok(line) => println!("{line}"),
            Err(line) => {
                failed = true;
                println!("{line}");
            }
        }
    }
    if failed {
        println!("ix-analysis sched: FAILED (bound {bound})");
        ExitCode::FAILURE
    } else {
        println!(
            "ix-analysis sched: {} models ok at preemption bound {bound}",
            runs.len()
        );
        ExitCode::SUCCESS
    }
}

fn rules() -> ExitCode {
    println!("lint rules:");
    for rule in all_rules() {
        println!("  {:<26} {}", rule.id(), rule.description());
    }
    println!("\nlock-acquisition order (outermost first):");
    for class in LOCK_ORDER {
        println!(
            "  rank {}  {:<12} {:<8} on {:<16} — {}",
            class.rank, class.field, class.kind, class.holder, class.why
        );
    }
    println!("\nhot (allocation/clock-free) functions:");
    for (file, name) in HOT_FUNCTIONS {
        println!("  {file}::{name}");
    }
    ExitCode::SUCCESS
}
