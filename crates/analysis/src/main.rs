//! The `ix-analysis` command-line front end.
//!
//! - `ix-analysis check [--root PATH] [--json] [--out FILE]` — run the
//!   lint pass; nonzero exit on any violation. `--json` prints findings
//!   (including root→sink call chains) as machine-readable JSON; `--out`
//!   additionally writes that JSON to a file (for CI artifacts).
//! - `ix-analysis explain <rule@path:line> [--root PATH]` — re-run the
//!   pass and print one finding in full, with its call chain one hop per
//!   line.
//! - `ix-analysis sched [--bound N]` — run the interleaving models:
//!   shipped algorithms must pass exhaustively, seeded racy variants must
//!   be caught; nonzero exit otherwise.
//! - `ix-analysis rules` — print the rule catalog, the lock-order map,
//!   the hot-function list, the determinism roots, and the sink taxonomy.

use std::path::PathBuf;
use std::process::ExitCode;

use ix_analysis::rules::{
    all_rules, run_all, Violation, HOT_FUNCTIONS, LOCK_ORDER, ROOT_FUNCTIONS,
};
use ix_analysis::sched::models::{
    CounterModel, CursorModel, GaugeMaxModel, MruCacheModel, ScopeGrowModel, TwoLockModel,
};
use ix_analysis::sched::{explore, Model, DEFAULT_BOUND};
use ix_analysis::workspace::Workspace;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("explain") => explain(&args[1..]),
        Some("sched") => sched(&args[1..]),
        Some("rules") => rules(),
        _ => {
            eprintln!(
                "usage: ix-analysis <check [--root PATH] [--json] [--out FILE] | \
                 explain <rule@path:line> [--root PATH] | sched [--bound N] | rules>"
            );
            ExitCode::from(2)
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Resolves the workspace root from `--root` or by walking up from the
/// current directory, then scans it.
fn scan_workspace(args: &[String]) -> Result<Workspace, ExitCode> {
    let root = match flag_value(args, "--root") {
        Some(p) => PathBuf::from(p),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match Workspace::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "ix-analysis: no workspace root found above {}",
                        cwd.display()
                    );
                    return Err(ExitCode::from(2));
                }
            }
        }
    };
    Workspace::scan(&root).map_err(|e| {
        eprintln!("ix-analysis: {e}");
        ExitCode::from(2)
    })
}

fn check(args: &[String]) -> ExitCode {
    let ws = match scan_workspace(args) {
        Ok(ws) => ws,
        Err(code) => return code,
    };
    let violations = run_all(&ws);
    let json = args.iter().any(|a| a == "--json");
    let out_path = flag_value(args, "--out");
    if json || out_path.is_some() {
        let rendered = findings_json(&ws, &violations);
        if json {
            println!("{rendered}");
        }
        if let Some(path) = out_path {
            if let Err(e) = std::fs::write(&path, &rendered) {
                eprintln!("ix-analysis: write {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if !json {
        for v in &violations {
            println!("{v}");
        }
    }
    if violations.is_empty() {
        if !json {
            println!(
                "ix-analysis check: {} files, {} rules, 0 violations",
                ws.files.len(),
                all_rules().len()
            );
        }
        ExitCode::SUCCESS
    } else {
        if !json {
            println!(
                "ix-analysis check: {} violation(s) in {} files",
                violations.len(),
                ws.files.len()
            );
        }
        ExitCode::FAILURE
    }
}

/// Minimal JSON string escape (the only strings we emit are paths, fn
/// names, and rule messages).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the findings report as JSON (hand-rolled — `ix-analysis` takes
/// no serialization dependency).
fn findings_json(ws: &Workspace, violations: &[Violation]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"files\": {},\n", ws.files.len()));
    out.push_str(&format!("  \"rules\": {},\n", all_rules().len()));
    out.push_str(&format!("  \"violations\": {},\n", violations.len()));
    out.push_str("  \"findings\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"id\": {}, ", json_str(&v.id())));
        out.push_str(&format!("\"rule\": {}, ", json_str(v.rule)));
        out.push_str(&format!("\"path\": {}, ", json_str(&v.path)));
        out.push_str(&format!("\"line\": {}, ", v.line));
        out.push_str(&format!("\"message\": {}, ", json_str(&v.message)));
        out.push_str("\"chain\": [");
        for (j, hop) in v.chain.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"function\": {}, \"path\": {}, \"line\": {}, \"via_line\": {}}}",
                json_str(&hop.function),
                json_str(&hop.path),
                hop.line,
                hop.via_line
            ));
        }
        out.push_str("]}");
    }
    if !violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn explain(args: &[String]) -> ExitCode {
    let Some(id) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: ix-analysis explain <rule@path:line> [--root PATH]");
        return ExitCode::from(2);
    };
    let ws = match scan_workspace(args) {
        Ok(ws) => ws,
        Err(code) => return code,
    };
    let violations = run_all(&ws);
    let Some(v) = violations.iter().find(|v| &v.id() == id) else {
        eprintln!(
            "ix-analysis: no finding `{id}` ({} finding(s) total — run `check` to list them)",
            violations.len()
        );
        return ExitCode::FAILURE;
    };
    println!("{}", v.id());
    println!("  rule:    {}", v.rule);
    println!("  site:    {}:{}", v.path, v.line);
    println!("  message: {}", v.message);
    if !v.chain.is_empty() {
        println!("  chain (root first):");
        for hop in &v.chain {
            if hop.via_line == 0 {
                println!("    {} ({}:{})", hop.function, hop.path, hop.line);
            } else {
                println!(
                    "    -> {} ({}:{}) called at line {}",
                    hop.function, hop.path, hop.line, hop.via_line
                );
            }
        }
    }
    ExitCode::SUCCESS
}

/// Runs one model that must pass exhaustively. Returns failure text.
fn expect_clean<M: Model>(model: &M, bound: usize) -> Result<String, String> {
    match explore(model, bound) {
        Ok(stats) => Ok(format!(
            "pass  {:<48} {} schedules, {} steps, depth {}, bound {}",
            model.name(),
            stats.schedules,
            stats.steps,
            stats.max_depth,
            stats.bound
        )),
        Err(cex) => Err(format!("FAIL  {:<48} {cex}", model.name())),
    }
}

/// Runs one seeded-bug model that the explorer must catch.
fn expect_caught<M: Model>(model: &M, bound: usize) -> Result<String, String> {
    match explore(model, bound) {
        Err(cex) => Ok(format!("catch {:<48} {cex}", model.name())),
        Ok(_) => Err(format!(
            "FAIL  {:<48} seeded bug was NOT caught — the checker is broken",
            model.name()
        )),
    }
}

fn sched(args: &[String]) -> ExitCode {
    let bound = flag_value(args, "--bound")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_BOUND);
    let runs = [
        expect_clean(&CursorModel::new(2, 6, 2, false), bound),
        expect_caught(&CursorModel::new(2, 6, 2, true), bound),
        expect_clean(&CounterModel::new(2, 2, false), bound),
        expect_caught(&CounterModel::new(2, 2, true), bound),
        expect_clean(&GaugeMaxModel::new(&[3, 7, 5], false), bound),
        expect_caught(&GaugeMaxModel::new(&[3, 7], true), bound),
        expect_clean(&ScopeGrowModel::new(2, 42, false), bound),
        expect_caught(&ScopeGrowModel::new(2, 42, true), bound),
        expect_clean(&MruCacheModel::new(2, 7, &[10], 2, false), bound),
        expect_caught(&MruCacheModel::new(2, 7, &[], 4, true), bound),
        expect_clean(&TwoLockModel::new(false), bound.max(4)),
        expect_caught(&TwoLockModel::new(true), bound.max(4)),
    ];
    let mut failed = false;
    for run in &runs {
        match run {
            Ok(line) => println!("{line}"),
            Err(line) => {
                failed = true;
                println!("{line}");
            }
        }
    }
    if failed {
        println!("ix-analysis sched: FAILED (bound {bound})");
        ExitCode::FAILURE
    } else {
        println!(
            "ix-analysis sched: {} models ok at preemption bound {bound}",
            runs.len()
        );
        ExitCode::SUCCESS
    }
}

fn rules() -> ExitCode {
    println!("lint rules:");
    for rule in all_rules() {
        println!("  {:<26} {}", rule.id(), rule.description());
    }
    println!("\nlock-acquisition order (outermost first):");
    for class in LOCK_ORDER {
        println!(
            "  rank {}  {:<12} {:<8} on {:<16} — {}",
            class.rank, class.field, class.kind, class.holder, class.why
        );
    }
    println!("\nhot (allocation/clock-free) functions:");
    for (file, name) in HOT_FUNCTIONS {
        println!("  {file}::{name}");
    }
    println!("\ndeterminism roots (taint sources for the `determinism` rule):");
    for (owner, name) in ROOT_FUNCTIONS {
        println!("  {owner}::{name}");
    }
    println!("\ndeterminism sink taxonomy:");
    println!("  hash-iteration   HashMap/HashSet iteration order varies per process");
    println!("  random-state     RandomState is seeded per process");
    println!("  wall-clock       Instant::now / SystemTime::now");
    println!("  thread-id        thread::current() identity");
    println!("  ptr-as-int       pointer-to-integer casts (address-dependent)");
    println!("  env-read         env::var / env::vars (host-dependent)");
    println!("  par-float        float accumulation in a spawning function");
    ExitCode::SUCCESS
}
