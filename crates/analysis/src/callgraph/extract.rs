//! Token-level extraction for the call graph: `impl` block ownership,
//! named closures, and call sites, all from one lexed [`SourceFile`].
//!
//! Everything here is a *heuristic* over the hand-rolled lexer's token
//! stream — the same trade the lint rules make. The extraction is tuned to
//! this repository's style (see `DESIGN.md` §9 for the known
//! over/under-approximations).

use crate::lexer::Token;
use crate::workspace::SourceFile;

/// One `impl` block: the type it targets, the trait (for `impl T for U`),
/// and the token range of its body.
#[derive(Debug)]
pub(crate) struct ImplSpan {
    /// Last path segment of the implemented type (`Engine`, `SweepPool`).
    pub owner: String,
    /// Last path segment of the trait, for `impl Trait for Type`.
    pub trait_name: Option<String>,
    /// Inclusive token range of the block body (the braces).
    pub body: (usize, usize),
}

/// A closure bound to a name: `let work = move |x| ...;`.
#[derive(Debug)]
pub(crate) struct ClosureSpan {
    /// The binding's name.
    pub name: String,
    /// 1-based line of the `let`.
    pub line: u32,
    /// Token index of the binding ident.
    pub name_tok: usize,
    /// Inclusive token range of the closure body.
    pub body: (usize, usize),
}

/// One call site, pre-resolution.
#[derive(Debug)]
pub(crate) struct CallSite {
    /// The called name (`ingest`, `score_pair`, ...).
    pub name: String,
    /// Qualifier for `Path::name(...)` forms (`Engine`, `Self`, a module).
    pub qualifier: Option<String>,
    /// Whether this is a `.name(...)` method call.
    pub is_method: bool,
    /// Receiver-chain idents for method calls (`self.pool.run()` →
    /// `["self", "pool"]`), innermost-last.
    pub receiver: Vec<String>,
    /// Token index of the called name.
    pub tok: usize,
    /// 1-based line of the call.
    pub line: u32,
}

/// Index of the closer matching the opener at `open_idx`.
pub(crate) fn matching(toks: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Skips a generic-argument group starting at the `<` at `i`; returns the
/// index one past the matching `>`. Understands `->` so function-trait
/// bounds (`impl<F: Fn(usize) -> f64>`) do not unbalance the count.
pub(crate) fn skip_angles_at(toks: &[Token], i: usize) -> usize {
    skip_angles(toks, i)
}

fn skip_angles(toks: &[Token], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && (j == 0 || !toks[j - 1].is_punct('-')) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        } else if t.is_punct('{') || t.is_punct(';') {
            return j; // malformed header; bail without consuming the body
        }
        j += 1;
    }
    j
}

/// Every `impl` block in the file, with its owner type resolved to the
/// last path segment.
pub(crate) fn impl_spans(file: &SourceFile) -> Vec<ImplSpan> {
    let toks = &file.lex.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            j = skip_angles(toks, j);
        }
        // Read up to two paths separated by `for`, stopping at the body.
        let mut first_path_last: Option<String> = None;
        let mut second_path_last: Option<String> = None;
        let mut after_for = false;
        let mut body_open = None;
        while let Some(t) = toks.get(j) {
            if t.is_punct('{') {
                body_open = Some(j);
                break;
            }
            if t.is_punct(';') {
                break;
            }
            if t.is_ident("for") {
                after_for = true;
            } else if t.is_ident("where") {
                // The body follows the where clause; keep scanning for `{`.
            } else if t.is_punct('<') {
                j = skip_angles(toks, j);
                continue;
            } else if t.kind == crate::lexer::TokKind::Ident
                && !t.is_ident("dyn")
                && !t.is_ident("mut")
                && !t.is_ident("const")
            {
                if after_for {
                    second_path_last = Some(t.text.clone());
                } else {
                    first_path_last = Some(t.text.clone());
                }
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i = j + 1;
            continue;
        };
        let close = matching(toks, open, '{', '}').unwrap_or(toks.len() - 1);
        let (owner, trait_name) = if after_for {
            (second_path_last, first_path_last)
        } else {
            (first_path_last, None)
        };
        if let Some(owner) = owner {
            out.push(ImplSpan {
                owner,
                trait_name,
                body: (open, close),
            });
        }
        i = open + 1; // impls nest (fns inside), so don't skip the body
    }
    out
}

/// Closures bound to names with `let name = [move] |args| body`.
pub(crate) fn closure_spans(file: &SourceFile) -> Vec<ClosureSpan> {
    let toks = &file.lex.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = toks.get(j) else {
            continue;
        };
        if name_tok.kind != crate::lexer::TokKind::Ident {
            continue;
        }
        let name_idx = j;
        j += 1;
        // Optional `: Type` ascription before the `=`.
        if toks.get(j).is_some_and(|t| t.is_punct(':')) {
            while let Some(t) = toks.get(j) {
                if t.is_punct('=') || t.is_punct(';') {
                    break;
                }
                if t.is_punct('<') {
                    j = skip_angles(toks, j);
                    continue;
                }
                j += 1;
            }
        }
        if !toks.get(j).is_some_and(|t| t.is_punct('=')) {
            continue;
        }
        j += 1;
        if toks.get(j).is_some_and(|t| t.is_ident("move")) {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.is_punct('|')) {
            continue;
        }
        // Find the params-closing `|`: `||` is an empty parameter list.
        let params_open = j;
        let params_close = if toks.get(j + 1).is_some_and(|t| t.is_punct('|')) {
            j + 1
        } else {
            let mut k = j + 1;
            let mut found = None;
            while let Some(t) = toks.get(k) {
                if t.is_punct('(') || t.is_punct('[') {
                    let close = if t.is_punct('(') { ')' } else { ']' };
                    let open = if t.is_punct('(') { '(' } else { '[' };
                    match matching(toks, k, open, close) {
                        Some(e) => k = e + 1,
                        None => break,
                    }
                    continue;
                }
                if t.is_punct('|') {
                    found = Some(k);
                    break;
                }
                if t.is_punct(';') {
                    break;
                }
                k += 1;
            }
            match found {
                Some(k) => k,
                None => continue,
            }
        };
        // Body: skip an optional `-> Type`, then a block or an expression
        // running to the statement's `;` at depth 0.
        let mut b = params_close + 1;
        if toks.get(b).is_some_and(|t| t.is_punct('-'))
            && toks.get(b + 1).is_some_and(|t| t.is_punct('>'))
        {
            b += 2;
            while let Some(t) = toks.get(b) {
                if t.is_punct('{') || t.is_punct(';') {
                    break;
                }
                if t.is_punct('<') {
                    b = skip_angles(toks, b);
                    continue;
                }
                b += 1;
            }
        }
        let body = if toks.get(b).is_some_and(|t| t.is_punct('{')) {
            let Some(close) = matching(toks, b, '{', '}') else {
                continue;
            };
            (b, close)
        } else {
            let mut k = b;
            let mut depth = 0isize;
            let mut end = None;
            while let Some(t) = toks.get(k) {
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    if depth == 0 {
                        end = Some(k.saturating_sub(1));
                        break;
                    }
                    depth -= 1;
                } else if t.is_punct(';') && depth == 0 {
                    end = Some(k.saturating_sub(1));
                    break;
                }
                k += 1;
            }
            match end {
                Some(e) if e >= b => (b, e),
                _ => continue,
            }
        };
        let _ = params_open;
        out.push(ClosureSpan {
            name: name_tok.text.clone(),
            line: toks[i].line,
            name_tok: name_idx,
            body,
        });
    }
    out
}

/// Rust keywords and control forms that look like calls (`if (..)`) or are
/// ubiquitous non-workspace constructors (`Some(..)`).
const NON_CALLS: &[&str] = &[
    "if",
    "while",
    "for",
    "match",
    "loop",
    "return",
    "fn",
    "let",
    "move",
    "in",
    "as",
    "else",
    "Some",
    "None",
    "Ok",
    "Err",
    "Box",
    "Vec",
    "String",
    "assert",
    "debug_assert",
];

/// Every call site in the file: bare calls, qualified calls, method calls,
/// and qualified function references (`map(Self::helper)`).
pub(crate) fn call_sites(file: &SourceFile) -> Vec<CallSite> {
    let toks = &file.lex.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != crate::lexer::TokKind::Ident {
            continue;
        }
        // Method call: `.name(`.
        if i >= 1 && toks[i - 1].is_punct('.') {
            if toks.get(i + 1).is_some_and(|x| x.is_punct('(')) {
                out.push(CallSite {
                    name: t.text.clone(),
                    qualifier: None,
                    is_method: true,
                    receiver: receiver_chain(toks, i - 1),
                    tok: i,
                    line: t.line,
                });
            }
            continue;
        }
        // Part of a path: `a::name` — only the *last* segment is the call.
        let qualified = i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
        let followed_by_path = toks.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && toks.get(i + 2).is_some_and(|x| x.is_punct(':'));
        if followed_by_path {
            continue; // a qualifier segment, not the called name
        }
        let is_call = toks.get(i + 1).is_some_and(|x| x.is_punct('('));
        if qualified {
            // `Qual::name(...)` call, or `Qual::name` function reference
            // (passed to combinators like `unwrap_or_else`). Both create
            // an edge; macro paths (`::name!`) are skipped below.
            if toks.get(i + 1).is_some_and(|x| x.is_punct('!')) {
                continue;
            }
            let qualifier = (i >= 3 && toks[i - 3].kind == crate::lexer::TokKind::Ident)
                .then(|| toks[i - 3].text.clone());
            if NON_CALLS.contains(&t.text.as_str()) {
                continue;
            }
            out.push(CallSite {
                name: t.text.clone(),
                qualifier,
                is_method: false,
                receiver: Vec::new(),
                tok: i,
                line: t.line,
            });
            continue;
        }
        if !is_call {
            continue;
        }
        // Bare call `name(` — not a definition, macro, or keyword form.
        if NON_CALLS.contains(&t.text.as_str()) {
            continue;
        }
        if i >= 1 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_punct('#')) {
            continue;
        }
        out.push(CallSite {
            name: t.text.clone(),
            qualifier: None,
            is_method: false,
            receiver: Vec::new(),
            tok: i,
            line: t.line,
        });
    }
    out
}

/// Walks backwards from the `.` of a method call, collecting the chain of
/// receiver idents (`self.state.shards.iter()` → `["self", "state",
/// "shards"]`). Skips over closed `(...)`/`[...]` groups and `?`.
pub(crate) fn receiver_chain(toks: &[Token], dot_idx: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut k = dot_idx;
    loop {
        // k is at a `.`; the element before it is an ident, a closed
        // group, or the end of the chain.
        if k == 0 {
            break;
        }
        let mut j = k - 1;
        // Skip `?` and closed groups backwards.
        loop {
            if toks[j].is_punct('?') && j > 0 {
                j -= 1;
                continue;
            }
            if toks[j].is_punct(')') || toks[j].is_punct(']') {
                let (open, close) = if toks[j].is_punct(')') {
                    ('(', ')')
                } else {
                    ('[', ']')
                };
                let mut depth = 0isize;
                let mut m = j;
                loop {
                    if toks[m].is_punct(close) {
                        depth += 1;
                    } else if toks[m].is_punct(open) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if m == 0 {
                        return chain;
                    }
                    m -= 1;
                }
                if m == 0 {
                    return chain;
                }
                j = m - 1;
                continue;
            }
            break;
        }
        if toks[j].kind == crate::lexer::TokKind::Ident {
            chain.push(toks[j].text.clone());
            if j >= 1 && toks[j - 1].is_punct('.') {
                k = j - 1;
                continue;
            }
        }
        break;
    }
    chain.reverse();
    chain
}
