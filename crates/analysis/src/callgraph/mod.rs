//! Whole-workspace call graph over the lexed sources.
//!
//! Nodes are every `fn` item (free functions, impl methods, trait
//! signatures) plus closures bound to names. Edges are resolved from call
//! sites by a *conservative name + receiver heuristic*:
//!
//! - `Qual::name(..)` and `Qual::name` references resolve to methods of
//!   the type `Qual` (with `Self` mapped to the enclosing impl), falling
//!   back to free functions of that name (module-qualified calls);
//! - bare `name(..)` resolves to same-file closures and free functions
//!   first, then to free functions anywhere in the workspace;
//! - `.name(..)` method calls resolve to *every* workspace method of that
//!   name (trait dispatch is approximated by fan-out to all impls), unless
//!   the receiver is literally `self` and the enclosing impl defines the
//!   method, in which case the edge is exact. Method names that collide
//!   with ubiquitous `std` methods ([`STD_METHODS`]) are never resolved —
//!   they would connect everything to everything.
//! - a closure bound to a name gets a *definition edge* from its enclosing
//!   function (creation is treated as potential invocation), plus call
//!   edges from `name(..)` sites in scope.
//!
//! Edges carry a `confident` flag: qualified calls, bare calls,
//! `self.`-method calls and closure definition edges are high-confidence;
//! general method calls (dynamic dispatch fan-out) are not. Reachability
//! can close over either set — the determinism taint pass uses all edges
//! (over-approximate, sound-leaning), the purity pass only confident ones
//! (dyn-dispatch boundaries are contract-checked separately).
//!
//! Cycles are handled by plain BFS bookkeeping; the graph is a DAG plus
//! back-edges and reachability never loops.

mod extract;

use std::collections::BTreeMap;

use crate::lexer::Token;
use crate::workspace::SourceFile;
use extract::{call_sites, closure_spans, impl_spans};

/// Index of the `}` matching the `{` at `open_idx` (brace-aware scan).
pub(crate) fn matching_braces(toks: &[Token], open_idx: usize) -> Option<usize> {
    extract::matching(toks, open_idx, '{', '}')
}

/// Ubiquitous `std`/`core` method names that are never resolved to
/// workspace methods of the same name: the fan-out would connect
/// everything to everything and drown real paths.
pub const STD_METHODS: &[&str] = &[
    "abs",
    "and_then",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "clamp",
    "clone",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "default",
    "entry",
    "eq",
    "expect",
    "extend",
    "filter",
    "flat_map",
    "flatten",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "len",
    "lock",
    "map",
    "max",
    "min",
    "next",
    "or_else",
    "partial_cmp",
    "pop",
    "push",
    "read",
    "recv",
    "remove",
    "rev",
    "send",
    "sort",
    "sort_by",
    "sort_unstable",
    "sum",
    "take",
    "to_owned",
    "to_string",
    "try_into",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "write",
    "zip",
];

/// What kind of node a [`FnNode`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FnKind {
    /// A `fn` item (free function, method, or trait signature).
    Item,
    /// A closure bound to a name with `let`.
    Closure,
}

/// One call-graph node.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// The function or closure-binding name.
    pub name: String,
    /// Impl type the method belongs to (`None` for free fns/closures).
    pub owner: Option<String>,
    /// Trait name for methods inside `impl Trait for Type` blocks.
    pub trait_name: Option<String>,
    /// Whether the parameter list starts with a `self` receiver.
    pub has_self: bool,
    /// Item or closure.
    pub kind: FnKind,
    /// 1-based line of the definition.
    pub line: u32,
    /// Token index of the `fn` keyword / closure binding ident.
    pub def_tok: usize,
    /// Inclusive token range of the body.
    pub body: (usize, usize),
}

impl FnNode {
    /// `Owner::name` or bare `name`, for display.
    pub fn qualified_name(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One resolved edge: caller → `callee`, created at `line` in the caller.
#[derive(Debug, Clone, Copy)]
pub struct CallEdge {
    /// Index of the callee node.
    pub callee: usize,
    /// 1-based line of the call site (in the caller's file).
    pub line: u32,
    /// High-confidence edge (qualified / bare / `self.` / closure-def)
    /// versus dyn-dispatch fan-out.
    pub confident: bool,
}

/// Which edges a reachability query closes over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeFilter {
    /// Every edge, including dyn-dispatch fan-out (over-approximate).
    All,
    /// Only high-confidence edges.
    Confident,
}

/// One hop of a root→sink chain, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainHop {
    /// Qualified function name (`Engine::ingest`).
    pub function: String,
    /// Workspace-relative path of the function's definition.
    pub path: String,
    /// 1-based line of the function's definition.
    pub line: u32,
    /// Call-site line *in the previous hop's file* (0 for the root hop).
    pub via_line: u32,
}

/// The workspace call graph.
#[derive(Debug, Default, Clone)]
pub struct CallGraph {
    /// All nodes, grouped by file in scan order.
    pub nodes: Vec<FnNode>,
    /// Adjacency: `edges[i]` are the calls made by node `i`.
    pub edges: Vec<Vec<CallEdge>>,
}

impl CallGraph {
    /// Builds the graph over `files`. Test items (`#[cfg(test)]` ranges)
    /// contribute neither nodes nor edges.
    pub fn build<'a>(files: impl IntoIterator<Item = &'a SourceFile>) -> CallGraph {
        let files: Vec<&SourceFile> = files.into_iter().collect();
        let mut nodes: Vec<FnNode> = Vec::new();
        // Per file: indices of this file's nodes, for same-file resolution.
        let mut file_nodes: Vec<Vec<usize>> = Vec::with_capacity(files.len());

        for file in &files {
            let impls = impl_spans(file);
            let mut here = Vec::new();
            for f in &file.fns {
                if file.in_test(f.fn_tok) {
                    continue;
                }
                let imp = impls
                    .iter()
                    .filter(|s| f.fn_tok >= s.body.0 && f.fn_tok <= s.body.1)
                    .min_by_key(|s| s.body.1 - s.body.0);
                here.push(nodes.len());
                nodes.push(FnNode {
                    file: file.rel.clone(),
                    name: f.name.clone(),
                    owner: imp.map(|s| s.owner.clone()),
                    trait_name: imp.and_then(|s| s.trait_name.clone()),
                    has_self: fn_has_self(file, f.fn_tok),
                    kind: FnKind::Item,
                    line: f.line,
                    def_tok: f.fn_tok,
                    body: (f.body_open, f.body_close),
                });
            }
            for c in closure_spans(file) {
                if file.in_test(c.name_tok) {
                    continue;
                }
                here.push(nodes.len());
                nodes.push(FnNode {
                    file: file.rel.clone(),
                    name: c.name.clone(),
                    owner: None,
                    trait_name: None,
                    has_self: false,
                    kind: FnKind::Closure,
                    line: c.line,
                    def_tok: c.name_tok,
                    body: c.body,
                });
            }
            file_nodes.push(here);
        }

        // Name indexes for resolution.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_name.entry(&n.name).or_default().push(i);
            if n.owner.is_none() && n.kind == FnKind::Item {
                free_by_name.entry(&n.name).or_default().push(i);
            }
            if n.has_self {
                methods_by_name.entry(&n.name).or_default().push(i);
            }
        }

        let mut edges: Vec<Vec<CallEdge>> = vec![Vec::new(); nodes.len()];
        let push_edge = |edges: &mut Vec<Vec<CallEdge>>, from: usize, edge: CallEdge| {
            let list = &mut edges[from];
            if !list
                .iter()
                .any(|e| e.callee == edge.callee && e.line == edge.line)
            {
                list.push(edge);
            }
        };

        for (fi, file) in files.iter().enumerate() {
            let here = &file_nodes[fi];
            // Closure definition edges: enclosing fn → closure.
            for &ci in here {
                if nodes[ci].kind != FnKind::Closure {
                    continue;
                }
                let def = nodes[ci].def_tok;
                if let Some(&parent) = innermost_containing(&nodes, here, def, ci) {
                    push_edge(
                        &mut edges,
                        parent,
                        CallEdge {
                            callee: ci,
                            line: nodes[ci].line,
                            confident: true,
                        },
                    );
                }
            }
            for call in call_sites(file) {
                if file.in_test(call.tok) {
                    continue;
                }
                let Some(&caller) = innermost_containing(&nodes, here, call.tok, usize::MAX) else {
                    continue;
                };
                let caller_owner = nodes[caller].owner.clone();
                let name = call.name.as_str();
                let mut targets: Vec<(usize, bool)> = Vec::new();
                if call.is_method {
                    if STD_METHODS.contains(&name) {
                        continue;
                    }
                    let self_recv = call.receiver.first().is_some_and(|r| r == "self")
                        && call.receiver.len() == 1;
                    let own = caller_owner.as_deref().and_then(|o| {
                        let hits: Vec<usize> = methods_by_name
                            .get(name)
                            .map(|v| {
                                v.iter()
                                    .copied()
                                    .filter(|&i| nodes[i].owner.as_deref() == Some(o))
                                    .collect()
                            })
                            .unwrap_or_default();
                        (!hits.is_empty()).then_some(hits)
                    });
                    match (self_recv, own) {
                        (true, Some(hits)) => {
                            targets.extend(hits.into_iter().map(|i| (i, true)));
                        }
                        _ => {
                            if let Some(hits) = methods_by_name.get(name) {
                                targets.extend(hits.iter().map(|&i| (i, false)));
                            }
                        }
                    }
                } else if let Some(q) = &call.qualifier {
                    let q = if q == "Self" {
                        caller_owner.clone().unwrap_or_else(|| q.clone())
                    } else {
                        q.clone()
                    };
                    let owned: Vec<usize> = by_name
                        .get(name)
                        .map(|v| {
                            v.iter()
                                .copied()
                                .filter(|&i| {
                                    nodes[i].owner.as_deref() == Some(q.as_str())
                                        || nodes[i].trait_name.as_deref() == Some(q.as_str())
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    if !owned.is_empty() {
                        targets.extend(owned.into_iter().map(|i| (i, true)));
                    } else if let Some(free) = free_by_name.get(name) {
                        // Module-qualified call (`normalize::strip(..)`).
                        targets.extend(free.iter().map(|&i| (i, true)));
                    }
                } else {
                    // Bare call: same-file fns and closures first.
                    let same_file: Vec<usize> = by_name
                        .get(name)
                        .map(|v| {
                            v.iter()
                                .copied()
                                .filter(|&i| {
                                    nodes[i].file == file.rel
                                        && (nodes[i].kind == FnKind::Closure
                                            || nodes[i].owner.is_none())
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    if !same_file.is_empty() {
                        targets.extend(same_file.into_iter().map(|i| (i, true)));
                    } else if let Some(free) = free_by_name.get(name) {
                        targets.extend(free.iter().map(|&i| (i, true)));
                    }
                }
                for (callee, confident) in targets {
                    if callee == caller {
                        continue; // self-recursion adds nothing to reach
                    }
                    push_edge(
                        &mut edges,
                        caller,
                        CallEdge {
                            callee,
                            line: call.line,
                            confident,
                        },
                    );
                }
            }
        }

        CallGraph { nodes, edges }
    }

    /// Nodes matching `(owner, name)`; `owner` `None` matches free fns.
    pub fn find(&self, owner: Option<&str>, name: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.name == name && n.owner.as_deref() == owner)
            .map(|(i, _)| i)
            .collect()
    }

    /// The innermost node of `file` whose body contains token `tok`.
    pub fn node_at(&self, file: &str, tok: usize) -> Option<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.file == file && tok >= n.def_tok && tok <= n.body.1)
            .min_by_key(|(_, n)| n.body.1 - n.def_tok)
            .map(|(i, _)| i)
    }

    /// BFS over `filter`ed edges from `roots`. Returns, for every
    /// reachable node, the index of the edge-parent it was first reached
    /// through (`usize::MAX` for roots) plus the call-site line used.
    /// Cycles terminate because each node is visited once.
    pub fn reach(&self, roots: &[usize], filter: EdgeFilter) -> BTreeMap<usize, (usize, u32)> {
        let mut parent: BTreeMap<usize, (usize, u32)> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(slot) = parent.entry(r) {
                slot.insert((usize::MAX, 0));
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for e in &self.edges[n] {
                if filter == EdgeFilter::Confident && !e.confident {
                    continue;
                }
                if let std::collections::btree_map::Entry::Vacant(slot) = parent.entry(e.callee) {
                    slot.insert((n, e.line));
                    queue.push_back(e.callee);
                }
            }
        }
        parent
    }

    /// The shortest root→`node` chain from a [`CallGraph::reach`] result.
    pub fn chain(&self, parents: &BTreeMap<usize, (usize, u32)>, node: usize) -> Vec<ChainHop> {
        let mut hops = Vec::new();
        let mut cur = node;
        let mut via = 0u32;
        loop {
            let n = &self.nodes[cur];
            hops.push(ChainHop {
                function: n.qualified_name(),
                path: n.file.clone(),
                line: n.line,
                via_line: via,
            });
            match parents.get(&cur) {
                Some(&(p, call_line)) if p != usize::MAX => {
                    via = call_line;
                    cur = p;
                }
                _ => break,
            }
            if hops.len() > self.nodes.len() {
                break; // defensive: malformed parent map
            }
        }
        // Built sink-first; flip to root-first and move each via_line onto
        // the hop it leads *to*.
        hops.reverse();
        let mut carried = 0u32;
        for hop in &mut hops {
            std::mem::swap(&mut hop.via_line, &mut carried);
        }
        hops
    }
}

/// Whether the `fn` at `fn_tok` takes a `self` receiver.
fn fn_has_self(file: &SourceFile, fn_tok: usize) -> bool {
    let toks = &file.lex.tokens;
    let mut j = fn_tok;
    while let Some(t) = toks.get(j) {
        if t.is_punct('<') {
            // Generic params may contain `Fn(..)` bounds; skip the whole
            // group so the parameter-list paren is found, not a bound's.
            j = extract::skip_angles_at(toks, j);
            continue;
        }
        if t.is_punct('(') {
            // First few tokens decide: `self`, `&self`, `&mut self`,
            // `mut self`, `&'a self`, `self: Arc<Self>`.
            for t in toks.iter().take((j + 5).min(toks.len())).skip(j + 1) {
                if t.is_ident("self") {
                    return true;
                }
                if !(t.is_punct('&')
                    || t.is_ident("mut")
                    || t.kind == crate::lexer::TokKind::Lifetime)
                {
                    return false;
                }
            }
            return false;
        }
        if t.is_punct('{') || t.is_punct(';') {
            return false;
        }
        j += 1;
    }
    false
}

/// The innermost node among `candidates` whose body contains `tok`,
/// excluding `skip` (used to find a closure's enclosing function).
fn innermost_containing<'a>(
    nodes: &[FnNode],
    candidates: &'a [usize],
    tok: usize,
    skip: usize,
) -> Option<&'a usize> {
    candidates
        .iter()
        .filter(|&&i| i != skip && tok >= nodes[i].body.0 && tok <= nodes[i].body.1)
        .min_by_key(|&&i| nodes[i].body.1 - nodes[i].body.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::build_file;
    use std::path::Path;

    fn file(rel: &str, src: &str) -> SourceFile {
        build_file(Path::new("/ws"), &Path::new("/ws").join(rel), src)
    }

    fn graph(sources: &[(&str, &str)]) -> (CallGraph, Vec<SourceFile>) {
        let files: Vec<SourceFile> = sources.iter().map(|&(r, s)| file(r, s)).collect();
        let g = CallGraph::build(files.iter());
        (g, files)
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("no node {name}"))
    }

    #[test]
    fn cycles_terminate_and_stay_reachable() {
        let (g, _) = graph(&[(
            "crates/x/src/lib.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() { a(); sink(); }\nfn sink() {}\n",
        )]);
        let roots = vec![idx(&g, "a")];
        let reach = g.reach(&roots, EdgeFilter::All);
        for name in ["a", "b", "c", "sink"] {
            assert!(reach.contains_key(&idx(&g, name)), "{name} reachable");
        }
        let chain = g.chain(&reach, idx(&g, "sink"));
        let names: Vec<&str> = chain.iter().map(|h| h.function.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c", "sink"]);
        // via_line of each non-root hop is the call line in its caller.
        assert_eq!(chain[0].via_line, 0);
        assert_eq!(chain[1].via_line, 1); // b is called on line 1 (in a)
        assert_eq!(chain[3].via_line, 3); // sink is called on line 3 (in c)
    }

    #[test]
    fn impl_methods_get_owners_and_self_calls_resolve_exactly() {
        let (g, _) = graph(&[(
            "crates/x/src/lib.rs",
            "struct Engine;\nimpl Engine {\n    pub fn ingest(&self) { self.step(); }\n    fn step(&self) {}\n}\nstruct Other;\nimpl Other {\n    fn step(&self) {}\n}\n",
        )]);
        let ingest = idx(&g, "ingest");
        assert_eq!(g.nodes[ingest].owner.as_deref(), Some("Engine"));
        let reach = g.reach(&[ingest], EdgeFilter::Confident);
        // Exactly Engine::step, not Other::step.
        let reached: Vec<&FnNode> = reach.keys().map(|&i| &g.nodes[i]).collect();
        assert!(reached
            .iter()
            .any(|n| n.name == "step" && n.owner.as_deref() == Some("Engine")));
        assert!(!reached
            .iter()
            .any(|n| n.name == "step" && n.owner.as_deref() == Some("Other")));
    }

    #[test]
    fn trait_method_dispatch_fans_out_to_all_impls() {
        let (g, _) = graph(&[(
            "crates/x/src/lib.rs",
            "trait Sink { fn record(&self); }\nstruct A;\nimpl Sink for A { fn record(&self) { tick(); } }\nstruct B;\nimpl Sink for B { fn record(&self) { tock(); } }\nfn tick() {}\nfn tock() {}\nfn drive(s: &dyn Sink) { s.record(); }\n",
        )]);
        let drive = idx(&g, "drive");
        let reach = g.reach(&[drive], EdgeFilter::All);
        assert!(reach.contains_key(&idx(&g, "tick")), "A::record reached");
        assert!(reach.contains_key(&idx(&g, "tock")), "B::record reached");
        // Dyn fan-out edges are not confident.
        let confident = g.reach(&[drive], EdgeFilter::Confident);
        assert!(!confident.contains_key(&idx(&g, "tick")));
    }

    #[test]
    fn named_closures_are_nodes_with_definition_edges() {
        let (g, _) = graph(&[(
            "crates/x/src/lib.rs",
            "fn outer() {\n    let work = move |x: usize| helper(x);\n    dispatch(work);\n}\nfn helper(_x: usize) {}\nfn dispatch<F: Fn(usize)>(_f: F) {}\n",
        )]);
        let outer = idx(&g, "outer");
        let work = idx(&g, "work");
        assert_eq!(g.nodes[work].kind, FnKind::Closure);
        let reach = g.reach(&[outer], EdgeFilter::All);
        assert!(reach.contains_key(&work), "definition edge reaches closure");
        assert!(
            reach.contains_key(&idx(&g, "helper")),
            "capture body reached through the closure"
        );
    }

    #[test]
    fn qualified_references_without_parens_resolve() {
        let (g, _) = graph(&[(
            "crates/x/src/lib.rs",
            "struct P;\nimpl P {\n    fn into_inner(self) {}\n}\nfn f() { g().unwrap_or_else(P::into_inner); }\nfn g() {}\n",
        )]);
        let reach = g.reach(&[idx(&g, "f")], EdgeFilter::All);
        assert!(reach.contains_key(&idx(&g, "into_inner")));
    }

    #[test]
    fn std_method_names_do_not_fan_out() {
        let (g, _) = graph(&[(
            "crates/x/src/lib.rs",
            "struct S;\nimpl S {\n    fn len(&self) { boom(); }\n}\nfn boom() {}\nfn f(v: &[u8]) { let _ = v.len(); }\n",
        )]);
        let reach = g.reach(&[idx(&g, "f")], EdgeFilter::All);
        assert!(
            !reach.contains_key(&idx(&g, "boom")),
            "`.len()` must not resolve to S::len"
        );
    }

    #[test]
    fn test_items_contribute_no_nodes() {
        let (g, _) = graph(&[(
            "crates/x/src/lib.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n",
        )]);
        assert!(g.nodes.iter().any(|n| n.name == "live"));
        assert!(!g.nodes.iter().any(|n| n.name == "helper"));
    }
}
