//! Bound-sensitivity and exhaustiveness checks for the interleaving
//! models, mirroring the gating `ix-analysis sched` run.
//!
//! The shipped algorithms must pass exhaustively at (and above)
//! `DEFAULT_BOUND`; every seeded racy variant must produce a
//! counterexample. The bound-0 cases document *why* a preemption bound is
//! the right search knob: with zero preemptions each thread runs to
//! completion once scheduled, so serial executions of the racy variants
//! are still correct — the bugs live strictly in the preempted schedules.

use ix_analysis::sched::models::{
    CounterModel, CursorModel, GaugeMaxModel, MruCacheModel, ScopeGrowModel, TwoLockModel,
};
use ix_analysis::sched::{explore, DEFAULT_BOUND};

#[test]
fn shipped_algorithms_pass_exhaustively_at_default_bound() {
    explore(&CursorModel::new(2, 6, 2, false), DEFAULT_BOUND).expect("cursor");
    explore(&CounterModel::new(2, 2, false), DEFAULT_BOUND).expect("counter");
    explore(&GaugeMaxModel::new(&[3, 7, 5], false), DEFAULT_BOUND).expect("gauge");
    explore(&ScopeGrowModel::new(2, 42, false), DEFAULT_BOUND).expect("scope");
    explore(&MruCacheModel::new(2, 7, &[10], 2, false), DEFAULT_BOUND).expect("cache");
    explore(&TwoLockModel::new(false), 4).expect("two-lock");
}

#[test]
fn shipped_algorithms_stay_clean_above_the_documented_bound() {
    // Raising the bound only enlarges the schedule space; a clean pass two
    // notches above DEFAULT_BOUND guards against the bound being tuned to
    // just barely miss a bad schedule.
    let stats_lo = explore(&CursorModel::new(2, 6, 2, false), DEFAULT_BOUND).expect("cursor lo");
    let stats_hi =
        explore(&CursorModel::new(2, 6, 2, false), DEFAULT_BOUND + 2).expect("cursor hi");
    // The cursor model is small enough that DEFAULT_BOUND may already
    // cover its full schedule space, so the count can only grow or hold.
    assert!(stats_hi.schedules >= stats_lo.schedules);
    explore(&CounterModel::new(2, 2, false), DEFAULT_BOUND + 2).expect("counter hi");
    explore(&GaugeMaxModel::new(&[3, 7, 5], false), DEFAULT_BOUND + 2).expect("gauge hi");
}

#[test]
fn racy_variants_are_caught_at_default_bound() {
    explore(&CursorModel::new(2, 6, 2, true), DEFAULT_BOUND).expect_err("cursor");
    explore(&CounterModel::new(2, 2, true), DEFAULT_BOUND).expect_err("counter");
    explore(&GaugeMaxModel::new(&[3, 7], true), DEFAULT_BOUND).expect_err("gauge");
    explore(&ScopeGrowModel::new(2, 42, true), DEFAULT_BOUND).expect_err("scope");
    explore(&MruCacheModel::new(2, 7, &[], 4, true), DEFAULT_BOUND).expect_err("cache");
    explore(&TwoLockModel::new(true), 4).expect_err("two-lock");
}

#[test]
fn racy_counter_needs_exactly_one_preemption() {
    // Serial schedules execute the torn load/store back to back.
    explore(&CounterModel::new(2, 2, true), 0).expect("bound 0 is serial");
    // One adverse switch between the load and the store loses an update.
    let cex = explore(&CounterModel::new(2, 2, true), 1).expect_err("bound 1");
    assert!(!cex.schedule.is_empty());
}

#[test]
fn racy_cursor_needs_exactly_one_preemption() {
    explore(&CursorModel::new(2, 6, 2, true), 0).expect("bound 0 is serial");
    explore(&CursorModel::new(2, 6, 2, true), 1).expect_err("bound 1");
}

#[test]
fn inverted_lock_order_reports_deadlock() {
    let cex = explore(&TwoLockModel::new(true), 4).expect_err("ABBA must deadlock");
    assert!(
        cex.error.contains("deadlock"),
        "expected a deadlock counterexample, got: {cex}"
    );
}
