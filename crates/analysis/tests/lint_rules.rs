//! Every lint rule fires on its minimal bad-code fixture at the expected
//! path and line — and the real workspace is clean.
//!
//! Fixtures live in `tests/fixtures/`, one per rule. Each is lexed with a
//! fabricated workspace-relative path (some rules key off the path — hot
//! dirs, the engine tree, `HOT_FUNCTIONS`), then run against the *real*
//! scanned workspace for cross-file facts (`EngineEvent` variants, Drop
//! impls).

use std::path::Path;

use ix_analysis::rules::{all_rules, run_all, Violation};
use ix_analysis::workspace::{build_file, Workspace};

fn real_workspace() -> Workspace {
    let root = Workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above CARGO_MANIFEST_DIR");
    Workspace::scan(&root).expect("scan workspace")
}

/// Runs one rule over `fixture_name` lexed as if it lived at `rel`.
fn check_fixture(ws: &Workspace, rule_id: &str, fixture_name: &str, rel: &str) -> Vec<Violation> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture_name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let file = build_file(Path::new("/ws"), &Path::new("/ws").join(rel), &src);
    let rules = all_rules();
    let rule = rules
        .iter()
        .find(|r| r.id() == rule_id)
        .unwrap_or_else(|| panic!("no rule with id {rule_id}"));
    let mut out = Vec::new();
    rule.check(&file, ws, &mut out);
    out
}

/// Asserts `rule_id` fires on `fixture_name` (lexed as if it lived at
/// `rel`) at exactly `line`.
fn assert_fires(ws: &Workspace, rule_id: &str, fixture_name: &str, rel: &str, line: u32) {
    let out = check_fixture(ws, rule_id, fixture_name, rel);
    assert!(
        out.iter()
            .any(|v| v.rule == rule_id && v.path == rel && v.line == line),
        "{rule_id} did not fire at {rel}:{line} on {fixture_name}; got: {out:#?}"
    );
}

/// Asserts the determinism rule catches exactly one sink in the fixture,
/// at `line`, with a printed root→…→sink chain starting at the fixture's
/// `Engine::ingest` root — and nothing else (the clean twin passes).
fn assert_determinism_catches(ws: &Workspace, fixture_name: &str, line: u32) {
    let rel = format!(
        "crates/core/src/engine/{}",
        fixture_name.replace("determinism_", "bad_")
    );
    let out = check_fixture(ws, "determinism", fixture_name, &rel);
    assert_eq!(
        out.len(),
        1,
        "{fixture_name}: exactly the seeded sink fires; got: {out:#?}"
    );
    let v = &out[0];
    assert_eq!(v.line, line, "{fixture_name}: sink line; got: {out:#?}");
    assert!(
        v.chain.len() >= 2,
        "{fixture_name}: finding must carry a root→sink chain; got: {v:#?}"
    );
    assert_eq!(
        v.chain[0].function, "Engine::ingest",
        "{fixture_name}: chain starts at the declared root; got: {v:#?}"
    );
    assert!(
        v.chain.iter().skip(1).all(|h| h.via_line > 0),
        "{fixture_name}: every non-root hop records its call site; got: {v:#?}"
    );
}

#[test]
fn atomic_ordering_comment_fires() {
    let ws = real_workspace();
    assert_fires(
        &ws,
        "atomic-ordering-comment",
        "atomic_ordering_comment.rs",
        "crates/core/src/bad_ordering.rs",
        5,
    );
}

#[test]
fn hot_path_panic_fires() {
    let ws = real_workspace();
    assert_fires(
        &ws,
        "hot-path-panic",
        "hot_path_panic.rs",
        "crates/core/src/engine/bad_panic.rs",
        3,
    );
}

#[test]
fn lock_order_fires() {
    let ws = real_workspace();
    assert_fires(
        &ws,
        "lock-order",
        "lock_order.rs",
        "crates/core/src/bad_locks.rs",
        5,
    );
}

#[test]
fn poison_recovery_fires() {
    let ws = real_workspace();
    assert_fires(
        &ws,
        "poison-recovery",
        "poison_recovery.rs",
        "crates/core/src/bad_poison.rs",
        3,
    );
}

#[test]
fn event_match_exhaustive_fires() {
    let ws = real_workspace();
    assert!(
        !ws.engine_event_variants.is_empty(),
        "EngineEvent variants should be parsed from the real tree"
    );
    assert_fires(
        &ws,
        "event-match-exhaustive",
        "event_match_exhaustive.rs",
        "crates/core/src/bad_events.rs",
        5,
    );
}

#[test]
fn unsafe_safety_comment_fires() {
    let ws = real_workspace();
    assert_fires(
        &ws,
        "unsafe-safety-comment",
        "unsafe_safety_comment.rs",
        "crates/core/src/bad_unsafe.rs",
        3,
    );
}

#[test]
fn scoring_path_purity_fires() {
    let ws = real_workspace();
    // The fabricated rel must be a HOT_FUNCTIONS file for the rule to
    // look at the fixture's `claim_batch` body at all.
    assert_fires(
        &ws,
        "scoring-path-purity",
        "scoring_path_purity.rs",
        "crates/core/src/assoc.rs",
        3,
    );
}

#[test]
fn must_use_guards_fires() {
    let ws = real_workspace();
    assert_fires(
        &ws,
        "must-use-guards",
        "must_use_guards.rs",
        "crates/core/src/bad_guard.rs",
        2,
    );
}

#[test]
fn no_print_in_lib_fires() {
    let ws = real_workspace();
    assert_fires(
        &ws,
        "no-print-in-lib",
        "no_print_in_lib.rs",
        "crates/core/src/bad_print.rs",
        3,
    );
}

#[test]
fn engine_missing_docs_fires() {
    let ws = real_workspace();
    assert_fires(
        &ws,
        "engine-missing-docs",
        "engine_missing_docs.rs",
        "crates/core/src/engine/bad_docs.rs",
        2,
    );
}

#[test]
fn degradation_emits_event_fires() {
    let ws = real_workspace();
    assert_fires(
        &ws,
        "degradation-emits-event",
        "degradation_emits_event.rs",
        "crates/core/src/engine/bad_degrade.rs",
        5,
    );
}

#[test]
fn degradation_emits_event_accepts_emitting_functions() {
    let ws = real_workspace();
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/degradation_emits_event.rs");
    let src = std::fs::read_to_string(&path).expect("read fixture");
    let rel = "crates/core/src/engine/bad_degrade.rs";
    let file = build_file(Path::new("/ws"), &Path::new("/ws").join(rel), &src);
    let rules = all_rules();
    let rule = rules
        .iter()
        .find(|r| r.id() == "degradation-emits-event")
        .expect("registered");
    let mut out = Vec::new();
    rule.check(&file, &ws, &mut out);
    assert_eq!(out.len(), 1, "only the silent site fires: {out:#?}");
    assert!(
        out[0].message.contains("quiet_fallback"),
        "loud_fallback (which calls note_degradation) must pass: {out:#?}"
    );
}

#[test]
fn determinism_catches_wall_clock() {
    let ws = real_workspace();
    assert_determinism_catches(&ws, "determinism_wall_clock.rs", 12);
}

#[test]
fn determinism_catches_hash_iteration() {
    let ws = real_workspace();
    assert_determinism_catches(&ws, "determinism_hash_iter.rs", 13);
}

#[test]
fn determinism_catches_random_state() {
    let ws = real_workspace();
    assert_determinism_catches(&ws, "determinism_random_state.rs", 11);
}

#[test]
fn determinism_catches_thread_id() {
    let ws = real_workspace();
    assert_determinism_catches(&ws, "determinism_thread_id.rs", 11);
}

#[test]
fn determinism_catches_ptr_key() {
    let ws = real_workspace();
    assert_determinism_catches(&ws, "determinism_ptr_key.rs", 11);
}

#[test]
fn determinism_catches_env_read() {
    let ws = real_workspace();
    assert_determinism_catches(&ws, "determinism_env_read.rs", 11);
}

#[test]
fn determinism_catches_parallel_float_reduction() {
    let ws = real_workspace();
    assert_determinism_catches(&ws, "determinism_par_float.rs", 15);
}

#[test]
fn purity_flags_allocation_planted_in_a_callee() {
    let ws = real_workspace();
    // `claim_batch` is a listed hot fn; the allocation lives in a helper
    // it calls. The pre-call-graph rule scanned only listed bodies and
    // missed exactly this shape.
    let out = check_fixture(
        &ws,
        "scoring-path-purity",
        "purity_callee.rs",
        "crates/core/src/assoc.rs",
    );
    let v = out
        .iter()
        .find(|v| v.line == 11)
        .unwrap_or_else(|| panic!("callee allocation not flagged: {out:#?}"));
    assert!(
        v.message.contains("stage_scratch") && v.message.contains("claim_batch"),
        "message names helper and hot root: {v:#?}"
    );
    assert!(
        v.chain.iter().any(|h| h.function == "claim_batch")
            && v.chain.iter().any(|h| h.function == "stage_scratch"),
        "chain spans hot fn to helper: {v:#?}"
    );
}

#[test]
fn wire_coverage_flags_untested_variant() {
    let ws = real_workspace();
    let out = check_fixture(
        &ws,
        "wire-coverage",
        "wire_coverage.rs",
        "crates/core/src/engine/events.rs",
    );
    assert_eq!(
        out.len(),
        1,
        "only the phantom variant fires (TickIngested is wire-tested): {out:#?}"
    );
    assert!(
        out[0].message.contains("PhantomEvent") && out[0].line == 10,
        "finding anchors to the untested variant: {out:#?}"
    );
}

#[test]
fn degradation_accepts_emit_routed_through_callee() {
    let ws = real_workspace();
    let out = check_fixture(
        &ws,
        "degradation-emits-event",
        "degradation_emits_event.rs",
        "crates/core/src/engine/bad_degrade.rs",
    );
    assert_eq!(out.len(), 1, "only the silent site fires: {out:#?}");
    assert!(
        out[0].message.contains("quiet_fallback"),
        "routed_fallback (emit in a callee) and loud_fallback must pass: {out:#?}"
    );
}

#[test]
fn rule_catalog_is_complete() {
    let ids: Vec<&str> = all_rules().iter().map(|r| r.id()).collect();
    assert_eq!(ids.len(), 13, "rule catalog: {ids:?}");
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "duplicate rule ids: {ids:?}");
}

#[test]
fn real_workspace_is_clean() {
    let ws = real_workspace();
    let violations = run_all(&ws);
    assert!(
        violations.is_empty(),
        "the real tree must lint clean; violations:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
