// Fixture: explicit RandomState construction on the ingest path.

impl Engine {
    pub fn ingest(&self, context: &OperationContext) -> Result<(), CoreError> {
        seeded_map();
        Ok(())
    }
}

fn seeded_map() -> u64 {
    let state = RandomState::new();
    let mut hasher = state.build_hasher();
    hasher.finish()
}
