// Fixture: a pointer-to-integer cast used as a key on the ingest path.

impl Engine {
    pub fn ingest(&self, context: &OperationContext) -> Result<(), CoreError> {
        addr_key(&[1.0, 2.0]);
        Ok(())
    }
}

fn addr_key(series: &[f64]) -> usize {
    series.as_ptr() as usize
}
