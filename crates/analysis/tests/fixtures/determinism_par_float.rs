// Fixture: unordered parallel float accumulation on the ingest path.

impl Engine {
    pub fn ingest(&self, context: &OperationContext) -> Result<(), CoreError> {
        parallel_total(&[1.0f64]);
        Ok(())
    }
}

fn parallel_total(series: &[f64]) -> f64 {
    let mut total: f64 = 0.0;
    std::thread::scope(|s| {
        s.spawn(|| {
            for v in series {
                total += v;
            }
        });
    });
    total
}
