// Fixture: a wall-clock read in a helper transitively reachable from the
// `Engine::ingest` determinism root. The unreachable twin must pass.

impl Engine {
    pub fn ingest(&self, context: &OperationContext) -> Result<(), CoreError> {
        stamp_tick();
        Ok(())
    }
}

fn stamp_tick() -> u64 {
    let started = Instant::now();
    started.elapsed().as_micros() as u64
}

// Clean twin: same sink, but nothing reaches it from a root.
fn offline_stamp() -> u64 {
    let started = Instant::now();
    started.elapsed().as_micros() as u64
}
