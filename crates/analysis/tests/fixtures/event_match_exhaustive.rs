// Fixture: wildcard arm in a match over EngineEvent.
fn handle(event: &EngineEvent) {
    match event {
        EngineEvent::TickIngested { .. } => {}
        _ => {}
    }
}
