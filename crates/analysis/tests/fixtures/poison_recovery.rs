// Fixture: .unwrap() on a declared-lock guard instead of poison recovery.
fn read_all(&self) {
    let g = self.scopes.read().unwrap();
    drop(g);
}
