// Fixture: HashMap iteration in a helper reachable from `Engine::ingest`.

impl Engine {
    pub fn ingest(&self, context: &OperationContext) -> Result<(), CoreError> {
        tally_contexts();
        Ok(())
    }
}

fn tally_contexts() -> u64 {
    let counts: HashMap<String, u64> = HashMap::new();
    let mut total = 0;
    for (_, v) in counts.iter() {
        total += v;
    }
    total
}

// Clean twin: iterating a sorted map is deterministic.
fn tally_sorted() -> u64 {
    let ordered: BTreeMap<String, u64> = BTreeMap::new();
    let mut total = 0;
    for (_, v) in ordered.iter() {
        total += v;
    }
    total
}
