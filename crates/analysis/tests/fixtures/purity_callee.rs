// Fixture: the hot fn itself is clean — the allocation hides in a helper
// one call down. The pre-call-graph rule only scanned listed bodies and
// provably missed this.

fn claim_batch(cursor: &AtomicUsize, n_pairs: usize) -> Option<(usize, usize)> {
    let start = cursor.fetch_add(STEAL_BATCH, Ordering::Relaxed);
    stage_scratch(start, n_pairs)
}

fn stage_scratch(start: usize, n_pairs: usize) -> Option<(usize, usize)> {
    let staged: Vec<usize> = Vec::new();
    let _ = staged;
    if start >= n_pairs {
        None
    } else {
        Some((start, n_pairs.min(start + STEAL_BATCH)))
    }
}
