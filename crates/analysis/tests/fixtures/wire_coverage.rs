// Fixture: an EngineEvent enum with a variant the wire tests never
// exercise. `TickIngested` is covered by the real wire.rs test module;
// `PhantomEvent` is not.

pub enum EngineEvent {
    TickIngested {
        context: ContextId,
        tick: u64,
    },
    PhantomEvent {
        context: ContextId,
    },
}
