// Fixture: .unwrap() in an engine hot path.
fn risky(x: Option<u32>) -> u32 {
    x.unwrap()
}
