// Fixture: a sweep helper that degrades silently — it builds the
// SweepDegradation verdict but never surfaces it on the event stream.

fn quiet_fallback(reason: DegradationReason) -> SweepVerdict {
    let degradation = SweepDegradation {
        tier: DegradationTier::CachedMatrix,
        reason,
    };
    SweepVerdict {
        matrix: CorrelationMatrix::default(),
        degradation: Some(degradation),
        scored: None,
    }
}

// Clean: the same construction alongside the emission helper.
fn loud_fallback(&self, context: ContextId, reason: DegradationReason) -> SweepVerdict {
    let degradation = SweepDegradation {
        tier: DegradationTier::CachedMatrix,
        reason,
    };
    self.note_degradation(context, degradation.tier, reason);
    SweepVerdict {
        matrix: CorrelationMatrix::default(),
        degradation: Some(degradation),
        scored: None,
    }
}

// Clean: the construction site routes the event through a helper — the
// call-graph closure must accept the transitive emit.
impl Engine {
    fn routed_fallback(&self, context: ContextId, reason: DegradationReason) -> SweepVerdict {
        let degradation = SweepDegradation {
            tier: DegradationTier::CachedMatrix,
            reason,
        };
        self.forward_verdict(context, reason);
        SweepVerdict {
            matrix: CorrelationMatrix::default(),
            degradation: Some(degradation),
            scored: None,
        }
    }

    fn forward_verdict(&self, context: ContextId, reason: DegradationReason) {
        self.note_degradation(context, DegradationTier::CachedMatrix, reason);
    }
}
