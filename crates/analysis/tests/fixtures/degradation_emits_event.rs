// Fixture: a sweep helper that degrades silently — it builds the
// SweepDegradation verdict but never surfaces it on the event stream.

fn quiet_fallback(reason: DegradationReason) -> SweepVerdict {
    let degradation = SweepDegradation {
        tier: DegradationTier::CachedMatrix,
        reason,
    };
    SweepVerdict {
        matrix: CorrelationMatrix::default(),
        degradation: Some(degradation),
        scored: None,
    }
}

// Clean: the same construction alongside the emission helper.
fn loud_fallback(&self, context: ContextId, reason: DegradationReason) -> SweepVerdict {
    let degradation = SweepDegradation {
        tier: DegradationTier::CachedMatrix,
        reason,
    };
    self.note_degradation(context, degradation.tier, reason);
    SweepVerdict {
        matrix: CorrelationMatrix::default(),
        degradation: Some(degradation),
        scored: None,
    }
}
