// Fixture: println! in library (non-binary) code.
fn debug_dump(x: u64) {
    println!("x = {x}");
}
