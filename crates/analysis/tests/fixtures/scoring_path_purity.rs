// Fixture: allocation inside a HOT_FUNCTIONS body (claim_batch).
fn claim_batch(n: usize) -> Vec<usize> {
    let v: Vec<usize> = (0..n).collect();
    v
}
