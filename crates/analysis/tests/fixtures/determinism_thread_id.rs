// Fixture: thread identity read on the ingest path.

impl Engine {
    pub fn ingest(&self, context: &OperationContext) -> Result<(), CoreError> {
        worker_tag();
        Ok(())
    }
}

fn worker_tag() -> String {
    format!("{:?}", thread::current().id())
}
