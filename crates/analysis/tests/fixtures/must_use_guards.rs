// Fixture: a *Guard type with a Drop impl but no #[must_use].
pub struct FrameGuard {
    active: bool,
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        self.active = false;
    }
}
