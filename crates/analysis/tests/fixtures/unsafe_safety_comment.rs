// Fixture: raw-pointer deref with no soundness justification.
fn spooky(p: *const u8) -> u8 {
    unsafe { *p }
}
