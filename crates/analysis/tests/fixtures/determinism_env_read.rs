// Fixture: an environment read on the ingest path.

impl Engine {
    pub fn ingest(&self, context: &OperationContext) -> Result<(), CoreError> {
        mode_flag();
        Ok(())
    }
}

fn mode_flag() -> bool {
    std::env::var("IX_FAST_PATH").is_ok()
}
