// Fixture: acquires the sweep cache (rank 1) while the span ring (rank 4)
// guard is still live — against the declared order.
fn wrong(&self) {
    let guard = self.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    drop(entries);
    drop(guard);
}
