// Fixture: an undocumented pub item inside crates/core/src/engine/.
pub fn undocumented() {}
