//! The file-backed segment format: `IXHIST01`.
//!
//! A saved store is one little-endian binary file:
//!
//! ```text
//! magic            8 bytes  b"IXHIST01"
//! labels           u32 count, then per label: u32 byte-length + UTF-8
//! context logs     u32 count, then per log:
//!   context        u32 dense id
//!   rows           u64
//!   run starts     u32 count + u64 each
//!   columns        rows × u64 ticks, rows × f64 cpi, rows × f64 residual,
//!                  rows × u8 exceeded, then METRIC_COUNT × rows f64
//!                  metric-major metric columns
//! events           u32 count, then per event: u32 byte-length + the
//!                  pinned JSON wire form from `ix-core`
//! sweeps           u32 count, length-prefixed JSON records
//! diagnoses        u32 count, length-prefixed JSON records
//! sections         zero or more trailing sections, each: 4-byte ASCII
//!                  tag + u32 byte-length + opaque payload
//! ```
//!
//! Floating-point columns are raw IEEE-754 bits, so a load reproduces the
//! saved values bit-exactly. The JSON sections ride on the wire encodings
//! pinned by tests in `ix-core` — a wire break fails there first.
//!
//! Trailing sections are the format's versioned extension point (the
//! original `IXHIST01` files simply have none): `ix-replay` stores its
//! config/seed header under [`REPLAY_SECTION`]. Unknown tags load with a
//! warning instead of an error — a file written by a newer writer stays
//! readable — and are preserved verbatim so a save of the load reproduces
//! the original bytes. A truncated section frame is still a hard
//! [`HistoryFileError::Format`].

use std::fmt;
use std::fs;
use std::path::Path;

use ix_core::EngineEvent;
use ix_metrics::METRIC_COUNT;

use crate::store::{ContextLog, DiagnosisRecord, HistoryStore, Inner, SweepRecord};

/// Leading magic of every history file (format name + version).
const MAGIC: &[u8; 8] = b"IXHIST01";

/// Tag of the trailing section holding `ix-replay`'s config/seed header.
pub const REPLAY_SECTION: [u8; 4] = *b"RPLY";

/// Tag of the trailing section holding `ix-serve`'s tenant run state
/// (lifetime tick counter + per-context run tails of an evicted tenant).
pub const SERVE_SECTION: [u8; 4] = *b"SRVT";

/// Section tags this version of the crate understands; anything else
/// loads with a warning (forward-compat) and is carried verbatim.
const KNOWN_SECTIONS: &[[u8; 4]] = &[REPLAY_SECTION, SERVE_SECTION];

/// Upper bound on the dense context ids a file may claim. Context logs
/// live in a `Vec` indexed by id, so an unchecked hostile id would force
/// a multi-gigabyte `resize_with`; no deployment approaches a million
/// contexts.
const MAX_CONTEXT_ID: usize = 1 << 20;

/// Bytes one row occupies in the columnar image: tick (8) + CPI (8) +
/// residual (8) + exceeded flag (1) + the metric columns.
const ROW_BYTES: usize = 25 + 8 * METRIC_COUNT;

/// Why a history file failed to load.
#[derive(Debug)]
pub enum HistoryFileError {
    /// The underlying read or write failed.
    Io(std::io::Error),
    /// The bytes are not a well-formed `IXHIST01` file.
    Format(String),
}

impl fmt::Display for HistoryFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryFileError::Io(e) => write!(f, "history file I/O: {e}"),
            HistoryFileError::Format(msg) => write!(f, "malformed history file: {msg}"),
        }
    }
}

impl std::error::Error for HistoryFileError {}

impl From<std::io::Error> for HistoryFileError {
    fn from(e: std::io::Error) -> Self {
        HistoryFileError::Io(e)
    }
}

/// Sequential little-endian writer over a growable buffer.
#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Encodes a count/length/id the format stores as `u32`, refusing
    /// loudly — instead of silently truncating into a corrupt file —
    /// when the value does not fit the field.
    fn u32_field(&mut self, v: usize) {
        let v = u32::try_from(v)
            .expect("IXHIST01 u32 field overflow: count, length or id exceeds u32::MAX");
        self.u32(v);
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64s(&mut self, vs: &[f64]) {
        for v in vs {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    fn bytes(&mut self, b: &[u8]) {
        self.u32_field(b.len());
        self.buf.extend_from_slice(b);
    }
}

/// Sequential little-endian reader with bounds-checked cursor.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], HistoryFileError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| HistoryFileError::Format(format!("truncated at byte {}", self.at)))?;
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, HistoryFileError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, HistoryFileError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Reads a `u32` element count, rejecting counts whose payload
    /// (`count × min_elem_size` bytes) cannot possibly fit in the rest
    /// of the buffer — so a hostile count can never drive a huge
    /// preallocation or unbounded loop.
    fn count(&mut self, min_elem_size: usize) -> Result<usize, HistoryFileError> {
        let n = self.u32()? as usize;
        match n.checked_mul(min_elem_size) {
            Some(bytes) if bytes <= self.remaining() => Ok(n),
            _ => Err(HistoryFileError::Format(format!(
                "count {n} exceeds the {} bytes remaining",
                self.remaining()
            ))),
        }
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, HistoryFileError> {
        let bytes = n
            .checked_mul(8)
            .ok_or_else(|| HistoryFileError::Format(format!("f64 column of {n} rows overflows")))?;
        let raw = self.take(bytes)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect())
    }

    fn bytes(&mut self) -> Result<&'a [u8], HistoryFileError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn json<T: serde::Deserialize>(&mut self) -> Result<T, HistoryFileError> {
        let raw = self.bytes()?;
        let text = std::str::from_utf8(raw)
            .map_err(|e| HistoryFileError::Format(format!("non-UTF-8 JSON record: {e}")))?;
        serde_json::from_str(text).map_err(|e| HistoryFileError::Format(format!("bad record: {e}")))
    }
}

fn json_section<T: serde::Serialize>(w: &mut Writer, records: &[T]) {
    w.u32_field(records.len());
    for record in records {
        let text = serde_json::to_string(record).expect("wire forms always serialize");
        w.bytes(text.as_bytes());
    }
}

impl HistoryStore {
    /// Serializes the store into the `IXHIST01` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.with_inner(|inner| {
            let mut w = Writer::default();
            w.buf.extend_from_slice(MAGIC);
            // Labels: prefer the bound registry's current table so saved
            // files resolve ids without the live engine.
            let labels = match &inner.registry {
                Some(registry) => registry.labels(),
                None => inner.labels.clone(),
            };
            w.u32_field(labels.len());
            for label in &labels {
                w.bytes(label.as_bytes());
            }
            let logs: Vec<(usize, &ContextLog)> = inner
                .logs
                .iter()
                .enumerate()
                .filter_map(|(i, log)| log.as_ref().map(|log| (i, log)))
                .collect();
            w.u32_field(logs.len());
            for (ctx, log) in logs {
                w.u32_field(ctx);
                w.u64(log.rows as u64);
                w.u32_field(log.run_starts.len());
                for &start in &log.run_starts {
                    w.u64(start as u64);
                }
                for seg in &log.segments {
                    for &t in seg.ticks() {
                        w.u64(t);
                    }
                }
                for seg in &log.segments {
                    w.f64s(seg.cpi());
                }
                for seg in &log.segments {
                    w.f64s(seg.residual());
                }
                for seg in &log.segments {
                    w.buf.extend(seg.exceeded().iter().map(|&b| u8::from(b)));
                }
                for m in 0..METRIC_COUNT {
                    for seg in &log.segments {
                        w.f64s(seg.column(m));
                    }
                }
            }
            json_section(&mut w, &inner.events);
            json_section(&mut w, &inner.sweeps);
            json_section(&mut w, &inner.diagnoses);
            for (tag, payload) in &inner.sections {
                w.buf.extend_from_slice(tag);
                w.bytes(payload);
            }
            w.buf
        })
    }

    /// Reconstructs a store from `IXHIST01` bytes.
    ///
    /// # Errors
    ///
    /// [`HistoryFileError::Format`] on a bad magic, truncation, a count
    /// or context id larger than the buffer can back, run starts that are
    /// not strictly increasing within the recorded rows, non-finite
    /// metric values, or a JSON record that no longer parses. Counts are
    /// validated against the remaining bytes *before* anything is
    /// preallocated, so a hostile file fails with `Format` instead of
    /// aborting on allocation.
    pub fn from_bytes(bytes: &[u8]) -> Result<HistoryStore, HistoryFileError> {
        HistoryStore::from_bytes_with_warnings(bytes).map(|(store, _)| store)
    }

    /// [`HistoryStore::from_bytes`], additionally reporting non-fatal
    /// warnings — currently one per unknown trailing section tag, which a
    /// newer writer may have appended (the section is preserved verbatim,
    /// so re-saving keeps it).
    ///
    /// # Errors
    ///
    /// Exactly as [`HistoryStore::from_bytes`]; a *truncated* trailing
    /// section (fewer bytes than its tag + length frame promise) is still
    /// a hard [`HistoryFileError::Format`].
    pub fn from_bytes_with_warnings(
        bytes: &[u8],
    ) -> Result<(HistoryStore, Vec<String>), HistoryFileError> {
        let mut r = Reader { buf: bytes, at: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(HistoryFileError::Format(
                "missing IXHIST01 magic".to_string(),
            ));
        }
        let mut inner = Inner::default();
        // Each label costs at least its 4-byte length prefix.
        let label_count = r.count(4)?;
        for _ in 0..label_count {
            let raw = r.bytes()?;
            let label = std::str::from_utf8(raw)
                .map_err(|e| HistoryFileError::Format(format!("non-UTF-8 label: {e}")))?;
            inner.labels.push(label.to_string());
        }
        // Each log costs at least context id (4) + row count (8) + run
        // count (4) + the mandatory row-0 run start (8).
        let log_count = r.count(24)?;
        for _ in 0..log_count {
            let ctx = r.u32()? as usize;
            if ctx > MAX_CONTEXT_ID {
                return Err(HistoryFileError::Format(format!(
                    "context id {ctx} exceeds the format cap {MAX_CONTEXT_ID}"
                )));
            }
            let rows = usize::try_from(r.u64()?)
                .map_err(|_| HistoryFileError::Format("row count overflow".to_string()))?;
            if rows
                .checked_mul(ROW_BYTES)
                .is_none_or(|b| b > r.remaining())
            {
                return Err(HistoryFileError::Format(format!(
                    "row count {rows} exceeds the {} bytes remaining",
                    r.remaining()
                )));
            }
            let run_count = r.count(8)?;
            let mut run_starts = Vec::with_capacity(run_count);
            for _ in 0..run_count {
                run_starts.push(
                    usize::try_from(r.u64()?)
                        .map_err(|_| HistoryFileError::Format("run start overflow".to_string()))?,
                );
            }
            if run_starts.first() != Some(&0) {
                return Err(HistoryFileError::Format(
                    "run starts must begin at row 0".to_string(),
                ));
            }
            if run_starts.windows(2).any(|w| w[1] <= w[0]) {
                return Err(HistoryFileError::Format(
                    "run starts must be strictly increasing".to_string(),
                ));
            }
            // `window_frame` subtracts the last start from `rows`; a
            // start past the end would underflow every current-run scan.
            if run_starts.last().is_some_and(|&s| s > rows) {
                return Err(HistoryFileError::Format(
                    "run start beyond the recorded rows".to_string(),
                ));
            }
            let mut ticks = Vec::with_capacity(rows);
            for _ in 0..rows {
                ticks.push(r.u64()?);
            }
            // Time-window scans binary-search the tick column.
            if ticks.windows(2).any(|w| w[1] < w[0]) {
                return Err(HistoryFileError::Format(
                    "tick labels must be non-decreasing".to_string(),
                ));
            }
            let cpi = r.f64s(rows)?;
            let residual = r.f64s(rows)?;
            let exceeded: Vec<bool> = r.take(rows)?.iter().map(|&b| b != 0).collect();
            let mut columns = Vec::with_capacity(METRIC_COUNT);
            for _ in 0..METRIC_COUNT {
                let column = r.f64s(rows)?;
                // The live ingest path only records rows the sliding
                // window accepted (finite values); frames served from a
                // loaded store rely on the same invariant.
                if column.iter().any(|v| !v.is_finite()) {
                    return Err(HistoryFileError::Format(
                        "non-finite metric value".to_string(),
                    ));
                }
                columns.push(column);
            }
            let mut log = ContextLog {
                segments: Vec::new(),
                rows: 0,
                run_starts,
            };
            let mut row = vec![0.0; METRIC_COUNT];
            for i in 0..rows {
                for (m, slot) in row.iter_mut().enumerate() {
                    *slot = columns[m][i];
                }
                log.push(ticks[i], cpi[i], residual[i], exceeded[i], &row);
            }
            let idx = ctx;
            if inner.logs.len() <= idx {
                inner.logs.resize_with(idx + 1, || None);
            }
            inner.logs[idx] = Some(log);
        }
        // Each JSON record costs at least its 4-byte length prefix.
        let event_count = r.count(4)?;
        for _ in 0..event_count {
            inner.events.push(r.json::<EngineEvent>()?);
        }
        let sweep_count = r.count(4)?;
        for _ in 0..sweep_count {
            inner.sweeps.push(r.json::<SweepRecord>()?);
        }
        let diagnosis_count = r.count(4)?;
        for _ in 0..diagnosis_count {
            inner.diagnoses.push(r.json::<DiagnosisRecord>()?);
        }
        // Trailing sections: 4-byte tag + u32 length + payload, until the
        // buffer ends. Unknown tags warn instead of failing so files from
        // newer writers stay loadable; a short frame still errors.
        let mut warnings = Vec::new();
        while r.remaining() > 0 {
            let tag: [u8; 4] = r
                .take(4)
                .map_err(|_| {
                    HistoryFileError::Format(format!(
                        "truncated trailing section ({} bytes left, tag needs 4)",
                        bytes.len() - r.at
                    ))
                })?
                .try_into()
                .expect("take(4) yields 4 bytes");
            let payload = r.bytes()?.to_vec();
            if !KNOWN_SECTIONS.contains(&tag) {
                warnings.push(format!(
                    "unknown trailing section {:?} ({} bytes) — written by a newer \
                     ix-history; preserved but not interpreted",
                    String::from_utf8_lossy(&tag),
                    payload.len()
                ));
            }
            inner.sections.push((tag, payload));
        }
        Ok((HistoryStore::from_inner(inner), warnings))
    }

    /// Saves the store to `path` in the `IXHIST01` format.
    ///
    /// # Errors
    ///
    /// [`HistoryFileError::Io`] when the write fails.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), HistoryFileError> {
        fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Loads a store saved with [`HistoryStore::save`].
    ///
    /// # Errors
    ///
    /// [`HistoryFileError::Io`] when the read fails,
    /// [`HistoryFileError::Format`] when the bytes are malformed.
    pub fn load(path: impl AsRef<Path>) -> Result<HistoryStore, HistoryFileError> {
        let bytes = fs::read(path)?;
        HistoryStore::from_bytes(&bytes)
    }

    /// [`HistoryStore::load`], additionally reporting the non-fatal
    /// warnings of [`HistoryStore::from_bytes_with_warnings`].
    ///
    /// # Errors
    ///
    /// Exactly as [`HistoryStore::load`].
    pub fn load_with_warnings(
        path: impl AsRef<Path>,
    ) -> Result<(HistoryStore, Vec<String>), HistoryFileError> {
        let bytes = fs::read(path)?;
        HistoryStore::from_bytes_with_warnings(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_core::{ContextId, Diagnosis, HistoryRecorder, RankedCause, ViolationTuple};
    use ix_metrics::MetricId;

    fn sample_store() -> HistoryStore {
        let store = HistoryStore::new();
        let ctx = ContextId::from_index(0);
        for t in 0..600u64 {
            let row: Vec<f64> = (0..METRIC_COUNT)
                .map(|m| (t as f64).mul_add(0.25, m as f64) + 0.125)
                .collect();
            store.record_tick(ctx, t, 1.5 + t as f64, 0.0625 * t as f64, t % 7 == 0, &row);
            if t == 199 {
                store.record_run_reset(ctx);
            }
        }
        store.record_event(&EngineEvent::DetectionFired {
            context: ctx,
            tick: 42,
        });
        store.record_sweep(ctx, 42, &[0.5, 0.25, 0.125], None);
        store.record_diagnosis(
            ctx,
            42,
            &Diagnosis {
                ranked: vec![RankedCause {
                    problem: "disk hog".to_string(),
                    similarity: 0.875,
                }],
                tuple: ViolationTuple::from_graded(vec![0.0, 0.5, 1.0]),
                degradation: None,
            },
        );
        store
    }

    #[test]
    fn bytes_round_trip_bit_exactly() {
        let store = sample_store();
        let bytes = store.to_bytes();
        let loaded = HistoryStore::from_bytes(&bytes).expect("well-formed");
        let ctx = ContextId::from_index(0);
        assert_eq!(loaded.rows(ctx), 600);
        assert_eq!(loaded.run_count(ctx), 2);
        assert_eq!(loaded.run_rows(ctx, 0), Some(0..200));
        assert_eq!(
            store.frame(ctx, 0..600).expect("frame"),
            loaded.frame(ctx, 0..600).expect("frame")
        );
        assert_eq!(
            store.series(ctx, MetricId::ALL[13], 100..550),
            loaded.series(ctx, MetricId::ALL[13], 100..550)
        );
        assert_eq!(
            store.cpi_series(ctx, 0..600),
            loaded.cpi_series(ctx, 0..600)
        );
        assert_eq!(store.events(), loaded.events());
        assert_eq!(store.sweeps(), loaded.sweeps());
        assert_eq!(store.diagnoses(), loaded.diagnoses());
        // Serialization is canonical: a save of the load reproduces the
        // original bytes.
        assert_eq!(loaded.to_bytes(), bytes);
    }

    #[test]
    fn save_and_load_via_file() {
        let store = sample_store();
        let path = std::env::temp_dir().join("ix-history-file-test.ixh");
        store.save(&path).expect("save");
        let loaded = HistoryStore::load(&path).expect("load");
        assert_eq!(loaded.to_bytes(), store.to_bytes());
        let _ = std::fs::remove_file(&path);
    }

    /// Hand-writes a one-log file with `data_rows` real rows behind a
    /// `claimed_rows` header, so tests can corrupt the header fields
    /// independently of the payload.
    fn crafted(
        claimed_rows: u64,
        data_rows: usize,
        run_starts: &[u64],
        ctx: u32,
        metric: f64,
    ) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&0u32.to_le_bytes()); // no labels
        buf.extend_from_slice(&1u32.to_le_bytes()); // one log
        buf.extend_from_slice(&ctx.to_le_bytes());
        buf.extend_from_slice(&claimed_rows.to_le_bytes());
        buf.extend_from_slice(&(run_starts.len() as u32).to_le_bytes());
        for &s in run_starts {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        for t in 0..data_rows as u64 {
            buf.extend_from_slice(&t.to_le_bytes()); // ticks
        }
        for _ in 0..data_rows {
            buf.extend_from_slice(&1.0f64.to_bits().to_le_bytes()); // cpi
        }
        for _ in 0..data_rows {
            buf.extend_from_slice(&0.0f64.to_bits().to_le_bytes()); // residual
        }
        buf.extend(vec![0u8; data_rows]); // exceeded
        for _ in 0..METRIC_COUNT {
            for _ in 0..data_rows {
                buf.extend_from_slice(&metric.to_bits().to_le_bytes());
            }
        }
        for _ in 0..3 {
            buf.extend_from_slice(&0u32.to_le_bytes()); // events/sweeps/diagnoses
        }
        buf
    }

    fn expect_format_error(bytes: &[u8]) {
        assert!(matches!(
            HistoryStore::from_bytes(bytes),
            Err(HistoryFileError::Format(_))
        ));
    }

    #[test]
    fn crafted_baseline_is_well_formed() {
        let store = HistoryStore::from_bytes(&crafted(3, 3, &[0], 0, 1.0)).expect("valid");
        assert_eq!(store.rows(ContextId::from_index(0)), 3);
    }

    #[test]
    fn hostile_counts_fail_instead_of_allocating() {
        // A claimed row count near u64::MAX with no data behind it.
        expect_format_error(&crafted(u64::MAX, 0, &[0], 0, 1.0));
        expect_format_error(&crafted(u64::MAX / 8, 0, &[0], 0, 1.0));
        // A context id far past the dense-id cap.
        expect_format_error(&crafted(3, 3, &[0], u32::MAX, 1.0));
        // A label section claiming u32::MAX entries in an empty buffer.
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        expect_format_error(&bytes);
        // A run-start section claiming more entries than bytes remain.
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&0u32.to_le_bytes()); // no labels
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one log
        bytes.extend_from_slice(&0u32.to_le_bytes()); // ctx
        bytes.extend_from_slice(&0u64.to_le_bytes()); // rows
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // run count
        expect_format_error(&bytes);
        // An event section claiming u32::MAX records after a valid log.
        let mut bytes = crafted(3, 3, &[0], 0, 1.0);
        let events_at = bytes.len() - 12;
        bytes[events_at..events_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        expect_format_error(&bytes);
    }

    #[test]
    fn rejects_inconsistent_run_starts() {
        // First start not at row 0.
        expect_format_error(&crafted(3, 3, &[1], 0, 1.0));
        // A start beyond the recorded rows (would underflow window
        // scans).
        expect_format_error(&crafted(3, 3, &[0, 5], 0, 1.0));
        // Not strictly increasing.
        expect_format_error(&crafted(3, 3, &[0, 2, 2], 0, 1.0));
        // The run-boundary edge case is legal: a reset recorded after
        // the last row leaves the final start == rows.
        assert!(HistoryStore::from_bytes(&crafted(3, 3, &[0, 3], 0, 1.0)).is_ok());
    }

    #[test]
    fn rejects_unsorted_ticks_and_non_finite_metrics() {
        expect_format_error(&crafted(3, 3, &[0], 0, f64::NAN));
        expect_format_error(&crafted(3, 3, &[0], 0, f64::INFINITY));
        // Swap the first two tick labels so the column decreases.
        let mut bytes = crafted(3, 3, &[0], 0, 1.0);
        let ticks_at = MAGIC.len() + 4 + 4 + 4 + 8 + 4 + 8;
        let (a, b) = (ticks_at, ticks_at + 8);
        for i in 0..8 {
            bytes.swap(a + i, b + i);
        }
        expect_format_error(&bytes);
    }

    #[test]
    fn known_sections_round_trip_canonically() {
        let store = sample_store();
        store.set_section(REPLAY_SECTION, vec![1, 2, 3, 4, 5]);
        let bytes = store.to_bytes();
        let (loaded, warnings) =
            HistoryStore::from_bytes_with_warnings(&bytes).expect("well-formed");
        assert!(
            warnings.is_empty(),
            "known tags must not warn: {warnings:?}"
        );
        assert_eq!(loaded.section(REPLAY_SECTION), Some(vec![1, 2, 3, 4, 5]));
        assert_eq!(loaded.section(*b"none"), None);
        assert_eq!(loaded.to_bytes(), bytes);
        // Replacing a section keeps one copy under the tag.
        loaded.set_section(REPLAY_SECTION, vec![9]);
        assert_eq!(loaded.section(REPLAY_SECTION), Some(vec![9]));
        assert_eq!(loaded.section_tags(), vec![REPLAY_SECTION]);
    }

    #[test]
    fn unknown_trailing_section_loads_with_a_warning() {
        // A file written by a hypothetical newer ix-history: a valid body
        // followed by a section tag this version has never heard of.
        let mut bytes = crafted(3, 3, &[0], 0, 1.0);
        bytes.extend_from_slice(b"ZZT9");
        bytes.extend_from_slice(&6u32.to_le_bytes());
        bytes.extend_from_slice(b"future");
        let (store, warnings) =
            HistoryStore::from_bytes_with_warnings(&bytes).expect("forward-compat load");
        assert_eq!(store.rows(ContextId::from_index(0)), 3);
        assert_eq!(warnings.len(), 1);
        assert!(
            warnings[0].contains("ZZT9"),
            "the warning must name the tag: {}",
            warnings[0]
        );
        // The unknown section is preserved verbatim: canonical round-trip.
        assert_eq!(store.to_bytes(), bytes);
        assert_eq!(store.section(*b"ZZT9"), Some(b"future".to_vec()));
        // The warning-discarding entry point still loads the file.
        assert!(HistoryStore::from_bytes(&bytes).is_ok());
    }

    #[test]
    fn truncated_trailing_section_still_errors() {
        let base = crafted(3, 3, &[0], 0, 1.0);
        // Fewer bytes than a tag needs.
        let mut bytes = base.clone();
        bytes.extend_from_slice(b"ZZ");
        expect_format_error(&bytes);
        // A tag with no length frame.
        let mut bytes = base.clone();
        bytes.extend_from_slice(b"ZZT9");
        expect_format_error(&bytes);
        // A length frame promising more payload than remains.
        let mut bytes = base;
        bytes.extend_from_slice(b"ZZT9");
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(b"short");
        expect_format_error(&bytes);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            HistoryStore::from_bytes(b"not a history file"),
            Err(HistoryFileError::Format(_))
        ));
        let mut bytes = sample_store().to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(HistoryStore::from_bytes(&bytes).is_err());
        bytes = sample_store().to_bytes();
        bytes.push(0);
        assert!(HistoryStore::from_bytes(&bytes).is_err());
    }
}
