//! The file-backed segment format: `IXHIST01`.
//!
//! A saved store is one little-endian binary file:
//!
//! ```text
//! magic            8 bytes  b"IXHIST01"
//! labels           u32 count, then per label: u32 byte-length + UTF-8
//! context logs     u32 count, then per log:
//!   context        u32 dense id
//!   rows           u64
//!   run starts     u32 count + u64 each
//!   columns        rows × u64 ticks, rows × f64 cpi, rows × f64 residual,
//!                  rows × u8 exceeded, then METRIC_COUNT × rows f64
//!                  metric-major metric columns
//! events           u32 count, then per event: u32 byte-length + the
//!                  pinned JSON wire form from `ix-core`
//! sweeps           u32 count, length-prefixed JSON records
//! diagnoses        u32 count, length-prefixed JSON records
//! ```
//!
//! Floating-point columns are raw IEEE-754 bits, so a load reproduces the
//! saved values bit-exactly. The JSON sections ride on the wire encodings
//! pinned by tests in `ix-core` — a wire break fails there first.

use std::fmt;
use std::fs;
use std::path::Path;

use ix_core::EngineEvent;
use ix_metrics::METRIC_COUNT;

use crate::store::{ContextLog, DiagnosisRecord, HistoryStore, Inner, SweepRecord};

/// Leading magic of every history file (format name + version).
const MAGIC: &[u8; 8] = b"IXHIST01";

/// Why a history file failed to load.
#[derive(Debug)]
pub enum HistoryFileError {
    /// The underlying read or write failed.
    Io(std::io::Error),
    /// The bytes are not a well-formed `IXHIST01` file.
    Format(String),
}

impl fmt::Display for HistoryFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryFileError::Io(e) => write!(f, "history file I/O: {e}"),
            HistoryFileError::Format(msg) => write!(f, "malformed history file: {msg}"),
        }
    }
}

impl std::error::Error for HistoryFileError {}

impl From<std::io::Error> for HistoryFileError {
    fn from(e: std::io::Error) -> Self {
        HistoryFileError::Io(e)
    }
}

/// Sequential little-endian writer over a growable buffer.
#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64s(&mut self, vs: &[f64]) {
        for v in vs {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
}

/// Sequential little-endian reader with bounds-checked cursor.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], HistoryFileError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| HistoryFileError::Format(format!("truncated at byte {}", self.at)))?;
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, HistoryFileError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, HistoryFileError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, HistoryFileError> {
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect())
    }

    fn bytes(&mut self) -> Result<&'a [u8], HistoryFileError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn json<T: serde::Deserialize>(&mut self) -> Result<T, HistoryFileError> {
        let raw = self.bytes()?;
        let text = std::str::from_utf8(raw)
            .map_err(|e| HistoryFileError::Format(format!("non-UTF-8 JSON record: {e}")))?;
        serde_json::from_str(text).map_err(|e| HistoryFileError::Format(format!("bad record: {e}")))
    }
}

fn json_section<T: serde::Serialize>(w: &mut Writer, records: &[T]) {
    w.u32(records.len() as u32);
    for record in records {
        let text = serde_json::to_string(record).expect("wire forms always serialize");
        w.bytes(text.as_bytes());
    }
}

impl HistoryStore {
    /// Serializes the store into the `IXHIST01` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.with_inner(|inner| {
            let mut w = Writer::default();
            w.buf.extend_from_slice(MAGIC);
            // Labels: prefer the bound registry's current table so saved
            // files resolve ids without the live engine.
            let labels = match &inner.registry {
                Some(registry) => registry.labels(),
                None => inner.labels.clone(),
            };
            w.u32(labels.len() as u32);
            for label in &labels {
                w.bytes(label.as_bytes());
            }
            let logs: Vec<(usize, &ContextLog)> = inner
                .logs
                .iter()
                .enumerate()
                .filter_map(|(i, log)| log.as_ref().map(|log| (i, log)))
                .collect();
            w.u32(logs.len() as u32);
            for (ctx, log) in logs {
                w.u32(ctx as u32);
                w.u64(log.rows as u64);
                w.u32(log.run_starts.len() as u32);
                for &start in &log.run_starts {
                    w.u64(start as u64);
                }
                for seg in &log.segments {
                    for &t in seg.ticks() {
                        w.u64(t);
                    }
                }
                for seg in &log.segments {
                    w.f64s(seg.cpi());
                }
                for seg in &log.segments {
                    w.f64s(seg.residual());
                }
                for seg in &log.segments {
                    w.buf.extend(seg.exceeded().iter().map(|&b| u8::from(b)));
                }
                for m in 0..METRIC_COUNT {
                    for seg in &log.segments {
                        w.f64s(seg.column(m));
                    }
                }
            }
            json_section(&mut w, &inner.events);
            json_section(&mut w, &inner.sweeps);
            json_section(&mut w, &inner.diagnoses);
            w.buf
        })
    }

    /// Reconstructs a store from `IXHIST01` bytes.
    ///
    /// # Errors
    ///
    /// [`HistoryFileError::Format`] on a bad magic, truncation, or a JSON
    /// record that no longer parses.
    pub fn from_bytes(bytes: &[u8]) -> Result<HistoryStore, HistoryFileError> {
        let mut r = Reader { buf: bytes, at: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(HistoryFileError::Format(
                "missing IXHIST01 magic".to_string(),
            ));
        }
        let mut inner = Inner::default();
        let label_count = r.u32()? as usize;
        for _ in 0..label_count {
            let raw = r.bytes()?;
            let label = std::str::from_utf8(raw)
                .map_err(|e| HistoryFileError::Format(format!("non-UTF-8 label: {e}")))?;
            inner.labels.push(label.to_string());
        }
        let log_count = r.u32()? as usize;
        for _ in 0..log_count {
            let ctx = r.u32()? as usize;
            let rows = usize::try_from(r.u64()?)
                .map_err(|_| HistoryFileError::Format("row count overflow".to_string()))?;
            let run_count = r.u32()? as usize;
            let mut run_starts = Vec::with_capacity(run_count);
            for _ in 0..run_count {
                run_starts.push(
                    usize::try_from(r.u64()?)
                        .map_err(|_| HistoryFileError::Format("run start overflow".to_string()))?,
                );
            }
            if run_starts.first() != Some(&0) {
                return Err(HistoryFileError::Format(
                    "run starts must begin at row 0".to_string(),
                ));
            }
            let mut ticks = Vec::with_capacity(rows);
            for _ in 0..rows {
                ticks.push(r.u64()?);
            }
            let cpi = r.f64s(rows)?;
            let residual = r.f64s(rows)?;
            let exceeded: Vec<bool> = r.take(rows)?.iter().map(|&b| b != 0).collect();
            let mut columns = Vec::with_capacity(METRIC_COUNT);
            for _ in 0..METRIC_COUNT {
                columns.push(r.f64s(rows)?);
            }
            let mut log = ContextLog {
                segments: Vec::new(),
                rows: 0,
                run_starts,
            };
            let mut row = vec![0.0; METRIC_COUNT];
            for i in 0..rows {
                for (m, slot) in row.iter_mut().enumerate() {
                    *slot = columns[m][i];
                }
                log.push(ticks[i], cpi[i], residual[i], exceeded[i], &row);
            }
            let idx = ctx;
            if inner.logs.len() <= idx {
                inner.logs.resize_with(idx + 1, || None);
            }
            inner.logs[idx] = Some(log);
        }
        let event_count = r.u32()? as usize;
        for _ in 0..event_count {
            inner.events.push(r.json::<EngineEvent>()?);
        }
        let sweep_count = r.u32()? as usize;
        for _ in 0..sweep_count {
            inner.sweeps.push(r.json::<SweepRecord>()?);
        }
        let diagnosis_count = r.u32()? as usize;
        for _ in 0..diagnosis_count {
            inner.diagnoses.push(r.json::<DiagnosisRecord>()?);
        }
        if r.at != bytes.len() {
            return Err(HistoryFileError::Format(format!(
                "{} trailing bytes",
                bytes.len() - r.at
            )));
        }
        Ok(HistoryStore::from_inner(inner))
    }

    /// Saves the store to `path` in the `IXHIST01` format.
    ///
    /// # Errors
    ///
    /// [`HistoryFileError::Io`] when the write fails.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), HistoryFileError> {
        fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Loads a store saved with [`HistoryStore::save`].
    ///
    /// # Errors
    ///
    /// [`HistoryFileError::Io`] when the read fails,
    /// [`HistoryFileError::Format`] when the bytes are malformed.
    pub fn load(path: impl AsRef<Path>) -> Result<HistoryStore, HistoryFileError> {
        let bytes = fs::read(path)?;
        HistoryStore::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_core::{ContextId, Diagnosis, HistoryRecorder, RankedCause, ViolationTuple};
    use ix_metrics::MetricId;

    fn sample_store() -> HistoryStore {
        let store = HistoryStore::new();
        let ctx = ContextId::from_index(0);
        for t in 0..600u64 {
            let row: Vec<f64> = (0..METRIC_COUNT)
                .map(|m| (t as f64).mul_add(0.25, m as f64) + 0.125)
                .collect();
            store.record_tick(ctx, t, 1.5 + t as f64, 0.0625 * t as f64, t % 7 == 0, &row);
            if t == 199 {
                store.record_run_reset(ctx);
            }
        }
        store.record_event(&EngineEvent::DetectionFired {
            context: ctx,
            tick: 42,
        });
        store.record_sweep(ctx, 42, &[0.5, 0.25, 0.125], None);
        store.record_diagnosis(
            ctx,
            42,
            &Diagnosis {
                ranked: vec![RankedCause {
                    problem: "disk hog".to_string(),
                    similarity: 0.875,
                }],
                tuple: ViolationTuple::from_graded(vec![0.0, 0.5, 1.0]),
                degradation: None,
            },
        );
        store
    }

    #[test]
    fn bytes_round_trip_bit_exactly() {
        let store = sample_store();
        let bytes = store.to_bytes();
        let loaded = HistoryStore::from_bytes(&bytes).expect("well-formed");
        let ctx = ContextId::from_index(0);
        assert_eq!(loaded.rows(ctx), 600);
        assert_eq!(loaded.run_count(ctx), 2);
        assert_eq!(loaded.run_rows(ctx, 0), Some(0..200));
        assert_eq!(
            store.frame(ctx, 0..600).expect("frame"),
            loaded.frame(ctx, 0..600).expect("frame")
        );
        assert_eq!(
            store.series(ctx, MetricId::ALL[13], 100..550),
            loaded.series(ctx, MetricId::ALL[13], 100..550)
        );
        assert_eq!(
            store.cpi_series(ctx, 0..600),
            loaded.cpi_series(ctx, 0..600)
        );
        assert_eq!(store.events(), loaded.events());
        assert_eq!(store.sweeps(), loaded.sweeps());
        assert_eq!(store.diagnoses(), loaded.diagnoses());
        // Serialization is canonical: a save of the load reproduces the
        // original bytes.
        assert_eq!(loaded.to_bytes(), bytes);
    }

    #[test]
    fn save_and_load_via_file() {
        let store = sample_store();
        let path = std::env::temp_dir().join("ix-history-file-test.ixh");
        store.save(&path).expect("save");
        let loaded = HistoryStore::load(&path).expect("load");
        assert_eq!(loaded.to_bytes(), store.to_bytes());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            HistoryStore::from_bytes(b"not a history file"),
            Err(HistoryFileError::Format(_))
        ));
        let mut bytes = sample_store().to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(HistoryStore::from_bytes(&bytes).is_err());
        bytes = sample_store().to_bytes();
        bytes.push(0);
        assert!(HistoryStore::from_bytes(&bytes).is_err());
    }
}
