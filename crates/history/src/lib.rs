//! `ix-history`: the columnar history store behind InvarNet-X's RCA
//! query layer.
//!
//! The engine (`ix-core`) diagnoses one anomaly at a time and then forgets
//! it: the sliding window rolls on, the next sweep overwrites the last.
//! This crate is the engine's memory. A [`HistoryStore`] attached with
//! `Engine::builder().history(...)` receives the whole stream first-hand —
//! every accepted tick row, every [`ix_core::EngineEvent`], every sweep's
//! association scores and every finished diagnosis — and lays it out for
//! later interrogation:
//!
//! - **Tick columns** ([`TickSegment`]): per-context, append-only columnar
//!   segments — lifetime tick labels, the CPI sample, the detector
//!   residual/verdict, and the 26-wide metric row stored metric-major so a
//!   single metric's series over thousands of ticks is one contiguous
//!   `memcpy`-shaped scan.
//! - **The event log**: the exact [`ix_core::EngineEvent`] stream the
//!   engine's sink saw (the recorder is teed *behind* the sink), persisted
//!   through the pinned wire form in `ix-core`.
//! - **Sweep and diagnosis records** ([`SweepRecord`],
//!   [`DiagnosisRecord`]): the flat association-score triangle with its
//!   degradation tier, and the ranked [`ix_core::Diagnosis`], both stamped
//!   with the lifetime tick that produced them.
//!
//! Scans come in two shapes: *row ranges* ([`HistoryStore::frame`],
//! [`HistoryStore::series`]) and *time windows* over lifetime ticks
//! ([`HistoryStore::frame_for_ticks`], [`HistoryStore::rows_for_ticks`]).
//! Run boundaries are first-class ([`HistoryStore::run_count`],
//! [`HistoryStore::run_rows`]) because the engine's own diagnosis windows
//! never cross them.
//!
//! The store doubles as the engine's window server through the two-step
//! `HistoryRecorder::window_rows` / `HistoryRecorder::frame_rows`
//! protocol: under the ingest path's shard lock the engine captures the
//! row range of the current run's tail, and after the lock drops it
//! materializes exactly those rows — append-only columns guarantee the
//! range resolves to the same values even if concurrent ticks or resets
//! landed in between. A recorder-attached engine therefore diagnoses
//! *from history* and still produces output bit-identical to a
//! recorder-free twin.
//!
//! Stores round-trip through a little-endian binary segment file
//! ([`HistoryStore::save`] / [`HistoryStore::load`]); columns are written
//! as raw IEEE-754 bits, so saved values reload bit-exactly too.

#![warn(missing_docs)]

mod file;
mod segment;
mod store;

pub use file::{HistoryFileError, REPLAY_SECTION, SERVE_SECTION};
pub use segment::{TickSegment, SEGMENT_CAPACITY};
pub use store::{DiagnosisRecord, HistoryStore, HistoryStoreBuilder, SweepRecord};
