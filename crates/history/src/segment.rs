//! Columnar tick segments: the storage unit of a context's history.

use ix_metrics::METRIC_COUNT;

/// Rows per [`TickSegment`]. Small enough that a partially-filled tail
/// segment wastes little, large enough that column scans amortize the
/// per-segment bookkeeping.
pub const SEGMENT_CAPACITY: usize = 512;

/// A fixed-capacity columnar block of consecutive ticks for one context.
///
/// Scalar columns (`ticks`, `cpi`, `residual`, `exceeded`) are plain
/// vectors; the 26 metric columns live in one preallocated metric-major
/// buffer, so [`TickSegment::column`] is a contiguous slice — the layout
/// the query layer's series scans and the file format both read directly.
#[derive(Debug, Clone, PartialEq)]
pub struct TickSegment {
    cap: usize,
    /// Lifetime tick labels, strictly increasing within a segment.
    ticks: Vec<u64>,
    /// The CPI sample fed to the detector at each row.
    cpi: Vec<f64>,
    /// The detector residual at each row.
    residual: Vec<f64>,
    /// Whether the residual exceeded the detector threshold.
    exceeded: Vec<bool>,
    /// Metric-major storage: metric `m`'s column occupies
    /// `metrics[m * cap .. m * cap + len()]`.
    metrics: Vec<f64>,
}

impl TickSegment {
    /// An empty segment with the default [`SEGMENT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(SEGMENT_CAPACITY)
    }

    /// An empty segment holding up to `cap` rows.
    ///
    /// # Panics
    ///
    /// Panics when `cap == 0`.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "tick segment needs a non-zero capacity");
        TickSegment {
            cap,
            ticks: Vec::with_capacity(cap),
            cpi: Vec::with_capacity(cap),
            residual: Vec::with_capacity(cap),
            exceeded: Vec::with_capacity(cap),
            metrics: vec![0.0; cap * METRIC_COUNT],
        }
    }

    /// Rows stored so far.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// Whether the segment holds no rows.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// Whether the segment has reached its capacity.
    pub fn is_full(&self) -> bool {
        self.len() == self.cap
    }

    /// Maximum rows this segment can hold.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics when the segment is full or `row` is not `METRIC_COUNT`
    /// wide — both are recorder-side invariants, not data errors.
    pub fn push(&mut self, tick: u64, cpi: f64, residual: f64, exceeded: bool, row: &[f64]) {
        assert!(!self.is_full(), "push into a full tick segment");
        assert_eq!(row.len(), METRIC_COUNT, "metric row width");
        let at = self.len();
        self.ticks.push(tick);
        self.cpi.push(cpi);
        self.residual.push(residual);
        self.exceeded.push(exceeded);
        for (m, &v) in row.iter().enumerate() {
            self.metrics[m * self.cap + at] = v;
        }
    }

    /// The stored lifetime tick labels.
    pub fn ticks(&self) -> &[u64] {
        &self.ticks
    }

    /// The CPI column.
    pub fn cpi(&self) -> &[f64] {
        &self.cpi
    }

    /// The detector-residual column.
    pub fn residual(&self) -> &[f64] {
        &self.residual
    }

    /// The threshold-exceeded column.
    pub fn exceeded(&self) -> &[bool] {
        &self.exceeded
    }

    /// Metric `m`'s column as one contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics when `m >= METRIC_COUNT`.
    pub fn column(&self, m: usize) -> &[f64] {
        assert!(m < METRIC_COUNT, "metric index {m} out of range");
        &self.metrics[m * self.cap..m * self.cap + self.len()]
    }

    /// Copies row `i` (ordered per `MetricId::ALL`) into `out`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()` or `out` is not `METRIC_COUNT` wide.
    pub fn copy_row(&self, i: usize, out: &mut [f64]) {
        assert!(i < self.len(), "row {i} out of range");
        assert_eq!(out.len(), METRIC_COUNT, "output row width");
        for (m, slot) in out.iter_mut().enumerate() {
            *slot = self.metrics[m * self.cap + i];
        }
    }
}

impl Default for TickSegment {
    fn default() -> Self {
        TickSegment::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(base: f64) -> Vec<f64> {
        (0..METRIC_COUNT).map(|m| base + m as f64).collect()
    }

    #[test]
    fn columnar_layout_round_trips_rows() {
        let mut seg = TickSegment::with_capacity(4);
        assert!(seg.is_empty());
        for t in 0..3u64 {
            seg.push(t, 1.0 + t as f64, 0.1, t == 2, &row(t as f64 * 100.0));
        }
        assert_eq!(seg.len(), 3);
        assert!(!seg.is_full());
        assert_eq!(seg.ticks(), &[0, 1, 2]);
        assert_eq!(seg.cpi(), &[1.0, 2.0, 3.0]);
        assert_eq!(seg.exceeded(), &[false, false, true]);
        // Column 5 holds metric 5 across rows.
        assert_eq!(seg.column(5), &[5.0, 105.0, 205.0]);
        let mut out = vec![0.0; METRIC_COUNT];
        seg.copy_row(1, &mut out);
        assert_eq!(out, row(100.0));
    }

    #[test]
    fn fills_to_capacity() {
        let mut seg = TickSegment::with_capacity(2);
        seg.push(0, 0.0, 0.0, false, &row(0.0));
        seg.push(1, 0.0, 0.0, false, &row(1.0));
        assert!(seg.is_full());
        assert_eq!(seg.column(0).len(), 2);
    }

    #[test]
    #[should_panic(expected = "full tick segment")]
    fn push_past_capacity_panics() {
        let mut seg = TickSegment::with_capacity(1);
        seg.push(0, 0.0, 0.0, false, &row(0.0));
        seg.push(1, 0.0, 0.0, false, &row(1.0));
    }
}
