//! The [`HistoryStore`]: a thread-safe, append-only columnar history.

use std::ops::Range;
use std::sync::{Arc, PoisonError, RwLock};

use ix_core::{
    ContextId, ContextRegistry, Diagnosis, EngineEvent, HistoryRecorder, SweepDegradation,
};
use ix_metrics::{MetricFrame, MetricId, METRIC_COUNT};
use serde::{Deserialize, Serialize};

use crate::segment::{TickSegment, SEGMENT_CAPACITY};

/// One sweep's association scores: the flat upper-triangle (indexed by
/// `ix_core::pair_index`) plus the degradation tier that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRecord {
    /// The context the sweep ran for.
    pub context: ContextId,
    /// Lifetime tick of the diagnosis that triggered the sweep.
    pub tick: u64,
    /// The flat pairwise score triangle.
    pub scores: Vec<f64>,
    /// `None` for a full-fidelity sweep; otherwise the tier served.
    pub degradation: Option<SweepDegradation>,
}

/// One finished cause-inference pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnosisRecord {
    /// The context diagnosed.
    pub context: ContextId,
    /// Lifetime tick of the anomaly onset.
    pub tick: u64,
    /// The ranked diagnosis, exactly as the engine returned it.
    pub diagnosis: Diagnosis,
}

/// Per-context tick log: a chain of columnar segments plus run boundaries.
#[derive(Debug, Clone, Default)]
pub(crate) struct ContextLog {
    pub(crate) segments: Vec<TickSegment>,
    pub(crate) rows: usize,
    /// Row index at which each run started; the last entry is the current
    /// run. Never empty once the log exists.
    pub(crate) run_starts: Vec<usize>,
}

impl ContextLog {
    fn new() -> Self {
        ContextLog {
            segments: Vec::new(),
            rows: 0,
            run_starts: vec![0],
        }
    }

    pub(crate) fn push(&mut self, tick: u64, cpi: f64, residual: f64, exceeded: bool, row: &[f64]) {
        if self.segments.last().is_none_or(TickSegment::is_full) {
            self.segments.push(TickSegment::new());
        }
        let seg = self.segments.last_mut().expect("segment pushed above");
        seg.push(tick, cpi, residual, exceeded, row);
        self.rows += 1;
    }

    fn mark_run(&mut self) {
        let last = *self.run_starts.last().expect("run_starts is never empty");
        // Consecutive resets with no rows between them are one boundary.
        if self.rows > last {
            self.run_starts.push(self.rows);
        }
    }

    /// Splits a global row index into (segment, offset).
    fn locate(&self, row: usize) -> (usize, usize) {
        // All segments but the last are full, so the split is arithmetic.
        (row / SEGMENT_CAPACITY, row % SEGMENT_CAPACITY)
    }

    fn frame(&self, range: Range<usize>) -> MetricFrame {
        let mut frame = MetricFrame::new();
        let mut row = vec![0.0; METRIC_COUNT];
        for i in range {
            let (seg, off) = self.locate(i);
            self.segments[seg].copy_row(off, &mut row);
            frame
                .push_tick(&row)
                .expect("history rows were validated on ingest");
        }
        frame
    }

    /// Concatenates one column over a row range via contiguous per-segment
    /// slices.
    fn gather(&self, range: Range<usize>, column: impl Fn(&TickSegment) -> &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(range.len());
        let mut i = range.start;
        while i < range.end {
            let (seg, off) = self.locate(i);
            let col = column(&self.segments[seg]);
            let take = (range.end - i).min(col.len() - off);
            out.extend_from_slice(&col[off..off + take]);
            i += take;
        }
        out
    }

    /// First row whose lifetime tick is `>= tick` (rows are tick-sorted).
    fn partition(&self, tick: u64) -> usize {
        let mut base = 0;
        for seg in &self.segments {
            let ticks = seg.ticks();
            match ticks.last() {
                Some(&last) if last < tick => base += ticks.len(),
                _ => return base + ticks.partition_point(|&t| t < tick),
            }
        }
        base
    }
}

#[derive(Debug, Default)]
pub(crate) struct Inner {
    /// Per-context logs, indexed by `ContextId::index()`.
    pub(crate) logs: Vec<Option<ContextLog>>,
    /// The engine's event stream, in emission order.
    pub(crate) events: Vec<EngineEvent>,
    pub(crate) sweeps: Vec<SweepRecord>,
    pub(crate) diagnoses: Vec<DiagnosisRecord>,
    /// Labels resolved from the bound registry (or loaded from a file).
    pub(crate) labels: Vec<String>,
    pub(crate) registry: Option<Arc<ContextRegistry>>,
    /// Tagged trailing sections carried at the end of the `IXHIST01`
    /// image, in file order. Known tags (e.g. the replay header) are
    /// interpreted by their owners; unknown tags are preserved verbatim so
    /// saving a loaded file stays byte-canonical.
    pub(crate) sections: Vec<([u8; 4], Vec<u8>)>,
}

impl Inner {
    fn log(&self, context: ContextId) -> Option<&ContextLog> {
        self.logs.get(context.index())?.as_ref()
    }

    fn log_mut(&mut self, context: ContextId) -> &mut ContextLog {
        let idx = context.index();
        if self.logs.len() <= idx {
            self.logs.resize_with(idx + 1, || None);
        }
        self.logs[idx].get_or_insert_with(ContextLog::new)
    }
}

/// The columnar engine history: per-context tick columns, the event log,
/// and sweep/diagnosis records, behind one `RwLock`.
///
/// Attach a shared store with `Engine::builder().history(store)`; query it
/// directly or through `ix-query`. All appends take the write lock
/// briefly; scans take the read lock and copy out, so queries never block
/// ingestion for longer than their own copy.
#[derive(Debug, Default)]
pub struct HistoryStore {
    inner: RwLock<Inner>,
}

/// Assembles a [`HistoryStore`] in one expression; obtain one from
/// [`HistoryStore::builder`] and finish with
/// [`HistoryStoreBuilder::build`] (or [`HistoryStoreBuilder::shared`] for
/// the `Arc`-wrapped form every engine attachment wants).
#[must_use = "builder methods return the builder; call .build() or .shared() to produce the store"]
#[derive(Debug, Default)]
pub struct HistoryStoreBuilder {
    registry: Option<Arc<ContextRegistry>>,
    sections: Vec<([u8; 4], Vec<u8>)>,
}

impl HistoryStoreBuilder {
    /// Binds a context registry up front, so labels resolve before the
    /// store is ever attached to an engine (attachment re-binds to the
    /// engine's registry either way).
    pub fn registry(mut self, registry: &Arc<ContextRegistry>) -> Self {
        self.registry = Some(Arc::clone(registry));
        self
    }

    /// Seeds a trailing section (tag + opaque payload) the store will
    /// carry into its `IXHIST01` image. May be called multiple times; a
    /// repeated tag replaces the earlier payload.
    pub fn section(mut self, tag: [u8; 4], payload: Vec<u8>) -> Self {
        match self.sections.iter_mut().find(|(t, _)| *t == tag) {
            Some((_, existing)) => *existing = payload,
            None => self.sections.push((tag, payload)),
        }
        self
    }

    /// The finished store.
    pub fn build(self) -> HistoryStore {
        HistoryStore::from_inner(Inner {
            registry: self.registry,
            sections: self.sections,
            ..Inner::default()
        })
    }

    /// The finished store behind an [`Arc`], ready to hand to
    /// `Engine::builder().history(...)` and keep for querying.
    pub fn shared(self) -> Arc<HistoryStore> {
        Arc::new(self.build())
    }
}

impl HistoryStore {
    /// An empty store.
    pub fn new() -> Self {
        HistoryStore::default()
    }

    /// The builder-first construction path.
    pub fn builder() -> HistoryStoreBuilder {
        HistoryStoreBuilder::default()
    }

    /// An empty store behind an [`Arc`], ready to hand to
    /// `Engine::builder().history(...)` and keep for querying.
    #[deprecated(since = "0.1.0", note = "use `HistoryStore::builder().shared()`")]
    pub fn shared() -> Arc<Self> {
        Arc::new(HistoryStore::new())
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Inner> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn from_inner(inner: Inner) -> Self {
        HistoryStore {
            inner: RwLock::new(inner),
        }
    }

    pub(crate) fn with_inner<T>(&self, f: impl FnOnce(&Inner) -> T) -> T {
        f(&self.read())
    }

    /// Contexts with at least one recorded tick, in id order.
    pub fn contexts(&self) -> Vec<ContextId> {
        let inner = self.read();
        inner
            .logs
            .iter()
            .enumerate()
            .filter(|(_, log)| log.is_some())
            .map(|(i, _)| ContextId::from_index(i))
            .collect()
    }

    /// Rows recorded for `context` (0 when unknown).
    pub fn rows(&self, context: ContextId) -> usize {
        self.read().log(context).map_or(0, |log| log.rows)
    }

    /// Total rows recorded across all contexts.
    pub fn tick_count(&self) -> usize {
        let inner = self.read();
        inner.logs.iter().flatten().map(|log| log.rows).sum()
    }

    /// The display label of a recorded context. Falls back to the bound
    /// registry's rendering, then to `"(context N)"`.
    pub fn label(&self, context: ContextId) -> String {
        let inner = self.read();
        if let Some(label) = inner.labels.get(context.index()) {
            return label.clone();
        }
        match &inner.registry {
            Some(registry) => registry.label(context),
            None => format!("(context {})", context.index()),
        }
    }

    /// The metric rows `range` (row indices) as a batch frame. `None` when
    /// the context is unknown or the range exceeds the recorded rows.
    pub fn frame(&self, context: ContextId, range: Range<usize>) -> Option<MetricFrame> {
        let inner = self.read();
        let log = inner.log(context)?;
        (range.start <= range.end && range.end <= log.rows).then(|| log.frame(range))
    }

    /// One metric's series over a row range — a contiguous columnar scan.
    pub fn series(
        &self,
        context: ContextId,
        metric: MetricId,
        range: Range<usize>,
    ) -> Option<Vec<f64>> {
        let inner = self.read();
        let log = inner.log(context)?;
        (range.start <= range.end && range.end <= log.rows)
            .then(|| log.gather(range, |seg| seg.column(metric.index())))
    }

    /// The CPI column over a row range.
    pub fn cpi_series(&self, context: ContextId, range: Range<usize>) -> Option<Vec<f64>> {
        let inner = self.read();
        let log = inner.log(context)?;
        (range.start <= range.end && range.end <= log.rows)
            .then(|| log.gather(range, TickSegment::cpi))
    }

    /// The detector-residual column over a row range.
    pub fn residual_series(&self, context: ContextId, range: Range<usize>) -> Option<Vec<f64>> {
        let inner = self.read();
        let log = inner.log(context)?;
        (range.start <= range.end && range.end <= log.rows)
            .then(|| log.gather(range, TickSegment::residual))
    }

    /// The detector threshold-exceeded column over a row range.
    pub fn exceeded_series(&self, context: ContextId, range: Range<usize>) -> Option<Vec<bool>> {
        let inner = self.read();
        let log = inner.log(context)?;
        if range.start > range.end || range.end > log.rows {
            return None;
        }
        let mut out = Vec::with_capacity(range.len());
        let mut i = range.start;
        while i < range.end {
            let (seg, off) = log.locate(i);
            let col = log.segments[seg].exceeded();
            let take = (range.end - i).min(col.len() - off);
            out.extend_from_slice(&col[off..off + take]);
            i += take;
        }
        Some(out)
    }

    /// The lifetime tick labels over a row range.
    pub fn tick_labels(&self, context: ContextId, range: Range<usize>) -> Option<Vec<u64>> {
        let inner = self.read();
        let log = inner.log(context)?;
        if range.start > range.end || range.end > log.rows {
            return None;
        }
        let mut out = Vec::with_capacity(range.len());
        let mut i = range.start;
        while i < range.end {
            let (seg, off) = log.locate(i);
            let col = log.segments[seg].ticks();
            let take = (range.end - i).min(col.len() - off);
            out.extend_from_slice(&col[off..off + take]);
            i += take;
        }
        Some(out)
    }

    /// The row holding lifetime tick `tick` exactly, if recorded.
    pub fn row_of_tick(&self, context: ContextId, tick: u64) -> Option<usize> {
        let inner = self.read();
        let log = inner.log(context)?;
        let at = log.partition(tick);
        let (seg, off) = log.locate(at);
        (at < log.rows && log.segments[seg].ticks()[off] == tick).then_some(at)
    }

    /// The row range whose lifetime ticks fall in `ticks`
    /// (half-open) — the time-window scan primitive.
    pub fn rows_for_ticks(&self, context: ContextId, ticks: Range<u64>) -> Option<Range<usize>> {
        let inner = self.read();
        let log = inner.log(context)?;
        let start = log.partition(ticks.start);
        let end = log.partition(ticks.end);
        Some(start..end.max(start))
    }

    /// The metric rows of a lifetime-tick window as a batch frame.
    pub fn frame_for_ticks(&self, context: ContextId, ticks: Range<u64>) -> Option<MetricFrame> {
        let range = self.rows_for_ticks(context, ticks)?;
        self.frame(context, range)
    }

    /// Number of runs recorded for the context (a run boundary is marked
    /// by the engine whenever the context's sliding window is discarded).
    pub fn run_count(&self, context: ContextId) -> usize {
        self.read()
            .log(context)
            .map_or(0, |log| log.run_starts.len())
    }

    /// The row range of run `run` (0-based, in boundary order).
    pub fn run_rows(&self, context: ContextId, run: usize) -> Option<Range<usize>> {
        let inner = self.read();
        let log = inner.log(context)?;
        let start = *log.run_starts.get(run)?;
        let end = log.run_starts.get(run + 1).copied().unwrap_or(log.rows);
        Some(start..end)
    }

    /// The last `max_ticks` rows of the context's *current run* as a
    /// frame — the store's view of the engine's diagnosis window.
    ///
    /// This reads the run tail live, so under concurrent ingest it is a
    /// moving target; the engine itself snapshots the window race-free
    /// through the two-step [`HistoryRecorder::window_rows`] /
    /// [`HistoryRecorder::frame_rows`] protocol instead.
    pub fn window_frame(&self, context: ContextId, max_ticks: usize) -> Option<MetricFrame> {
        let rows = HistoryRecorder::window_rows(self, context, max_ticks)?;
        self.frame(context, rows)
    }

    /// The full event log, in emission order.
    pub fn events(&self) -> Vec<EngineEvent> {
        self.read().events.clone()
    }

    /// Events attributed to one context, in emission order.
    pub fn events_for(&self, context: ContextId) -> Vec<EngineEvent> {
        self.read()
            .events
            .iter()
            .filter(|e| e.context() == context)
            .copied()
            .collect()
    }

    /// All sweep records, in recording order.
    pub fn sweeps(&self) -> Vec<SweepRecord> {
        self.read().sweeps.clone()
    }

    /// Sweep records for one context.
    pub fn sweeps_for(&self, context: ContextId) -> Vec<SweepRecord> {
        self.read()
            .sweeps
            .iter()
            .filter(|s| s.context == context)
            .cloned()
            .collect()
    }

    /// All diagnosis records, in recording order.
    pub fn diagnoses(&self) -> Vec<DiagnosisRecord> {
        self.read().diagnoses.clone()
    }

    /// Diagnosis records for one context.
    pub fn diagnoses_for(&self, context: ContextId) -> Vec<DiagnosisRecord> {
        self.read()
            .diagnoses
            .iter()
            .filter(|d| d.context == context)
            .cloned()
            .collect()
    }

    /// The payload of the trailing section tagged `tag`, if present.
    ///
    /// Sections are the format's forward-compat extension point: a
    /// four-byte tag plus an opaque payload appended after the diagnosis
    /// log (see the `IXHIST01` layout in the crate docs). `ix-replay`
    /// stores its config/seed header under `REPLAY_SECTION`.
    pub fn section(&self, tag: [u8; 4]) -> Option<Vec<u8>> {
        self.read()
            .sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, payload)| payload.clone())
    }

    /// Installs (or replaces) the trailing section tagged `tag`.
    pub fn set_section(&self, tag: [u8; 4], payload: Vec<u8>) {
        let mut inner = self.write();
        match inner.sections.iter_mut().find(|(t, _)| *t == tag) {
            Some((_, existing)) => *existing = payload,
            None => inner.sections.push((tag, payload)),
        }
    }

    /// The tags of all trailing sections, in file order.
    pub fn section_tags(&self) -> Vec<[u8; 4]> {
        self.read().sections.iter().map(|(t, _)| *t).collect()
    }
}

impl HistoryRecorder for HistoryStore {
    fn record_tick(
        &self,
        context: ContextId,
        tick: u64,
        cpi: f64,
        residual: f64,
        exceeded: bool,
        row: &[f64],
    ) {
        // The sentinel has no log slot; the engine never ingests under it,
        // so an unattributed row is dropped rather than misfiled.
        if context.is_unattributed() {
            return;
        }
        let mut inner = self.write();
        inner
            .log_mut(context)
            .push(tick, cpi, residual, exceeded, row);
    }

    fn record_run_reset(&self, context: ContextId) {
        if context.is_unattributed() {
            return;
        }
        let mut inner = self.write();
        inner.log_mut(context).mark_run();
    }

    fn record_event(&self, event: &EngineEvent) {
        self.write().events.push(*event);
    }

    fn record_sweep(
        &self,
        context: ContextId,
        tick: u64,
        scores: &[f64],
        degradation: Option<SweepDegradation>,
    ) {
        self.write().sweeps.push(SweepRecord {
            context,
            tick,
            scores: scores.to_vec(),
            degradation,
        });
    }

    fn record_diagnosis(&self, context: ContextId, tick: u64, diagnosis: &Diagnosis) {
        self.write().diagnoses.push(DiagnosisRecord {
            context,
            tick,
            diagnosis: diagnosis.clone(),
        });
    }

    fn bind_registry(&self, registry: &Arc<ContextRegistry>) {
        self.write().registry = Some(Arc::clone(registry));
    }

    fn window_rows(&self, context: ContextId, max_ticks: usize) -> Option<Range<usize>> {
        let inner = self.read();
        let log = inner.log(context)?;
        let start = *log.run_starts.last().expect("run_starts is never empty");
        // The engine's sliding window holds at least one tick even when
        // configured with zero, so mirror that floor for bit-exactness.
        let take = (log.rows - start).min(max_ticks.max(1));
        Some(log.rows - take..log.rows)
    }

    // Rows are append-only, so a range captured by `window_rows` under
    // the engine's shard lock materializes the same values here even
    // after concurrent ticks or run resets have landed.
    fn frame_rows(&self, context: ContextId, rows: Range<usize>) -> Option<MetricFrame> {
        self.frame(context, rows)
    }

    fn segment_count(&self, context: ContextId) -> Option<u64> {
        self.read()
            .log(context)
            .map(|log| log.segments.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(base: f64) -> Vec<f64> {
        (0..METRIC_COUNT).map(|m| base + m as f64).collect()
    }

    fn store_with_rows(n: usize) -> (HistoryStore, ContextId) {
        let store = HistoryStore::new();
        let ctx = ContextId::from_index(0);
        for t in 0..n {
            store.record_tick(ctx, t as u64 * 2, 1.0, 0.0, false, &row(t as f64));
        }
        (store, ctx)
    }

    #[test]
    fn rows_and_frames_round_trip() {
        let (store, ctx) = store_with_rows(700);
        assert_eq!(store.rows(ctx), 700);
        assert_eq!(store.tick_count(), 700);
        assert_eq!(store.contexts(), vec![ctx]);
        // The range crosses the 512-row segment boundary.
        let frame = store.frame(ctx, 500..520).expect("in range");
        assert_eq!(frame.ticks(), 20);
        assert_eq!(frame.get(0, MetricId::ALL[3]), 500.0 + 3.0);
        assert_eq!(frame.get(19, MetricId::ALL[0]), 519.0);
        assert!(store.frame(ctx, 0..701).is_none());
        assert!(store.frame(ContextId::from_index(9), 0..1).is_none());
    }

    #[test]
    fn columnar_series_scans() {
        let (store, ctx) = store_with_rows(600);
        let series = store
            .series(ctx, MetricId::ALL[7], 510..514)
            .expect("in range");
        assert_eq!(series, vec![517.0, 518.0, 519.0, 520.0]);
        let cpi = store.cpi_series(ctx, 0..3).expect("in range");
        assert_eq!(cpi, vec![1.0, 1.0, 1.0]);
        assert_eq!(
            store.tick_labels(ctx, 511..513).expect("in range"),
            vec![1022, 1024]
        );
    }

    #[test]
    fn time_window_scans_by_lifetime_tick() {
        let (store, ctx) = store_with_rows(100);
        // Ticks are 0, 2, 4, ... — tick 50 sits at row 25.
        assert_eq!(store.row_of_tick(ctx, 50), Some(25));
        assert_eq!(store.row_of_tick(ctx, 51), None);
        assert_eq!(store.rows_for_ticks(ctx, 50..60), Some(25..30));
        let frame = store.frame_for_ticks(ctx, 50..60).expect("window");
        assert_eq!(frame.ticks(), 5);
        assert_eq!(frame.get(0, MetricId::ALL[0]), 25.0);
    }

    #[test]
    fn run_boundaries_window_the_current_run() {
        let store = HistoryStore::new();
        let ctx = ContextId::from_index(2);
        for t in 0..10u64 {
            store.record_tick(ctx, t, 1.0, 0.0, false, &row(t as f64));
        }
        store.record_run_reset(ctx);
        store.record_run_reset(ctx); // back-to-back resets collapse
        for t in 10..14u64 {
            store.record_tick(ctx, t, 1.0, 0.0, false, &row(t as f64));
        }
        assert_eq!(store.run_count(ctx), 2);
        assert_eq!(store.run_rows(ctx, 0), Some(0..10));
        assert_eq!(store.run_rows(ctx, 1), Some(10..14));
        // The served window never crosses the run boundary.
        let window = store.window_frame(ctx, 8).expect("window");
        assert_eq!(window.ticks(), 4);
        assert_eq!(window.get(0, MetricId::ALL[0]), 10.0);
        // And is capped by max_ticks within a long run.
        let window = store.window_frame(ctx, 3).expect("window");
        assert_eq!(window.ticks(), 3);
        assert_eq!(window.get(0, MetricId::ALL[0]), 11.0);
    }

    #[test]
    fn window_row_snapshots_survive_concurrent_appends_and_resets() {
        let store = HistoryStore::new();
        let ctx = ContextId::from_index(0);
        for t in 0..10u64 {
            store.record_tick(ctx, t, 1.0, 0.0, false, &row(t as f64));
        }
        let rows = store.window_rows(ctx, 4).expect("window rows");
        assert_eq!(rows, 6..10);
        let before = store.frame_rows(ctx, rows.clone()).expect("frame");
        // Later ingest and run resets of the same context must not move
        // what a captured range resolves to (the engine relies on this
        // between releasing the shard lock and diagnosing).
        store.record_run_reset(ctx);
        for t in 10..30u64 {
            store.record_tick(ctx, t, 9.0, 9.0, true, &row(100.0 + t as f64));
        }
        let after = store.frame_rows(ctx, rows).expect("frame");
        assert_eq!(before, after);
        assert_eq!(after.get(0, MetricId::ALL[0]), 6.0);
        // And the convenience view now serves the new run's tail instead.
        let live = store.window_frame(ctx, 4).expect("window");
        assert_eq!(live.get(0, MetricId::ALL[0]), 126.0);
    }

    #[test]
    fn event_sweep_and_diagnosis_logs() {
        let store = HistoryStore::new();
        let ctx = ContextId::from_index(1);
        let other = ContextId::from_index(3);
        store.record_event(&EngineEvent::DetectionFired {
            context: ctx,
            tick: 5,
        });
        store.record_event(&EngineEvent::DetectionCleared {
            context: other,
            tick: 6,
        });
        store.record_sweep(ctx, 5, &[0.5, 0.25], None);
        let diagnosis = Diagnosis {
            ranked: Vec::new(),
            tuple: ix_core::ViolationTuple::from_graded(vec![0.0, 1.0]),
            degradation: None,
        };
        store.record_diagnosis(ctx, 5, &diagnosis);
        assert_eq!(store.events().len(), 2);
        assert_eq!(store.events_for(ctx).len(), 1);
        assert_eq!(store.sweeps_for(ctx)[0].scores, vec![0.5, 0.25]);
        assert_eq!(store.diagnoses_for(ctx)[0].diagnosis, diagnosis);
        assert_eq!(store.diagnoses().len(), 1);
        assert!(store.sweeps_for(other).is_empty());
    }

    #[test]
    fn labels_fall_back_without_registry() {
        let store = HistoryStore::new();
        assert_eq!(store.label(ContextId::from_index(4)), "(context 4)");
        let registry = Arc::new(ContextRegistry::new());
        let id = registry.intern(&ix_core::OperationContext::new("node1", "Wordcount"));
        store.bind_registry(&registry);
        assert_eq!(store.label(id), registry.label(id));
    }
}
