use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{MetricId, METRIC_COUNT};

/// Errors produced by [`MetricFrame`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameError {
    /// A pushed tick did not contain exactly [`METRIC_COUNT`] values.
    WrongWidth {
        /// Values supplied.
        got: usize,
    },
    /// A sample was NaN or infinite.
    NonFinite {
        /// The metric whose sample was invalid.
        metric: MetricId,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::WrongWidth { got } => {
                write!(f, "tick must contain {METRIC_COUNT} values, got {got}")
            }
            FrameError::NonFinite { metric } => {
                write!(f, "non-finite sample for metric {metric}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// A ticks × metrics table of samples for one node during one job run.
///
/// Row-major storage: `values[tick * METRIC_COUNT + metric_index]`. The
/// metric order is [`MetricId::ALL`]. All samples are finite by
/// construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricFrame {
    interval_secs: f64,
    values: Vec<f64>,
}

impl MetricFrame {
    /// Creates an empty frame with the paper's 10 s cadence.
    pub fn new() -> Self {
        Self::with_interval(10.0)
    }

    /// Creates an empty frame with an explicit sampling interval.
    pub fn with_interval(interval_secs: f64) -> Self {
        MetricFrame {
            interval_secs,
            values: Vec::new(),
        }
    }

    /// Sampling interval in seconds.
    pub fn interval_secs(&self) -> f64 {
        self.interval_secs
    }

    /// Number of ticks recorded.
    pub fn ticks(&self) -> usize {
        self.values.len() / METRIC_COUNT
    }

    /// Whether no ticks have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends one tick of samples ordered per [`MetricId::ALL`].
    ///
    /// # Errors
    ///
    /// [`FrameError::WrongWidth`] or [`FrameError::NonFinite`].
    pub fn push_tick(&mut self, samples: &[f64]) -> Result<(), FrameError> {
        if samples.len() != METRIC_COUNT {
            return Err(FrameError::WrongWidth { got: samples.len() });
        }
        for (i, &v) in samples.iter().enumerate() {
            if !v.is_finite() {
                return Err(FrameError::NonFinite {
                    metric: MetricId::ALL[i],
                });
            }
        }
        self.values.extend_from_slice(samples);
        Ok(())
    }

    /// The value of `metric` at `tick`.
    ///
    /// # Panics
    ///
    /// Panics when `tick >= ticks()`.
    pub fn get(&self, tick: usize, metric: MetricId) -> f64 {
        assert!(tick < self.ticks(), "tick {tick} out of range");
        self.values[tick * METRIC_COUNT + metric.index()]
    }

    /// The full series of one metric as an owned vector.
    pub fn series(&self, metric: MetricId) -> Vec<f64> {
        let idx = metric.index();
        (0..self.ticks())
            .map(|t| self.values[t * METRIC_COUNT + idx])
            .collect()
    }

    /// One tick as a slice ordered per [`MetricId::ALL`].
    ///
    /// # Panics
    ///
    /// Panics when `tick >= ticks()`.
    pub fn tick(&self, tick: usize) -> &[f64] {
        assert!(tick < self.ticks(), "tick {tick} out of range");
        &self.values[tick * METRIC_COUNT..(tick + 1) * METRIC_COUNT]
    }

    /// The raw row-major value storage (`ticks() * METRIC_COUNT` samples).
    /// Callers that need a cheap identity for the frame's contents — e.g.
    /// a sweep-result cache — fingerprint this slice directly.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// A frame containing only ticks in `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the recorded ticks.
    pub fn window(&self, range: std::ops::Range<usize>) -> MetricFrame {
        MetricFrame {
            interval_secs: self.interval_secs,
            values: self.values[range.start * METRIC_COUNT..range.end * METRIC_COUNT].to_vec(),
        }
    }

    /// Concatenates another frame's ticks onto this one.
    pub fn extend(&mut self, other: &MetricFrame) {
        self.values.extend_from_slice(&other.values);
    }
}

impl Default for MetricFrame {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick_of(v: f64) -> Vec<f64> {
        vec![v; METRIC_COUNT]
    }

    #[test]
    fn push_and_read_back() {
        let mut f = MetricFrame::new();
        f.push_tick(&tick_of(1.0)).unwrap();
        let mut t2 = tick_of(2.0);
        t2[MetricId::CpuUser.index()] = 42.0;
        f.push_tick(&t2).unwrap();
        assert_eq!(f.ticks(), 2);
        assert_eq!(f.get(1, MetricId::CpuUser), 42.0);
        assert_eq!(f.get(0, MetricId::MemFree), 1.0);
        assert_eq!(f.series(MetricId::CpuUser), vec![1.0, 42.0]);
    }

    #[test]
    fn rejects_wrong_width() {
        let mut f = MetricFrame::new();
        assert_eq!(
            f.push_tick(&[1.0; 5]).unwrap_err(),
            FrameError::WrongWidth { got: 5 }
        );
    }

    #[test]
    fn rejects_non_finite_and_identifies_metric() {
        let mut f = MetricFrame::new();
        let mut t = tick_of(0.0);
        t[MetricId::PageFaults.index()] = f64::NAN;
        assert_eq!(
            f.push_tick(&t).unwrap_err(),
            FrameError::NonFinite {
                metric: MetricId::PageFaults
            }
        );
        assert!(f.is_empty());
    }

    #[test]
    fn window_and_extend() {
        let mut f = MetricFrame::new();
        for i in 0..10 {
            f.push_tick(&tick_of(i as f64)).unwrap();
        }
        let w = f.window(3..6);
        assert_eq!(w.ticks(), 3);
        assert_eq!(w.get(0, MetricId::CpuUser), 3.0);

        let mut g = MetricFrame::new();
        g.push_tick(&tick_of(99.0)).unwrap();
        g.extend(&w);
        assert_eq!(g.ticks(), 4);
        assert_eq!(g.get(3, MetricId::CpuUser), 5.0);
    }

    #[test]
    fn tick_slice_ordering() {
        let mut f = MetricFrame::new();
        let t: Vec<f64> = (0..METRIC_COUNT).map(|i| i as f64).collect();
        f.push_tick(&t).unwrap();
        assert_eq!(f.tick(0), t.as_slice());
    }
}
