//! Performance-metric catalog and sample storage for InvarNet-X.
//!
//! The paper collects **26 OS/process metrics** with `collectl` ("not only
//! coarse-grained CPU, memory, disk and network utilization but also the
//! fine-grained metrics such as CPU context switch per second, memory page
//! faults") and **CPI** (cycles per instruction) with `perf`, both at a 10 s
//! cadence. This crate defines:
//!
//! - [`MetricId`] — the closed set of 26 metrics, with collectl-style names
//!   and units;
//! - [`MetricFrame`] — a ticks × metrics sample table for one node and one
//!   job run, with CSV round-tripping;
//! - [`SlidingFrame`] — a bounded ring-buffered window over the most recent
//!   ticks, for streaming ingestion;
//! - [`CpiTrace`] — raw cycle/instruction counter readings and the derived
//!   CPI series.

mod catalog;
mod cpi;
mod csv;
mod frame;
mod sliding;

pub use catalog::{MetricCategory, MetricId, METRIC_COUNT};
pub use cpi::{CpiSample, CpiTrace};
pub use csv::CsvError;
pub use frame::{FrameError, MetricFrame};
pub use sliding::SlidingFrame;
