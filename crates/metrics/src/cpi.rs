use serde::{Deserialize, Serialize};

/// One reading of the hardware performance counters for a process: raw cycle
/// and retired-instruction counts over a sampling interval (the paper reads
/// these "by reading the corresponding registers in the hardware performance
/// counter on a per process basis" with `perf`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpiSample {
    /// CPU cycles consumed during the interval.
    pub cycles: u64,
    /// Instructions retired during the interval.
    pub instructions: u64,
}

impl CpiSample {
    /// Cycles per instruction. A zero instruction count (completely stalled
    /// or suspended process) is reported as `f64::INFINITY`-avoiding large
    /// sentinel: CPI equal to the cycle count, i.e. as if one instruction
    /// retired — pathological stalls should look *very* expensive, not
    /// poison downstream statistics with infinities.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            self.cycles as f64
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

/// A sequence of counter readings at a fixed cadence, plus derived views.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CpiTrace {
    samples: Vec<CpiSample>,
}

impl CpiTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        CpiTrace::default()
    }

    /// Creates a trace directly from CPI values (for simulators that model
    /// CPI rather than raw counters): each value is converted to a
    /// cycles/instructions pair with a nominal 1e9 instruction base.
    pub fn from_cpi_values(cpis: &[f64]) -> Self {
        const BASE: f64 = 1.0e9;
        CpiTrace {
            samples: cpis
                .iter()
                .map(|&c| CpiSample {
                    cycles: (c.max(0.0) * BASE) as u64,
                    instructions: BASE as u64,
                })
                .collect(),
        }
    }

    /// Appends a counter reading.
    pub fn push(&mut self, sample: CpiSample) {
        self.samples.push(sample);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[CpiSample] {
        &self.samples
    }

    /// The derived CPI series.
    pub fn cpi_series(&self) -> Vec<f64> {
        self.samples.iter().map(CpiSample::cpi).collect()
    }

    /// The 95th percentile of the CPI series — the paper's "sufficient
    /// statistic for one run".
    pub fn cpi_p95(&self) -> f64 {
        percentile_95(&self.cpi_series())
    }
}

fn percentile_95(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite CPI"));
    let rank = 0.95 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_basic() {
        let s = CpiSample {
            cycles: 3_000,
            instructions: 1_000,
        };
        assert!((s.cpi() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cpi_zero_instructions_is_large_not_infinite() {
        let s = CpiSample {
            cycles: 500,
            instructions: 0,
        };
        assert_eq!(s.cpi(), 500.0);
        assert!(s.cpi().is_finite());
    }

    #[test]
    fn from_cpi_values_roundtrips() {
        let t = CpiTrace::from_cpi_values(&[1.5, 2.0, 0.8]);
        let back = t.cpi_series();
        assert!((back[0] - 1.5).abs() < 1e-6);
        assert!((back[1] - 2.0).abs() < 1e-6);
        assert!((back[2] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn p95_of_uniform_ramp() {
        let vals: Vec<f64> = (0..101).map(f64::from).collect();
        let t = CpiTrace::from_cpi_values(&vals);
        assert!((t.cpi_p95() - 95.0).abs() < 0.01);
    }

    #[test]
    fn empty_trace_conventions() {
        let t = CpiTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.cpi_p95(), 0.0);
        assert!(t.cpi_series().is_empty());
    }
}
