use std::collections::VecDeque;

use crate::frame::{FrameError, MetricFrame};
use crate::METRIC_COUNT;

/// A bounded, ring-buffered window over the most recent metric ticks of one
/// node — the storage behind tick-at-a-time streaming ingestion.
///
/// Where [`MetricFrame`] accumulates a whole job run, `SlidingFrame` keeps
/// only the last `capacity` ticks: pushing tick `capacity + 1` evicts the
/// oldest. Samples are validated exactly like [`MetricFrame::push_tick`]
/// (width and finiteness), so a window materialized with
/// [`SlidingFrame::to_frame`] is always a valid frame equal to the suffix
/// of an equivalently-fed batch frame.
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingFrame {
    interval_secs: f64,
    capacity: usize,
    // Ring of rows; each stored row is exactly METRIC_COUNT values.
    rows: VecDeque<f64>,
    total_pushed: u64,
}

impl SlidingFrame {
    /// An empty window holding up to `capacity` ticks at the paper's 10 s
    /// cadence.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Self::with_interval(capacity, 10.0)
    }

    /// An empty window with an explicit sampling interval.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn with_interval(capacity: usize, interval_secs: f64) -> Self {
        assert!(capacity > 0, "sliding frame needs a non-zero capacity");
        SlidingFrame {
            interval_secs,
            capacity,
            rows: VecDeque::with_capacity((capacity + 1) * METRIC_COUNT),
            total_pushed: 0,
        }
    }

    /// Sampling interval in seconds.
    pub fn interval_secs(&self) -> f64 {
        self.interval_secs
    }

    /// Maximum ticks retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ticks currently held (`<= capacity`).
    pub fn ticks(&self) -> usize {
        self.rows.len() / METRIC_COUNT
    }

    /// Whether the window holds no ticks.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Whether the window has reached its capacity.
    pub fn is_full(&self) -> bool {
        self.ticks() == self.capacity
    }

    /// Ticks pushed over the window's lifetime, including evicted ones.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Appends one tick ordered per [`crate::MetricId::ALL`], evicting the
    /// oldest tick when full.
    ///
    /// # Errors
    ///
    /// [`FrameError::WrongWidth`] or [`FrameError::NonFinite`]; the window
    /// is unchanged on error.
    pub fn push_tick(&mut self, samples: &[f64]) -> Result<(), FrameError> {
        if samples.len() != METRIC_COUNT {
            return Err(FrameError::WrongWidth { got: samples.len() });
        }
        for (i, &v) in samples.iter().enumerate() {
            if !v.is_finite() {
                return Err(FrameError::NonFinite {
                    metric: crate::MetricId::ALL[i],
                });
            }
        }
        if self.is_full() {
            self.rows.drain(..METRIC_COUNT);
        }
        self.rows.extend(samples.iter().copied());
        self.total_pushed += 1;
        Ok(())
    }

    /// The value of `metric` at window-relative `tick` (0 = oldest held).
    ///
    /// # Panics
    ///
    /// Panics when `tick >= ticks()`.
    pub fn get(&self, tick: usize, metric: crate::MetricId) -> f64 {
        assert!(tick < self.ticks(), "tick {tick} out of range");
        self.rows[tick * METRIC_COUNT + metric.index()]
    }

    /// Materializes the current window as a batch [`MetricFrame`], oldest
    /// held tick first.
    pub fn to_frame(&self) -> MetricFrame {
        let mut frame = MetricFrame::with_interval(self.interval_secs);
        let mut row = vec![0.0; METRIC_COUNT];
        for t in 0..self.ticks() {
            for (i, slot) in row.iter_mut().enumerate() {
                *slot = self.rows[t * METRIC_COUNT + i];
            }
            frame
                .push_tick(&row)
                .expect("ring rows were validated on push");
        }
        frame
    }

    /// Drops all held ticks (lifetime counter is preserved).
    pub fn clear(&mut self) {
        self.rows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricId;

    fn tick_of(v: f64) -> Vec<f64> {
        vec![v; METRIC_COUNT]
    }

    #[test]
    fn fills_then_evicts_oldest() {
        let mut w = SlidingFrame::new(3);
        for i in 0..5 {
            w.push_tick(&tick_of(i as f64)).unwrap();
        }
        assert_eq!(w.ticks(), 3);
        assert!(w.is_full());
        assert_eq!(w.total_pushed(), 5);
        assert_eq!(w.get(0, MetricId::CpuUser), 2.0);
        assert_eq!(w.get(2, MetricId::CpuUser), 4.0);
    }

    #[test]
    fn to_frame_equals_batch_suffix() {
        let mut w = SlidingFrame::new(4);
        let mut batch = MetricFrame::new();
        for i in 0..9 {
            let t = tick_of(i as f64 * 1.5);
            w.push_tick(&t).unwrap();
            batch.push_tick(&t).unwrap();
        }
        assert_eq!(w.to_frame(), batch.window(5..9));
    }

    #[test]
    fn rejects_invalid_rows_unchanged() {
        let mut w = SlidingFrame::new(2);
        w.push_tick(&tick_of(1.0)).unwrap();
        assert_eq!(
            w.push_tick(&[1.0; 3]).unwrap_err(),
            FrameError::WrongWidth { got: 3 }
        );
        let mut bad = tick_of(0.0);
        bad[MetricId::DiskReadKBps.index()] = f64::INFINITY;
        assert_eq!(
            w.push_tick(&bad).unwrap_err(),
            FrameError::NonFinite {
                metric: MetricId::DiskReadKBps
            }
        );
        assert_eq!(w.ticks(), 1);
        assert_eq!(w.total_pushed(), 1);
    }

    #[test]
    fn clear_keeps_lifetime_counter() {
        let mut w = SlidingFrame::new(2);
        w.push_tick(&tick_of(1.0)).unwrap();
        w.push_tick(&tick_of(2.0)).unwrap();
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.total_pushed(), 2);
        assert_eq!(w.to_frame().ticks(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero capacity")]
    fn zero_capacity_is_rejected() {
        let _ = SlidingFrame::new(0);
    }
}
