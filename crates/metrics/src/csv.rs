//! CSV round-tripping for [`MetricFrame`] — the on-disk interchange format
//! a real deployment would export from collectl.

use std::fmt;

use crate::{FrameError, MetricFrame, MetricId, METRIC_COUNT};

/// Errors produced when parsing a metric CSV.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvError {
    /// The header row did not list the canonical 26 metric names.
    BadHeader,
    /// A data row had the wrong number of fields.
    WrongFieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        got: usize,
    },
    /// A field could not be parsed as a finite number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// 0-based column.
        column: usize,
    },
    /// The parsed values were rejected by the frame (non-finite).
    Frame(FrameError),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::BadHeader => write!(f, "header must list the 26 canonical metric names"),
            CsvError::WrongFieldCount { line, got } => {
                write!(f, "line {line}: expected {METRIC_COUNT} fields, got {got}")
            }
            CsvError::BadNumber { line, column } => {
                write!(f, "line {line}, column {column}: not a finite number")
            }
            CsvError::Frame(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<FrameError> for CsvError {
    fn from(e: FrameError) -> Self {
        CsvError::Frame(e)
    }
}

impl MetricFrame {
    /// Serializes the frame to CSV: a header of metric names followed by one
    /// row per tick.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (i, m) in MetricId::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(m.name());
        }
        out.push('\n');
        for t in 0..self.ticks() {
            let row = self.tick(t);
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                // Enough digits to round-trip f64 exactly.
                out.push_str(&format!("{v:.17e}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parses a frame from CSV produced by [`MetricFrame::to_csv`] (or any
    /// CSV with the canonical header and numeric rows).
    ///
    /// # Errors
    ///
    /// See [`CsvError`].
    pub fn from_csv(text: &str, interval_secs: f64) -> Result<MetricFrame, CsvError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(CsvError::BadHeader)?;
        let names: Vec<&str> = header.split(',').collect();
        if names.len() != METRIC_COUNT {
            return Err(CsvError::BadHeader);
        }
        for (name, m) in names.iter().zip(MetricId::ALL.iter()) {
            if *name != m.name() {
                return Err(CsvError::BadHeader);
            }
        }
        let mut frame = MetricFrame::with_interval(interval_secs);
        let mut row = vec![0.0f64; METRIC_COUNT];
        for (lineno, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut count = 0usize;
            for (col, field) in line.split(',').enumerate() {
                if col >= METRIC_COUNT {
                    count = col + 1;
                    continue;
                }
                let v: f64 = field.trim().parse().map_err(|_| CsvError::BadNumber {
                    line: lineno + 1,
                    column: col,
                })?;
                if !v.is_finite() {
                    return Err(CsvError::BadNumber {
                        line: lineno + 1,
                        column: col,
                    });
                }
                row[col] = v;
                count = col + 1;
            }
            if count != METRIC_COUNT {
                return Err(CsvError::WrongFieldCount {
                    line: lineno + 1,
                    got: count,
                });
            }
            frame.push_tick(&row)?;
        }
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_exact() {
        let mut f = MetricFrame::new();
        for t in 0..5 {
            let row: Vec<f64> = (0..METRIC_COUNT)
                .map(|i| (t * 31 + i) as f64 * 0.3333333333333)
                .collect();
            f.push_tick(&row).unwrap();
        }
        let csv = f.to_csv();
        let g = MetricFrame::from_csv(&csv, f.interval_secs()).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn rejects_bad_header() {
        assert_eq!(
            MetricFrame::from_csv("a,b,c\n", 10.0).unwrap_err(),
            CsvError::BadHeader
        );
        assert_eq!(
            MetricFrame::from_csv("", 10.0).unwrap_err(),
            CsvError::BadHeader
        );
    }

    #[test]
    fn rejects_short_row() {
        let mut csv = MetricFrame::new().to_csv();
        csv.push_str("1.0,2.0\n");
        let err = MetricFrame::from_csv(&csv, 10.0).unwrap_err();
        assert_eq!(err, CsvError::WrongFieldCount { line: 2, got: 2 });
    }

    #[test]
    fn rejects_non_numeric_field() {
        let mut csv = MetricFrame::new().to_csv();
        let mut row: Vec<String> = (0..METRIC_COUNT).map(|i| i.to_string()).collect();
        row[3] = "oops".to_string();
        csv.push_str(&row.join(","));
        csv.push('\n');
        let err = MetricFrame::from_csv(&csv, 10.0).unwrap_err();
        assert_eq!(err, CsvError::BadNumber { line: 2, column: 3 });
    }

    #[test]
    fn skips_blank_lines() {
        let mut f = MetricFrame::new();
        f.push_tick(&vec![1.0; METRIC_COUNT]).unwrap();
        let mut csv = f.to_csv();
        csv.push('\n');
        let g = MetricFrame::from_csv(&csv, 10.0).unwrap();
        assert_eq!(g.ticks(), 1);
    }
}
