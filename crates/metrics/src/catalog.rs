use serde::{Deserialize, Serialize};

/// Number of metrics in the catalog — the paper's "26 performance metrics".
pub const METRIC_COUNT: usize = 26;

/// Broad resource family of a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricCategory {
    /// Processor utilization and scheduling.
    Cpu,
    /// Memory and paging.
    Memory,
    /// Block-device activity.
    Disk,
    /// Network activity.
    Network,
}

macro_rules! metric_catalog {
    ($( $variant:ident => ($name:literal, $unit:literal, $cat:ident) ),+ $(,)?) => {
        /// One of the 26 collectl-style performance metrics the paper
        /// monitors on every Hadoop node.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        #[allow(missing_docs)]
        pub enum MetricId {
            $($variant),+
        }

        impl MetricId {
            /// All metrics, in canonical (stable) order. Index positions in
            /// [`crate::MetricFrame`] follow this order.
            pub const ALL: [MetricId; METRIC_COUNT] = [$(MetricId::$variant),+];

            /// collectl-style metric name.
            pub fn name(self) -> &'static str {
                match self {
                    $(MetricId::$variant => $name),+
                }
            }

            /// Unit of measurement.
            pub fn unit(self) -> &'static str {
                match self {
                    $(MetricId::$variant => $unit),+
                }
            }

            /// Resource family.
            pub fn category(self) -> MetricCategory {
                match self {
                    $(MetricId::$variant => MetricCategory::$cat),+
                }
            }

            /// Parses a collectl-style name back into an id.
            pub fn from_name(name: &str) -> Option<MetricId> {
                match name {
                    $($name => Some(MetricId::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

metric_catalog! {
    CpuUser          => ("cpu.user",        "%",        Cpu),
    CpuSystem        => ("cpu.sys",         "%",        Cpu),
    CpuIdle          => ("cpu.idle",        "%",        Cpu),
    CpuWait          => ("cpu.wait",        "%",        Cpu),
    ContextSwitches  => ("cpu.ctxsw",       "ops/s",    Cpu),
    Interrupts       => ("cpu.intr",        "ops/s",    Cpu),
    LoadAvg1         => ("load.avg1",       "procs",    Cpu),
    RunQueue         => ("proc.runq",       "procs",    Cpu),
    MemUsed          => ("mem.used",        "MB",       Memory),
    MemFree          => ("mem.free",        "MB",       Memory),
    MemCached        => ("mem.cached",      "MB",       Memory),
    MemBuffers       => ("mem.buffers",     "MB",       Memory),
    PageFaults       => ("mem.pagefaults",  "ops/s",    Memory),
    PageIns          => ("mem.pagein",      "pages/s",  Memory),
    PageOuts         => ("mem.pageout",     "pages/s",  Memory),
    SwapUsed         => ("mem.swapused",    "MB",       Memory),
    DiskReadKBps     => ("disk.readkbs",    "KB/s",     Disk),
    DiskWriteKBps    => ("disk.writekbs",   "KB/s",     Disk),
    DiskReadOps      => ("disk.readops",    "ops/s",    Disk),
    DiskWriteOps     => ("disk.writeops",   "ops/s",    Disk),
    DiskUtilization  => ("disk.util",       "%",        Disk),
    NetRxKBps        => ("net.rxkbs",       "KB/s",     Network),
    NetTxKBps        => ("net.txkbs",       "KB/s",     Network),
    NetRxPackets     => ("net.rxpkts",      "pkts/s",   Network),
    NetTxPackets     => ("net.txpkts",      "pkts/s",   Network),
    TcpSockets       => ("net.tcpsockets",  "count",    Network),
}

impl MetricId {
    /// Canonical index of this metric in [`MetricId::ALL`].
    pub fn index(self) -> usize {
        // The derive order matches ALL, so a linear scan is exact; METRIC_COUNT
        // is tiny and this is not on a hot path.
        MetricId::ALL
            .iter()
            .position(|&m| m == self)
            .expect("metric is in ALL by construction")
    }
}

impl std::fmt::Display for MetricId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_26_metrics() {
        assert_eq!(MetricId::ALL.len(), METRIC_COUNT);
        assert_eq!(METRIC_COUNT, 26);
    }

    #[test]
    fn names_are_unique_and_roundtrip() {
        let mut seen = std::collections::HashSet::new();
        for m in MetricId::ALL {
            assert!(seen.insert(m.name()), "duplicate name {}", m.name());
            assert_eq!(MetricId::from_name(m.name()), Some(m));
        }
        assert_eq!(MetricId::from_name("no.such.metric"), None);
    }

    #[test]
    fn index_is_position_in_all() {
        for (i, m) in MetricId::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn categories_cover_all_families() {
        use MetricCategory::*;
        let count = |c: MetricCategory| MetricId::ALL.iter().filter(|m| m.category() == c).count();
        assert_eq!(count(Cpu), 8);
        assert_eq!(count(Memory), 8);
        assert_eq!(count(Disk), 5);
        assert_eq!(count(Network), 5);
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(MetricId::CpuUser.to_string(), "cpu.user");
    }
}
