//! `ix-top` — the operator console binary.
//!
//! Live attachment happens in-process (see the library docs); the binary
//! is the *replay* face of the console: point it at a recorded
//! `ix-history` trace and watch the run unfold at an adjustable speed,
//! or render headless frames for CI and piped output.

use std::process::ExitCode;
use std::time::Duration;

use ix_history::HistoryStore;
use ix_top::{render_frame, ReplayFeed, Screen, TopConsole};

const USAGE: &str = "\
ix-top — operator console over recorded InvarNet-X traces

USAGE:
    ix-top --replay <trace.ixh> [OPTIONS]

OPTIONS:
    --replay <path>   trace to replay (required)
    --speed <mult>    playback speed multiplier       [default: 1.0]
    --frames <n>      stop after n rendered frames    [default: unbounded]
    --width <cols>    frame width in columns          [default: 100]
    --tail <n>        event tail length               [default: 12]
    --headless        no ANSI, no pacing; print the final frame to stdout
    --help            this text
";

struct Args {
    replay: Option<String>,
    speed: f64,
    frames: Option<u64>,
    width: usize,
    tail: usize,
    headless: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        replay: None,
        speed: 1.0,
        frames: None,
        width: 100,
        tail: 12,
        headless: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--replay" => args.replay = Some(value("--replay")?),
            "--speed" => {
                args.speed = value("--speed")?
                    .parse()
                    .map_err(|e| format!("--speed: {e}"))?;
            }
            "--frames" => {
                args.frames = Some(
                    value("--frames")?
                        .parse()
                        .map_err(|e| format!("--frames: {e}"))?,
                );
            }
            "--width" => {
                args.width = value("--width")?
                    .parse()
                    .map_err(|e| format!("--width: {e}"))?;
            }
            "--tail" => {
                args.tail = value("--tail")?
                    .parse()
                    .map_err(|e| format!("--tail: {e}"))?;
            }
            "--headless" => args.headless = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let Some(path) = args.replay.as_deref() else {
        eprintln!("error: --replay <trace.ixh> is required\n\n{USAGE}");
        return ExitCode::FAILURE;
    };

    let (store, warnings) = match HistoryStore::load_with_warnings(path) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("error: cannot load {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for warning in &warnings {
        eprintln!("warning: {warning}");
    }

    let console = TopConsole::with_tail(args.tail);
    let mut feed = ReplayFeed::builder()
        .console(console)
        .speed(args.speed)
        .build(&store);
    eprintln!(
        "replaying {} events across {} contexts from {path}",
        feed.total(),
        store.contexts().len()
    );

    let mut screen = if args.headless {
        None
    } else {
        match Screen::enter() {
            Ok(screen) => Some(screen),
            Err(e) => {
                eprintln!("error: cannot take over the terminal: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    // Pace one frame per tick batch at 1x; faster speeds cover more
    // events per frame and sleep proportionally less.
    let batch = (feed.total() / 200).max(1) * feed.ticks_per_frame();
    let frame_delay = Duration::from_millis((50.0 / args.speed.max(0.01)) as u64);
    let mut prev = None;
    let mut rendered = 0u64;
    let mut paint_error = None;
    while !feed.is_done() && paint_error.is_none() {
        if args.frames.is_some_and(|max| rendered >= max) {
            break;
        }
        feed.advance(batch);
        let snap = feed.snapshot();
        let frame = render_frame(&snap, prev.as_ref(), args.width);
        match screen.as_mut() {
            Some(live) => match live.paint(&frame) {
                Ok(()) => std::thread::sleep(frame_delay),
                Err(e) => paint_error = Some(e),
            },
            None => {
                // Headless: only the final frame goes to stdout; render
                // intermediates anyway so drift sparklines are exercised.
            }
        }
        prev = Some(snap);
        rendered += 1;
    }
    drop(screen);
    if let Some(e) = paint_error {
        eprintln!("error: paint failed: {e}");
        return ExitCode::FAILURE;
    }

    // Final frame on stdout for headless runs (and a clean last frame
    // after the live screen restores the cursor).
    let final_snap = feed.snapshot();
    let frame = render_frame(&final_snap, prev.as_ref(), args.width);
    print!("{frame}");
    eprintln!(
        "replayed {}/{} events in {} frames",
        feed.position(),
        feed.total(),
        rendered
    );
    ExitCode::SUCCESS
}
