//! `ix-top`: a live operator console over the engine's telemetry and
//! event stream.
//!
//! The console has three deliberately separate halves:
//!
//! - [`TopConsole`] — an [`ix_core::EventSink`] that distills the event
//!   stream into a scrolling tail plus queue / shed / health readings.
//!   Attach it to a live engine with
//!   `Engine::builder().telemetry(&hub).extra_sink(console)`; the fan-out
//!   sink hands it the same stream every other subscriber sees, and the
//!   ingest hot path gains no new locks.
//! - [`render_frame`] — a pure function from a frozen [`TopSnapshot`]
//!   (plus the previous frame, for cost-drift sparklines) to plain text.
//!   No clock, no terminal: identical snapshots render identical bytes,
//!   so frames are golden-testable and CI can smoke-run the console
//!   headless.
//! - [`Screen`] — the only ANSI-aware piece, hand-rolled because the
//!   workspace is offline: hide-cursor/clear/paint/restore, nothing more.
//!
//! Replay mode ([`ReplayFeed`]) drives the same pipeline from a recorded
//! `ix-history` trace instead of a live engine: recorded events are fed
//! into a fresh telemetry hub (the hub itself is an event sink) and the
//! recorded context labels are re-interned positionally, so the console
//! shows the run exactly as a live attachment would have.

#![warn(missing_docs)]

mod ansi;
mod console;
mod render;
mod replay_feed;

pub use ansi::{Screen, CLEAR_AND_HOME, HIDE_CURSOR, SHOW_CURSOR};
pub use console::{ReplayPosition, TopConsole, TopSnapshot, DEFAULT_TAIL};
pub use render::render_frame;
pub use replay_feed::{ReplayFeed, ReplayFeedBuilder};
