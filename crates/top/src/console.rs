//! The console's event-facing half: an [`EventSink`] that distills the
//! engine's event stream into the state a frame needs.
//!
//! Attach a [`TopConsole`] to a live engine with
//! `Engine::builder().telemetry(&hub).extra_sink(console)` — the fan-out
//! sink hands it the same stream every other sink sees, and the ingest
//! hot path gains no new locks (the console's mutex is taken only on the
//! events the engine already emits, never on a path the engine did not
//! already pay for).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

use ix_core::{
    ContextId, ContextRegistry, Engine, EngineEvent, EventSink, Telemetry, TelemetrySnapshot,
};

/// How many tail lines a console retains by default.
pub const DEFAULT_TAIL: usize = 12;

/// Mutable console state, guarded by one mutex that is only touched from
/// event delivery and snapshotting — never from the ingest shard locks.
#[derive(Debug, Default)]
struct ConsoleState {
    tail: VecDeque<String>,
    latest_tick: u64,
    queue_depth: u64,
    shed_ticks: u64,
    degraded_sweeps: u64,
    health: Option<String>,
    events_seen: u64,
}

/// An [`EventSink`] that keeps a scrolling tail of notable events plus
/// the latest tick / queue / health readings, ready to be frozen into a
/// [`TopSnapshot`].
pub struct TopConsole {
    state: Mutex<ConsoleState>,
    tail_capacity: usize,
    labels: Mutex<Option<Arc<ContextRegistry>>>,
}

impl TopConsole {
    /// A console retaining [`DEFAULT_TAIL`] tail lines.
    pub fn new() -> Self {
        TopConsole::with_tail(DEFAULT_TAIL)
    }

    /// A console retaining up to `tail_capacity` tail lines.
    pub fn with_tail(tail_capacity: usize) -> Self {
        TopConsole {
            state: Mutex::new(ConsoleState::default()),
            tail_capacity: tail_capacity.max(1),
            labels: Mutex::new(None),
        }
    }

    /// Shares a context registry so tail lines carry `workload@node`
    /// labels instead of bare context indices.
    pub fn bind_registry(&self, registry: &Arc<ContextRegistry>) {
        *self.labels.lock().unwrap_or_else(PoisonError::into_inner) = Some(Arc::clone(registry));
    }

    fn label(&self, context: ContextId) -> String {
        let bound = self.labels.lock().unwrap_or_else(PoisonError::into_inner);
        match bound.as_ref() {
            Some(registry) => registry.label(context),
            None => format!("ctx {}", context.index()),
        }
    }

    /// Total events this console has observed.
    pub fn events_seen(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .events_seen
    }

    /// Freezes the console + telemetry hub into a renderable snapshot.
    /// Pass the engine when one is in-process so the queue capacity and
    /// authoritative health reading come from it.
    pub fn snapshot(&self, hub: &Telemetry, engine: Option<&Engine>) -> TopSnapshot {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let (queue_depth, queue_capacity, health) = match engine {
            Some(engine) => {
                let inspector = engine.inspector();
                (
                    inspector.queued_ticks() as u64,
                    inspector.queue_capacity() as u64,
                    inspector.health().name().to_string(),
                )
            }
            None => (
                state.queue_depth,
                0,
                state
                    .health
                    .clone()
                    .unwrap_or_else(|| "healthy".to_string()),
            ),
        };
        TopSnapshot {
            telemetry: hub.snapshot(),
            tail: state.tail.iter().cloned().collect(),
            latest_tick: state.latest_tick,
            queue_depth,
            queue_capacity,
            shed_ticks: state.shed_ticks,
            degraded_sweeps: state.degraded_sweeps,
            health,
            replay: None,
        }
    }

    fn push_tail(&self, state: &mut ConsoleState, line: String) {
        if state.tail.len() == self.tail_capacity {
            state.tail.pop_front();
        }
        state.tail.push_back(line);
    }
}

impl Default for TopConsole {
    fn default() -> Self {
        TopConsole::new()
    }
}

impl std::fmt::Debug for TopConsole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopConsole")
            .field("tail_capacity", &self.tail_capacity)
            .field("events_seen", &self.events_seen())
            .finish()
    }
}

impl EventSink for TopConsole {
    fn record(&self, event: &EngineEvent) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.events_seen += 1;
        // Every variant is named: a new event must decide its console
        // treatment explicitly, not vanish behind a wildcard.
        let line = match *event {
            EngineEvent::TickIngested { tick, .. } => {
                state.latest_tick = state.latest_tick.max(tick);
                None
            }
            EngineEvent::DetectionFired { context, tick } => Some(format!(
                "t{tick:>6}  DETECT   {} anomaly onset",
                self.label(context)
            )),
            EngineEvent::DetectionCleared { context, tick } => Some(format!(
                "t{tick:>6}  CLEAR    {} back to normal",
                self.label(context)
            )),
            EngineEvent::DiagnosisRan {
                context,
                tick,
                micros,
            } => Some(format!(
                "t{tick:>6}  DIAGNOSE {} ({micros} us)",
                self.label(context)
            )),
            EngineEvent::SignatureMatched {
                context,
                tick,
                best_similarity,
                confident,
            } => Some(format!(
                "t{tick:>6}  MATCH    {} sim {best_similarity:.3}{}",
                self.label(context),
                if confident { "" } else { " (unknown)" }
            )),
            EngineEvent::SweepCompleted {
                context,
                pairs,
                micros,
            } => Some(format!(
                "        SWEEP    {} {pairs} pairs ({micros} us)",
                self.label(context)
            )),
            EngineEvent::PairsScored { .. } => None,
            EngineEvent::SweepScreened {
                context,
                reused,
                screened,
                confirmed,
            } => Some(format!(
                "        SCREEN   {} {reused} reused / {screened} screened / {confirmed} confirmed",
                self.label(context)
            )),
            EngineEvent::SweepCacheLookup { .. } => None,
            EngineEvent::SpanClosed { .. } => None,
            EngineEvent::SweepDegraded {
                context,
                tier,
                reason,
            } => {
                state.degraded_sweeps += 1;
                Some(format!(
                    "        DEGRADE  {} -> {tier:?} ({reason:?})",
                    self.label(context)
                ))
            }
            EngineEvent::TickEnqueued { depth, .. } => {
                state.queue_depth = depth as u64;
                None
            }
            EngineEvent::TickShed { context, policy } => {
                state.shed_ticks += 1;
                Some(format!(
                    "        SHED     {} ({policy:?})",
                    self.label(context)
                ))
            }
            EngineEvent::StoreRetried {
                attempt,
                backoff_micros,
                ..
            } => Some(format!(
                "        RETRY    store attempt {attempt} (backoff {backoff_micros} us)"
            )),
            EngineEvent::HealthChanged { from, to, .. } => {
                state.health = Some(to.name().to_string());
                Some(format!("        HEALTH   {} -> {}", from.name(), to.name()))
            }
            EngineEvent::TenantEvicted { tenant, ticks, .. } => {
                Some(format!("        EVICT    tenant {tenant} ({ticks} ticks)"))
            }
            EngineEvent::TenantWarmed { tenant, micros, .. } => {
                Some(format!("        WARM     tenant {tenant} ({micros} us)"))
            }
        };
        if let Some(line) = line {
            self.push_tail(&mut state, line);
        }
    }
}

/// Where a replay-driven console currently is in its trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayPosition {
    /// Events fed so far.
    pub position: usize,
    /// Total events in the trace.
    pub total: usize,
    /// The playback speed multiplier.
    pub speed: f64,
}

/// One frozen frame's worth of console state: everything
/// [`crate::render_frame`] needs, and nothing live.
#[derive(Debug, Clone)]
pub struct TopSnapshot {
    /// The telemetry hub's frozen counters, gauges and histograms.
    pub telemetry: TelemetrySnapshot,
    /// The scrolling tail of notable events, oldest first.
    pub tail: Vec<String>,
    /// Highest lifetime tick observed.
    pub latest_tick: u64,
    /// Current ingest queue depth.
    pub queue_depth: u64,
    /// Ingest queue capacity (0 when unknown, e.g. replay mode).
    pub queue_capacity: u64,
    /// Ticks shed under overload.
    pub shed_ticks: u64,
    /// Sweeps answered by a degraded tier.
    pub degraded_sweeps: u64,
    /// The engine health state name.
    pub health: String,
    /// Set when the console is replaying a recorded trace.
    pub replay: Option<ReplayPosition>,
}
