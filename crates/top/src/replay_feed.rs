//! Replay mode: driving the console from a recorded trace.
//!
//! A trace's event stream is exactly what a live console would have
//! received, so replay is nothing but re-delivering it: each recorded
//! [`EngineEvent`] is fed to a fresh [`Telemetry`] hub (the hub is an
//! event sink) and to the [`TopConsole`]. The only wrinkle is labels —
//! the fresh hub's context registry has never interned anything, so the
//! trace's `workload@node` labels are re-interned positionally first,
//! giving the recorded [`ix_core::ContextId`]s the same meaning they had
//! in the recording engine.

use std::sync::Arc;

use ix_core::{ContextId, EngineEvent, EventSink, OperationContext, Telemetry};
use ix_history::HistoryStore;

use crate::console::{ReplayPosition, TopConsole, TopSnapshot};

/// A recorded trace staged for console replay: a fresh telemetry hub
/// with the trace's labels, the console, and a cursor over the events.
pub struct ReplayFeed {
    hub: Arc<Telemetry>,
    console: TopConsole,
    events: Vec<EngineEvent>,
    cursor: usize,
    speed: f64,
}

/// Assembles a [`ReplayFeed`] in one expression; obtain one from
/// [`ReplayFeed::builder`] and finish with [`ReplayFeedBuilder::build`].
#[must_use = "builder methods return the builder; call .build(store) to produce the feed"]
#[derive(Debug)]
pub struct ReplayFeedBuilder {
    console: Option<TopConsole>,
    speed: f64,
}

impl Default for ReplayFeedBuilder {
    fn default() -> Self {
        ReplayFeedBuilder {
            console: None,
            speed: 1.0,
        }
    }
}

impl ReplayFeedBuilder {
    /// The console to drive (defaults to a fresh [`TopConsole`]).
    pub fn console(mut self, console: TopConsole) -> Self {
        self.console = Some(console);
        self
    }

    /// Playback speed multiplier (defaults to 1x; non-positive values
    /// clamp to 1x).
    pub fn speed(mut self, speed: f64) -> Self {
        self.speed = speed;
        self
    }

    /// The finished feed, staged over `store`'s event stream.
    pub fn build(self, store: &HistoryStore) -> ReplayFeed {
        ReplayFeed::from_parts(store, self.console.unwrap_or_default(), self.speed)
    }
}

impl ReplayFeed {
    /// The builder-first construction path.
    pub fn builder() -> ReplayFeedBuilder {
        ReplayFeedBuilder::default()
    }

    /// Stages `store`'s event stream, re-interning its context labels
    /// into a fresh hub so ids resolve to the recorded names.
    #[deprecated(
        since = "0.1.0",
        note = "use `ReplayFeed::builder().console(console).speed(speed).build(store)`"
    )]
    pub fn new(store: &HistoryStore, console: TopConsole, speed: f64) -> Self {
        ReplayFeed::from_parts(store, console, speed)
    }

    fn from_parts(store: &HistoryStore, console: TopConsole, speed: f64) -> Self {
        let hub = Telemetry::shared();
        // Positional re-interning: the registry hands out ids in call
        // order, so interning label i as the i-th call gives it
        // ContextId i — the id the recorded events carry. Walk every
        // index up to the densest recorded id so gaps (contexts with
        // events but no rows) still consume their slot.
        let slots = store
            .contexts()
            .iter()
            .map(|c| c.index() + 1)
            .max()
            .unwrap_or(0);
        for i in 0..slots {
            let label = store.label(ContextId::from_index(i));
            let parsed = match label.split_once('@') {
                Some((workload, node)) => OperationContext::new(node, workload),
                None => OperationContext::new("replay", label),
            };
            hub.contexts().intern(&parsed);
        }
        console.bind_registry(hub.contexts());
        ReplayFeed {
            hub,
            console,
            events: store.events(),
            cursor: 0,
            speed: if speed > 0.0 { speed } else { 1.0 },
        }
    }

    /// The hub the recorded events are replayed into.
    pub fn hub(&self) -> &Arc<Telemetry> {
        &self.hub
    }

    /// The console being driven.
    pub fn console(&self) -> &TopConsole {
        &self.console
    }

    /// Total recorded events.
    pub fn total(&self) -> usize {
        self.events.len()
    }

    /// Events delivered so far.
    pub fn position(&self) -> usize {
        self.cursor
    }

    /// Whether the trace is exhausted.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.events.len()
    }

    /// Delivers up to `batch` more events to the hub and console;
    /// returns how many were delivered (0 at end of trace).
    pub fn advance(&mut self, batch: usize) -> usize {
        let end = (self.cursor + batch.max(1)).min(self.events.len());
        for event in &self.events[self.cursor..end] {
            self.hub.record(event);
            self.console.record(event);
        }
        let delivered = end - self.cursor;
        self.cursor = end;
        delivered
    }

    /// Freezes the current replay state into a renderable snapshot,
    /// stamped with the replay position.
    pub fn snapshot(&self) -> TopSnapshot {
        let mut snap = self.console.snapshot(&self.hub, None);
        snap.replay = Some(ReplayPosition {
            position: self.cursor,
            total: self.events.len(),
            speed: self.speed,
        });
        snap
    }

    /// How many ticks (ingest events) one rendered frame should cover at
    /// the configured speed: one tick per frame at 1x, more when faster.
    pub fn ticks_per_frame(&self) -> usize {
        (self.speed.ceil() as usize).max(1)
    }

    /// Resolves a recorded context id to its re-interned label.
    pub fn label(&self, context: ContextId) -> String {
        self.hub.contexts().label(context)
    }
}

impl std::fmt::Debug for ReplayFeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayFeed")
            .field("events", &self.events.len())
            .field("cursor", &self.cursor)
            .field("speed", &self.speed)
            .finish()
    }
}
