//! Pure frame rendering: a [`TopSnapshot`] (plus the previous frame's
//! snapshot, for drift) in, one plain-text frame out.
//!
//! The renderer touches no terminal and no clock — the same snapshot pair
//! always yields the same bytes, which is what makes the console's golden
//! tests and headless CI smoke runs possible. Escape sequences are the
//! `Screen`'s business, not the frame's.

use ix_core::HistogramSnapshot;

use crate::console::TopSnapshot;

/// Characters of rising ink for the drift sparklines; plain ASCII so
/// frames survive any locale.
const SPARK: &[u8] = b" .:-=+*#@";

/// Sparkline width in characters (histogram buckets are folded in pairs).
const SPARK_WIDTH: usize = 16;

/// Renders one console frame. `prev` is the snapshot of the previous
/// frame, used to show *drift* — where the per-tick cost histograms
/// gained mass since the last repaint — rather than all-time totals;
/// `None` renders the all-time distribution. Lines are clipped to
/// `width` columns.
pub fn render_frame(snap: &TopSnapshot, prev: Option<&TopSnapshot>, width: usize) -> String {
    let width = width.max(40);
    let mut out = String::new();
    let mut line = |text: String| {
        // Clip by characters, not bytes — labels and the header contain
        // multi-byte glyphs, and `String::truncate` panics mid-char.
        if text.chars().count() > width {
            out.extend(text.chars().take(width));
        } else {
            out.push_str(&text);
        }
        out.push('\n');
    };

    // Header: where the stream is and how the engine feels about it.
    let replay = match &snap.replay {
        Some(p) => format!("  replay {}/{} x{:.1}", p.position, p.total, p.speed),
        None => String::new(),
    };
    line(format!(
        "ix-top — InvarNet-X operator console  tick {:>6}  health {}{}",
        snap.latest_tick, snap.health, replay
    ));
    line(format!(
        "queue {} {}  shed {}  degraded sweeps {}",
        queue_bar(snap.queue_depth, snap.queue_capacity),
        match snap.queue_capacity {
            0 => format!("{}/?", snap.queue_depth),
            cap => format!("{}/{}", snap.queue_depth, cap),
        },
        snap.shed_ticks,
        snap.degraded_sweeps
    ));
    let total = &snap.telemetry.total;
    line(format!(
        "recorder {} rows / {} segments  append p50 {} ns  p99 {} ns",
        total.history_rows_recorded,
        total.history_segments,
        total.recorder_append_nanos.quantile(0.5),
        total.recorder_append_nanos.quantile(0.99)
    ));
    line(format!(
        "sweeps {}  pairs reused {} / screened {} / confirmed {}  cache {} hit / {} miss",
        total.sweeps,
        total.sweep_pairs_reused,
        total.sweep_pairs_screened,
        total.sweep_pairs_confirmed,
        total.sweep_cache_hits,
        total.sweep_cache_misses
    ));
    line(String::new());

    // Per-context table with an ingest-cost drift sparkline per row.
    line(format!(
        "{:<28} {:>7} {:>7} {:>7} {:>6} {:>6} {:>9}  {}",
        "context", "ticks", "exceed", "detect", "diag", "match", "p50ing us", "cost drift"
    ));
    for scope in &snap.telemetry.contexts {
        if scope.is_empty() {
            continue;
        }
        let prev_scope = prev.and_then(|p| {
            p.telemetry
                .contexts
                .iter()
                .find(|s| s.context == scope.context)
        });
        line(format!(
            "{:<28} {:>7} {:>7} {:>7} {:>6} {:>6} {:>9}  {}",
            clip(&scope.context, 28),
            scope.ticks,
            scope.threshold_exceedances,
            scope.detections,
            scope.diagnoses,
            scope.matches_confident,
            scope.ingest_micros.quantile(0.5),
            drift_sparkline(&scope.ingest_micros, prev_scope.map(|s| &s.ingest_micros))
        ));
    }
    line(String::new());

    // Scrolling tail of notable events, oldest first.
    line("events".to_string());
    if snap.tail.is_empty() {
        line("  (none yet)".to_string());
    }
    for entry in &snap.tail {
        line(format!("  {entry}"));
    }
    out
}

/// A fixed-width `[####....]` gauge; all-dots when capacity is unknown.
fn queue_bar(depth: u64, capacity: u64) -> String {
    const CELLS: usize = 10;
    let filled = if capacity == 0 {
        0
    } else {
        // Ceiling keeps a non-empty queue visible even at 1% occupancy.
        (((depth.min(capacity) as f64) / capacity as f64) * CELLS as f64).ceil() as usize
    };
    let mut bar = String::with_capacity(CELLS + 2);
    bar.push('[');
    for i in 0..CELLS {
        bar.push(if i < filled { '#' } else { '.' });
    }
    bar.push(']');
    bar
}

/// Folds a histogram's buckets into a [`SPARK_WIDTH`]-character
/// sparkline. With a previous snapshot, the line shows the *delta* mass
/// per bucket since that snapshot (what moved), otherwise the all-time
/// distribution (what is).
fn drift_sparkline(curr: &HistogramSnapshot, prev: Option<&HistogramSnapshot>) -> String {
    let folded = fold_buckets(curr, prev);
    let peak = folded.iter().copied().max().unwrap_or(0);
    folded
        .iter()
        .map(|&v| {
            if peak == 0 {
                ' '
            } else {
                let idx = ((v as f64 / peak as f64) * (SPARK.len() - 1) as f64).round() as usize;
                SPARK[idx.min(SPARK.len() - 1)] as char
            }
        })
        .collect()
}

/// Per-bucket delta (or absolute count) folded down to [`SPARK_WIDTH`]
/// cells.
fn fold_buckets(curr: &HistogramSnapshot, prev: Option<&HistogramSnapshot>) -> Vec<u64> {
    let deltas: Vec<u64> = curr
        .buckets
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let before = prev.and_then(|p| p.buckets.get(i)).copied().unwrap_or(0);
            c.saturating_sub(before)
        })
        .collect();
    let fold = deltas.len().div_ceil(SPARK_WIDTH).max(1);
    deltas.chunks(fold).map(|c| c.iter().sum()).collect()
}

/// Clips a label to `max` characters, marking the cut with an ellipsis.
fn clip(text: &str, max: usize) -> String {
    if text.len() <= max {
        return text.to_string();
    }
    let mut clipped: String = text.chars().take(max.saturating_sub(1)).collect();
    clipped.push('…');
    clipped
}
