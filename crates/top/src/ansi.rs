//! Minimal hand-rolled ANSI terminal control.
//!
//! The workspace is fully offline, so there is no terminal crate to lean
//! on; the console needs exactly four control sequences (home, clear,
//! hide/show cursor), written with `write!` against a locked stdout.
//! Frame *content* is produced by [`crate::render_frame`] as plain text,
//! so headless runs and golden tests never see an escape byte.

use std::io::{self, Write};

/// Move the cursor home and clear to the end of the screen.
pub const CLEAR_AND_HOME: &str = "\x1b[H\x1b[J";
/// Hide the cursor while frames repaint.
pub const HIDE_CURSOR: &str = "\x1b[?25l";
/// Restore the cursor.
pub const SHOW_CURSOR: &str = "\x1b[?25h";

/// A live-painting guard: hides the cursor on entry and restores it on
/// drop, so a panicking or interrupted console never leaves the terminal
/// cursorless.
#[must_use = "dropping the screen restores the cursor; hold it for the paint loop"]
#[derive(Debug)]
pub struct Screen {
    out: io::Stdout,
}

impl Screen {
    /// Takes over the terminal: hides the cursor and clears the screen.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `write` failure.
    pub fn enter() -> io::Result<Screen> {
        let screen = Screen { out: io::stdout() };
        {
            let mut lock = screen.out.lock();
            write!(lock, "{HIDE_CURSOR}{CLEAR_AND_HOME}")?;
            lock.flush()?;
        }
        Ok(screen)
    }

    /// Repaints the whole screen with `frame` (home + clear + content).
    ///
    /// # Errors
    ///
    /// Propagates the underlying `write` failure.
    pub fn paint(&mut self, frame: &str) -> io::Result<()> {
        let mut lock = self.out.lock();
        write!(lock, "{CLEAR_AND_HOME}{frame}")?;
        lock.flush()
    }
}

impl Drop for Screen {
    fn drop(&mut self) {
        let mut lock = self.out.lock();
        let _ = write!(lock, "{SHOW_CURSOR}");
        let _ = lock.flush();
    }
}
