//! Console behavior over synthetic and live event streams: the tail
//! distills the right events, live attachment piggybacks on the fan-out
//! sink, and replay re-interns recorded labels positionally.

use std::sync::Arc;

use ix_core::{
    ContextId, DegradationReason, DegradationTier, Engine, EngineEvent, EventSink, HealthState,
    HistoryRecorder, InvarNetConfig, OperationContext, OverloadPolicy, Telemetry,
};
use ix_history::HistoryStore;
use ix_top::{ReplayFeed, TopConsole};

#[test]
fn tail_keeps_notable_events_and_counters_track() {
    let console = TopConsole::with_tail(3);
    let hub = Telemetry::shared();
    let ctx = ContextId::from_index(0);

    console.record(&EngineEvent::TickIngested {
        context: ctx,
        tick: 41,
        residual: 1.0,
        exceeded: false,
        micros: 5,
    });
    console.record(&EngineEvent::TickEnqueued {
        context: ctx,
        depth: 7,
    });
    console.record(&EngineEvent::DetectionFired {
        context: ctx,
        tick: 42,
    });
    console.record(&EngineEvent::TickShed {
        context: ctx,
        policy: OverloadPolicy::ShedOldest,
    });
    console.record(&EngineEvent::SweepDegraded {
        context: ctx,
        tier: DegradationTier::CachedMatrix,
        reason: DegradationReason::WallClockExceeded,
    });
    console.record(&EngineEvent::HealthChanged {
        context: ctx,
        from: HealthState::Healthy,
        to: HealthState::Degraded(DegradationTier::CachedMatrix),
    });

    let snap = console.snapshot(&hub, None);
    assert_eq!(snap.latest_tick, 41);
    assert_eq!(snap.queue_depth, 7);
    assert_eq!(snap.shed_ticks, 1);
    assert_eq!(snap.degraded_sweeps, 1);
    assert_eq!(snap.health, "degraded");
    // Capacity 3: the DETECT line scrolled out, the newest three remain.
    assert_eq!(snap.tail.len(), 3);
    assert!(snap.tail[0].contains("SHED"));
    assert!(snap.tail[1].contains("DEGRADE"));
    assert!(snap.tail[2].contains("HEALTH"));
    assert_eq!(console.events_seen(), 6);
}

#[test]
fn live_attachment_sees_the_engine_stream_without_new_locks() {
    // The console rides the existing fan-out sink: nothing on the ingest
    // path knows it exists, so per-tick cost is unchanged by design.
    let hub = Telemetry::shared();
    let console = Arc::new(TopConsole::new());
    let engine = Engine::builder()
        .config(InvarNetConfig::default())
        .telemetry(&hub)
        .extra_sink(Arc::clone(&console) as Arc<dyn EventSink>)
        .build();
    console.bind_registry(engine.context_registry());

    let context = OperationContext::new("10.0.0.9", "Wordcount");
    let trace: Vec<Vec<f64>> = (0..5)
        .map(|r| {
            (0..40)
                .map(|t| 1.0 + 0.1 * ((t + r) as f64 * 0.3).sin())
                .collect()
        })
        .collect();
    engine
        .train_performance_model(context.clone(), &trace)
        .expect("train");
    for t in 0..30 {
        let row = vec![0.5; ix_metrics::METRIC_COUNT];
        let cpi = 1.0 + 0.1 * ((t as f64) * 0.3).sin();
        engine.ingest(&context, cpi, &row).expect("ingest");
    }

    let snap = console.snapshot(&hub, Some(&engine));
    assert!(
        console.events_seen() >= 30,
        "every ingest tick must reach the console"
    );
    assert_eq!(snap.latest_tick, 29);
    assert_eq!(snap.health, "healthy");
    assert_eq!(snap.queue_capacity, engine.ingest_queue_capacity() as u64);
    // The hub saw the same stream (fan-out order: sinks, then tee).
    assert_eq!(snap.telemetry.total.ticks, 30);
}

#[test]
fn replay_feed_reinterns_recorded_labels_positionally() {
    // A synthetic trace recorded under two contexts, shipped through
    // bytes (labels persist in the file) and replayed into a fresh hub.
    let store = HistoryStore::builder().shared();
    let registry = Arc::new(ix_core::ContextRegistry::new());
    let a = registry.intern(&OperationContext::new("10.0.0.1", "Wordcount"));
    let b = registry.intern(&OperationContext::new("10.0.0.2", "Sort"));
    store.bind_registry(&registry);
    for t in 0..4u64 {
        let ctx = if t % 2 == 0 { a } else { b };
        store.record_tick(
            ctx,
            t,
            1.0,
            0.0,
            false,
            &vec![0.0; ix_metrics::METRIC_COUNT],
        );
        store.record_event(&EngineEvent::TickIngested {
            context: ctx,
            tick: t,
            residual: 0.0,
            exceeded: false,
            micros: 1,
        });
    }
    store.record_event(&EngineEvent::DetectionFired {
        context: b,
        tick: 3,
    });

    let bytes = store.to_bytes();
    let reloaded = HistoryStore::from_bytes(&bytes).expect("reload");

    let mut feed = ReplayFeed::builder()
        .console(TopConsole::new())
        .speed(2.0)
        .build(&reloaded);
    assert_eq!(feed.label(a), "Wordcount@10.0.0.1");
    assert_eq!(feed.label(b), "Sort@10.0.0.2");
    assert_eq!(feed.total(), 5);

    let mut advanced = 0;
    while !feed.is_done() {
        advanced += feed.advance(2);
    }
    assert_eq!(advanced, 5);
    let snap = feed.snapshot();
    assert_eq!(snap.latest_tick, 3);
    let position = snap.replay.expect("replay position is stamped");
    assert_eq!(position.position, 5);
    assert_eq!(position.total, 5);
    // The tail resolves the recorded id to its recorded label.
    assert!(snap.tail.iter().any(|l| l.contains("Sort@10.0.0.2")));
    // The hub's scopes carry the re-interned labels too.
    assert!(snap
        .telemetry
        .contexts
        .iter()
        .any(|s| s.context == "Wordcount@10.0.0.1" && s.ticks == 2));
}
