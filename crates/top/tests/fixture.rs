//! The committed fixture trace: a recorded simulated fault run the CI
//! smoke test replays headless through the `ix-top` binary.
//!
//! Regenerate after a history-format or recording change with
//! `IX_TOP_BLESS=1 cargo test -p ix-top --test fixture`.

use std::path::PathBuf;
use std::sync::Arc;

use ix_core::{Engine, InvarNetConfig, OperationContext};
use ix_history::HistoryStore;
use ix_replay::RecordingSession;
use ix_simulator::{FaultType, Runner, WorkloadType};
use ix_top::{render_frame, ReplayFeed, TopConsole};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/fixture.ixh")
}

/// Records the standard simulated MemHog scenario into a replayable
/// trace (the same recipe as the `ix-replay` round-trip tests).
fn record_fixture() -> Arc<HistoryStore> {
    let runner = Runner::new(11);
    let node = Runner::DEFAULT_FAULT_NODE;
    let workload = WorkloadType::Wordcount;
    let context = OperationContext::new(runner.nodes[node].ip(), workload.name());
    let config = InvarNetConfig::default();
    let trainer = Engine::builder().config(config.clone()).build();

    let normals = runner.normal_runs(workload, 4);
    let cpi_traces: Vec<Vec<f64>> = normals
        .iter()
        .map(|r| r.per_node[node].cpi.cpi_series())
        .collect();
    trainer
        .train_performance_model(context.clone(), &cpi_traces)
        .expect("train detector");
    let frames: Vec<_> = normals
        .iter()
        .map(|r| {
            let f = &r.per_node[node].frame;
            f.window(30..75.min(f.ticks()))
        })
        .collect();
    trainer
        .build_invariants(context.clone(), &frames)
        .expect("build invariants");
    for fault in [FaultType::CpuHog, FaultType::MemHog, FaultType::DiskHog] {
        let run = runner.fault_run(workload, fault, 0);
        trainer
            .record_signature(&context, fault.name(), &run.fault_window().expect("window"))
            .expect("record signature");
    }

    let session =
        RecordingSession::new(config, trainer.snapshot_state()).expect("recording session");
    let live = runner.fault_run(workload, FaultType::MemHog, 5);
    let cpi = live.per_node[node].cpi.cpi_series();
    let frame = &live.per_node[node].frame;
    session.engine().reset_run(&context);
    for (t, &sample) in cpi.iter().enumerate().take(frame.ticks().min(cpi.len())) {
        session
            .engine()
            .ingest(&context, sample, frame.tick(t))
            .expect("ingest tick");
    }
    session.finish()
}

#[test]
fn committed_fixture_trace_drives_the_console() {
    let path = fixture_path();
    if std::env::var_os("IX_TOP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("data dir")).expect("mkdir");
        record_fixture().save(&path).expect("save fixture trace");
    }
    let (store, warnings) = HistoryStore::load_with_warnings(&path)
        .unwrap_or_else(|e| panic!("missing fixture trace: {e} (bless with IX_TOP_BLESS=1)"));
    assert!(
        warnings.is_empty(),
        "the fixture must load clean on current readers: {warnings:?}"
    );
    assert!(
        !store.diagnoses().is_empty(),
        "the fixture scenario must contain a diagnosis"
    );

    let mut feed = ReplayFeed::builder()
        .console(TopConsole::new())
        .speed(4.0)
        .build(&store);
    let mut prev = None;
    let mut frames = 0;
    while !feed.is_done() {
        feed.advance(64);
        let snap = feed.snapshot();
        let frame = render_frame(&snap, prev.as_ref(), 100);
        assert!(
            frame.lines().count() >= 6,
            "frames must have the full layout"
        );
        prev = Some(snap);
        frames += 1;
    }
    assert!(frames > 1, "the fixture must span multiple frames");

    let last = prev.expect("at least one frame");
    assert!(last.latest_tick > 0);
    assert!(
        last.tail.iter().any(|l| l.contains("DIAGNOSE")),
        "the fault run's diagnosis must surface in the tail: {:?}",
        last.tail
    );
    assert_eq!(last.replay.expect("replay position").position, feed.total());
    // The telemetry hub rebuilt from events attributes the run to the
    // recorded workload@node label.
    assert!(last
        .telemetry
        .contexts
        .iter()
        .any(|s| s.context.starts_with("Wordcount@") && s.ticks > 0));
}
