//! Headless golden rendering: the same fixture snapshot must always
//! produce byte-identical frames — no TTY, no clock, no locale.
//!
//! Regenerate the goldens after an intentional layout change with
//! `IX_TOP_BLESS=1 cargo test -p ix-top --test golden`.

use std::path::PathBuf;

use ix_core::{HistogramSnapshot, ScopeSnapshot, TelemetrySnapshot, HISTOGRAM_BUCKETS};
use ix_top::{render_frame, ReplayPosition, TopSnapshot};

fn data_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = data_path(name);
    if std::env::var_os("IX_TOP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("data dir")).expect("mkdir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e} (bless with IX_TOP_BLESS=1)", name));
    assert_eq!(
        actual, expected,
        "frame drifted from golden {name}; bless with IX_TOP_BLESS=1 if intentional"
    );
}

fn histogram(mass: &[(usize, u64)]) -> HistogramSnapshot {
    let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
    let mut count = 0;
    let mut sum = 0;
    let mut max = 0;
    for &(bucket, n) in mass {
        buckets[bucket] += n;
        count += n;
        // A representative value inside the bucket keeps sum/max coherent.
        let value = 1u64 << bucket;
        sum += value * n;
        max = max.max(value);
    }
    HistogramSnapshot {
        buckets,
        count,
        sum,
        max,
    }
}

fn scope(label: &str, ticks: u64, ingest: &[(usize, u64)]) -> ScopeSnapshot {
    let mut scope = ScopeSnapshot::empty(label.to_string());
    scope.ticks = ticks;
    scope.threshold_exceedances = ticks / 10;
    scope.detections = 2;
    scope.diagnoses = 2;
    scope.sweeps = 2;
    scope.matches_confident = 1;
    scope.history_rows_recorded = ticks;
    scope.history_segments = 1 + ticks / 512;
    scope.ingest_micros = histogram(ingest);
    scope.recorder_append_nanos = histogram(&[(7, ticks / 2), (8, ticks / 2)]);
    scope
}

/// The committed fixture: two contexts mid-fault, one diagnosis in, a
/// short event tail.
fn fixture(ticks: u64) -> TopSnapshot {
    let contexts = vec![
        scope(
            "Wordcount@192.168.1.105",
            ticks,
            &[(3, ticks / 2), (4, ticks / 3), (5, ticks / 6)],
        ),
        scope(
            "Sort@192.168.1.102",
            ticks / 2,
            &[(3, ticks / 4), (4, ticks / 4)],
        ),
    ];
    let mut total = ScopeSnapshot::empty("(all)".to_string());
    for c in &contexts {
        total.merge(c);
    }
    let telemetry = TelemetrySnapshot {
        contexts,
        total,
        phases: Vec::new(),
        spans: Vec::new(),
    };
    TopSnapshot {
        telemetry,
        tail: vec![
            "t   312  DETECT   Wordcount@192.168.1.105 anomaly onset".to_string(),
            "t   312  DIAGNOSE Wordcount@192.168.1.105 (1843 us)".to_string(),
            "t   312  MATCH    Wordcount@192.168.1.105 sim 0.914".to_string(),
        ],
        latest_tick: ticks,
        queue_depth: 12,
        queue_capacity: 64,
        shed_ticks: 0,
        degraded_sweeps: 1,
        health: "healthy".to_string(),
        replay: Some(ReplayPosition {
            position: 640,
            total: 1280,
            speed: 2.0,
        }),
    }
}

#[test]
fn fixture_frame_matches_golden() {
    let snap = fixture(400);
    check_golden("frame.golden", &render_frame(&snap, None, 100));
}

#[test]
fn drift_frame_matches_golden() {
    // The second frame has more histogram mass in higher buckets; the
    // sparkline must show only the delta.
    let before = fixture(400);
    let after = fixture(520);
    check_golden(
        "frame_drift.golden",
        &render_frame(&after, Some(&before), 100),
    );
}

#[test]
fn narrow_frame_clips_by_characters() {
    let snap = fixture(400);
    let frame = render_frame(&snap, None, 48);
    for line in frame.lines() {
        assert!(
            line.chars().count() <= 48,
            "line wider than requested: {line:?}"
        );
    }
    // The header contains a multi-byte dash; clipping must not panic or
    // split it (both proven by rendering at every narrow width).
    for width in 40..60 {
        let _ = render_frame(&snap, None, width);
    }
}

#[test]
fn rendering_is_deterministic() {
    let snap = fixture(400);
    assert_eq!(
        render_frame(&snap, None, 100),
        render_frame(&snap, None, 100)
    );
}
