//! Offline compatibility subset of the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` APIs the codebase uses are reimplemented here and
//! wired in through a `[workspace.dependencies]` path override. The surface
//! is intentionally tiny: [`RngCore`], [`Rng`] (with `gen`, `gen_range`,
//! `gen_bool` and `fill`), and [`SeedableRng`] with the `seed_from_u64`
//! convenience. Streams are *not* bit-compatible with upstream `rand`; all
//! workspace code only relies on determinism-for-a-seed, which holds.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `Rng` (the `Standard`
/// distribution of upstream `rand`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling; bias is negligible for
                // the small spans used in this workspace.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + v as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range");
                let span = (end - start) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + v as $t
            }
        }
    )*};
}

int_sample_range!(u64, usize, u32, i64);

/// The user-facing random-value interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 and builds the
    /// generator. Deterministic; the basis of every seeded fixture in the
    /// workspace.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        for chunk in bytes.chunks_mut(8) {
            let w = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&w[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion and as a cheap standalone generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    /// Internal state.
    pub state: u64,
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// `rand::rngs` compatibility namespace.
pub mod rngs {
    pub use super::SplitMix64;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64);
    impl RngCore for Fixed {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = Fixed(42);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Fixed(7);
        for _ in 0..1000 {
            let v = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&v));
            let k = r.gen_range(3usize..9);
            assert!((3..9).contains(&k));
        }
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64 { state: 5 };
        let mut b = SplitMix64 { state: 5 };
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_covers_unaligned_tails() {
        let mut r = Fixed(9);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
