//! Offline compatibility subset of `proptest`.
//!
//! Provides the surface the workspace's property tests use: the
//! [`strategy::Strategy`] trait with range and collection strategies, the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]` header),
//! `prop_assert!` / `prop_assert_eq!`, and a deterministic
//! [`test_runner::TestRng`]. Unlike upstream there is no shrinking: a
//! failing case fails the test directly with the sampled inputs available
//! in the panic message via the assertion macros. Runs are reproducible
//! because the RNG seed is fixed per test function.

/// Deterministic random source for strategy sampling.
pub mod test_runner {
    /// SplitMix64-based RNG. Fixed seed per test run → reproducible cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed RNG used by the [`crate::proptest!`] macro.
        #[must_use]
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// RNG with an explicit seed.
        #[must_use]
        pub fn with_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits (SplitMix64 step).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform sample in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Multiply-shift; bias is negligible for test-case generation.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates values of an associated type from a random source.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    /// Always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the compat runner has no shrinking so a
        // smaller default keeps suites fast while still exercising spread.
        ProptestConfig { cases: 64 }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (@run $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config: $crate::ProptestConfig = $config;
                let mut __pt_rng = $crate::test_runner::TestRng::deterministic();
                for __pt_case in 0..__pt_config.cases {
                    let _ = __pt_case;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __pt_rng);)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!{@run $config; $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@run $crate::ProptestConfig::default(); $($rest)*}
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// One-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Root-crate alias so `prop::collection::vec(..)` resolves.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic() {
        let strat = prop::collection::vec(0.0f64..1.0, 3..10);
        let mut a = crate::test_runner::TestRng::deterministic();
        let mut b = crate::test_runner::TestRng::deterministic();
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }

    #[test]
    fn range_samples_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::with_seed(42);
        for _ in 0..1000 {
            let f = (-2.0f64..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let u = (5usize..9).sample(&mut rng);
            assert!((5..9).contains(&u));
            let i = (-4i64..-1).sample(&mut rng);
            assert!((-4..-1).contains(&i));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_arguments(x in 0.0f64..10.0, n in 1usize..5) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(xs in prop::collection::vec(-1.0f64..1.0, 1..20)) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|v| v.abs() <= 1.0));
        }
    }
}
