//! A deterministic trained deployment for the scenarios to torture.
//!
//! Every fixture trains the same simulated Wordcount context from the same
//! simulator seed, so two fixtures built with the same options hold
//! bit-identical models — a pristine twin serves as the correctness oracle
//! for a chaotic one.

use std::sync::Arc;

use ix_core::{
    AssociationMeasure, Engine, EngineBuilder, EngineCounters, InvarNetConfig, OperationContext,
    OverloadPolicy, SweepBudget,
};
use ix_metrics::MetricFrame;
use ix_simulator::{FaultType, Runner, WorkloadType};

/// Simulator seed shared by every fixture (determinism is the oracle).
const SEED: u64 = 21;
/// The workload every scenario trains and attacks.
const WORKLOAD: WorkloadType = WorkloadType::Wordcount;
/// Faults with training signatures in the database.
const KNOWN_FAULTS: [FaultType; 3] = [FaultType::CpuHog, FaultType::MemHog, FaultType::DiskHog];

/// Knobs a scenario turns before training its engine.
pub struct FixtureOptions {
    /// Per-diagnosis sweep budget.
    pub budget: SweepBudget,
    /// Bounded-ingest overload policy.
    pub overload: OverloadPolicy,
    /// Requested per-shard ingest queue capacity.
    pub queue_ticks: usize,
    /// Association measure override (e.g. a fault-injecting wrapper);
    /// `None` trains with stock MIC.
    pub measure: Option<Arc<dyn AssociationMeasure>>,
}

impl Default for FixtureOptions {
    fn default() -> Self {
        FixtureOptions {
            budget: SweepBudget::UNLIMITED,
            overload: OverloadPolicy::Block,
            queue_ticks: 64,
            measure: None,
        }
    }
}

/// A trained engine, the context it serves, and the counters sink wired
/// into it.
pub struct Fixture {
    /// The live engine under test.
    pub engine: Engine,
    /// The trained operation context.
    pub context: OperationContext,
    /// Flat event counters (sheds, degradations, retries, ...).
    pub counters: Arc<EngineCounters>,
}

impl Fixture {
    /// Trains a deployment: ARIMA CPI model, MIC invariants over 4 normal
    /// runs, and 2 training signatures for each of the 3 known faults.
    pub fn trained(opts: FixtureOptions) -> Fixture {
        let runner = Runner::new(SEED);
        let node = Runner::DEFAULT_FAULT_NODE;
        let context = OperationContext::new(runner.nodes[node].ip(), WORKLOAD.name());

        let config = InvarNetConfig {
            window_ticks: runner.fault_duration_ticks,
            sweep_budget: opts.budget,
            overload: opts.overload,
            ingest_queue_ticks: opts.queue_ticks,
            ..InvarNetConfig::default()
        };
        let counters = Arc::new(EngineCounters::default());
        let mut builder: EngineBuilder = Engine::builder()
            .config(config)
            .event_sink(Arc::clone(&counters) as Arc<dyn ix_core::EventSink>);
        if let Some(measure) = opts.measure {
            builder = builder.measure(measure);
        }
        let engine = builder.build();

        let normals = runner.normal_runs(WORKLOAD, 4);
        let cpi_traces: Vec<Vec<f64>> = normals
            .iter()
            .map(|r| r.per_node[node].cpi.cpi_series())
            .collect();
        engine
            .train_performance_model(context.clone(), &cpi_traces)
            .expect("CPI model on simulator traces");

        let frames: Vec<MetricFrame> = normals
            .iter()
            .map(|r| fault_shaped_window(&runner, &r.per_node[node].frame))
            .collect();
        engine
            .build_invariants(context.clone(), &frames)
            .expect("Algorithm 1 on simulator frames");

        for fault in KNOWN_FAULTS {
            for run_idx in 0..2 {
                let r = runner.fault_run(WORKLOAD, fault, run_idx);
                engine
                    .record_signature(
                        &context,
                        fault.name(),
                        &r.fault_window().expect("fault window"),
                    )
                    .expect("training signature");
            }
        }

        Fixture {
            engine,
            context,
            counters,
        }
    }

    /// A fresh (untrained-on) incident of `fault`: its metric window and
    /// the full per-node CPI trace.
    pub fn incident(fault: FaultType, run_idx: usize) -> (MetricFrame, Vec<f64>) {
        let runner = Runner::new(SEED);
        let node = Runner::DEFAULT_FAULT_NODE;
        let r = runner.fault_run(WORKLOAD, fault, run_idx);
        (
            r.fault_window().expect("fault window"),
            r.per_node[node].cpi.cpi_series(),
        )
    }

    /// A fresh incident of `fault` as a *full run*: the complete per-node
    /// metric frame and CPI trace, for streaming scenarios.
    pub fn incident_run(fault: FaultType, run_idx: usize) -> (MetricFrame, Vec<f64>) {
        let runner = Runner::new(SEED);
        let node = Runner::DEFAULT_FAULT_NODE;
        let r = runner.fault_run(WORKLOAD, fault, run_idx);
        (
            r.per_node[node].frame.clone(),
            r.per_node[node].cpi.cpi_series(),
        )
    }

    /// The fault every scenario injects as its incident.
    pub fn incident_fault() -> FaultType {
        FaultType::MemHog
    }
}

/// The training window of a normal run: same offset/length the fault
/// window occupies, so training and diagnosis sweeps see equal sample
/// counts.
fn fault_shaped_window(runner: &Runner, frame: &MetricFrame) -> MetricFrame {
    let len = runner.fault_duration_ticks;
    let start = runner
        .fault_start_tick
        .min(frame.ticks().saturating_sub(len));
    frame.window(start..(start + len).min(frame.ticks()))
}
