//! Scenario outcomes: the harness's correct-or-explicitly-degraded oracle.

/// How a scenario's engine run related to the fault injected into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The engine absorbed the fault and produced full-fidelity answers
    /// that match the pristine baseline.
    Correct,
    /// The engine could not complete at full fidelity and *said so* — via
    /// [`ix_core::Diagnosis::degradation`], a typed error, or a health
    /// transition. This is the designed response to an overwhelming fault.
    Degraded,
    /// The engine produced a wrong answer without declaring degradation,
    /// or violated one of the scenario's invariants. Any `Failed` verdict
    /// fails the whole chaos run.
    Failed,
}

impl Verdict {
    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Correct => "correct",
            Verdict::Degraded => "degraded (explicit)",
            Verdict::Failed => "FAILED",
        }
    }
}

/// The outcome of one chaos scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name (kebab-case).
    pub scenario: &'static str,
    /// The oracle's verdict.
    pub verdict: Verdict,
    /// Human-readable evidence lines backing the verdict.
    pub notes: Vec<String>,
    /// Wall-clock duration of the scenario.
    pub millis: u128,
}

impl ScenarioReport {
    /// A fresh report in the `Correct` state; scenarios downgrade it as
    /// they observe degradations or failures.
    pub fn new(scenario: &'static str) -> Self {
        ScenarioReport {
            scenario,
            verdict: Verdict::Correct,
            notes: Vec::new(),
            millis: 0,
        }
    }

    /// Records a note.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Downgrades `Correct` to `Degraded` (a `Failed` verdict is sticky).
    pub fn mark_degraded(&mut self, line: impl Into<String>) {
        if self.verdict == Verdict::Correct {
            self.verdict = Verdict::Degraded;
        }
        self.notes.push(line.into());
    }

    /// Marks the scenario failed; `Failed` is terminal.
    pub fn mark_failed(&mut self, line: impl Into<String>) {
        self.verdict = Verdict::Failed;
        self.notes.push(line.into());
    }

    /// Whether the scenario upheld the correct-or-explicitly-degraded
    /// contract.
    pub fn passed(&self) -> bool {
        self.verdict != Verdict::Failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failed_is_sticky() {
        let mut r = ScenarioReport::new("x");
        assert!(r.passed());
        r.mark_degraded("slow");
        assert_eq!(r.verdict, Verdict::Degraded);
        r.mark_failed("wrong");
        r.mark_degraded("slow again");
        assert_eq!(r.verdict, Verdict::Failed);
        assert!(!r.passed());
        assert_eq!(r.notes.len(), 3);
    }
}
