//! `ix-chaos` — fault injection against a live InvarNet-X engine.
//!
//! The resilience layer's contract is *correct or explicitly degraded,
//! never silently wrong*: a diagnosis is either computed at full fidelity
//! or carries a [`ix_core::SweepDegradation`] marker; a persistence
//! failure is a typed [`ix_core::CoreError`] plus a health transition;
//! overload sheds ticks loudly through [`ix_core::EngineEvent::TickShed`].
//! This crate is the harness that tries to break that contract.
//!
//! Six host-level faults are injected into trained deployments
//! ([`fixture::Fixture`]), each driven by a scenario in [`scenarios`]:
//!
//! | scenario | fault |
//! |---|---|
//! | `slow-measure` | every MIC score call stalls under a 5 ms budget |
//! | `clock-jitter` | bimodal per-pair latency spikes |
//! | `allocator-pressure` | background allocation churn |
//! | `truncated-store` | the persisted model store is cut mid-file |
//! | `poisoned-lock` | a detector panics while a shard lock is held |
//! | `queue-flood` | bounded-queue overload under both shed policies |
//!
//! Run the whole suite with `cargo run --release -p ix-chaos`; the binary
//! exits nonzero if any scenario observes a silent wrong answer.

#![warn(missing_docs)]

pub mod faults;
pub mod fixture;
pub mod report;
pub mod scenarios;

pub use report::{ScenarioReport, Verdict};
pub use scenarios::{all_scenarios, Scenario};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_holds_six_distinct_scenarios() {
        let scenarios = all_scenarios();
        assert_eq!(scenarios.len(), 6, "the harness injects six fault types");
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6, "scenario names must be unique");
    }

    #[test]
    fn poisoned_lock_scenario_passes() {
        // The cheapest scenario (no MIC training) doubles as an in-tree
        // regression test for the engine's poison recovery.
        let scenario = all_scenarios()
            .into_iter()
            .find(|s| s.name == "poisoned-lock")
            .expect("registered");
        let report = (scenario.run)();
        assert!(report.passed(), "notes: {:?}", report.notes);
    }
}
