//! Chaos suite runner: executes every scenario against a live engine and
//! fails the process if any of them observes a silently wrong answer.

use std::process::ExitCode;

use ix_chaos::{all_scenarios, Verdict};

fn main() -> ExitCode {
    let scenarios = all_scenarios();
    println!("ix-chaos: {} fault scenarios\n", scenarios.len());

    let mut failures = 0usize;
    let mut degraded = 0usize;
    for scenario in scenarios {
        println!("=== {} — {}", scenario.name, scenario.description);
        let report = (scenario.run)();
        for note in &report.notes {
            println!("    {note}");
        }
        println!(
            "    verdict: {} ({} ms)\n",
            report.verdict.name(),
            report.millis
        );
        match report.verdict {
            Verdict::Correct => {}
            Verdict::Degraded => degraded += 1,
            Verdict::Failed => failures += 1,
        }
    }

    println!("summary: {failures} failed, {degraded} explicitly degraded, rest correct");
    if failures > 0 {
        println!("chaos run FAILED: a fault produced a silent wrong answer");
        ExitCode::FAILURE
    } else {
        println!("chaos run passed: every answer was correct or explicitly degraded");
        ExitCode::SUCCESS
    }
}
