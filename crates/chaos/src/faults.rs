//! The fault injectors: wrappers that make a healthy engine's dependencies
//! slow, jittery, hostile or broken — without changing any answer they
//! return. Each injector has an `armed` latch so offline training runs at
//! full speed and the fault fires only during the measured window.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ix_core::{
    AssociationMeasure, DetectionResult, Detector, DetectorRun, MicMeasure, TickDecision,
};

/// An [`AssociationMeasure`] whose every score call stalls for a fixed
/// delay once armed — a CPU-starved or page-faulting MIC kernel. Scores
/// are delegated to the real MIC, so any completed sweep is still correct.
pub struct SlowMeasure {
    inner: MicMeasure,
    delay: Duration,
    armed: AtomicBool,
}

impl SlowMeasure {
    /// A slow MIC: `delay` per pair once [`SlowMeasure::arm`] is called.
    pub fn new(inner: MicMeasure, delay: Duration) -> Self {
        SlowMeasure {
            inner,
            delay,
            armed: AtomicBool::new(false),
        }
    }

    /// Starts injecting latency.
    pub fn arm(&self) {
        // ordering: Relaxed — the latch is a coarse on/off flag; sweep
        // workers observing it one call late only shift the fault onset.
        self.armed.store(true, Ordering::Relaxed);
    }
}

impl AssociationMeasure for SlowMeasure {
    fn score(&self, x: &[f64], y: &[f64]) -> f64 {
        // ordering: Relaxed — see SlowMeasure::arm.
        if self.armed.load(Ordering::Relaxed) {
            std::thread::sleep(self.delay);
        }
        self.inner.score(x, y)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
    // No `prepare` override: the wrapper deliberately forces the plain
    // per-pair path so the injected latency hits every score call.
}

/// An [`AssociationMeasure`] with bimodal latency once armed: most calls
/// are instant, every `slow_every`-th call stalls — scheduling jitter or
/// clock skew as seen from inside a sweep.
pub struct JitterMeasure {
    inner: MicMeasure,
    delay: Duration,
    slow_every: usize,
    calls: AtomicUsize,
    armed: AtomicBool,
}

impl JitterMeasure {
    /// Jittery MIC: every `slow_every`-th score call sleeps `delay`.
    pub fn new(inner: MicMeasure, delay: Duration, slow_every: usize) -> Self {
        JitterMeasure {
            inner,
            delay,
            slow_every: slow_every.max(1),
            calls: AtomicUsize::new(0),
            armed: AtomicBool::new(false),
        }
    }

    /// Starts injecting jitter.
    pub fn arm(&self) {
        // ordering: Relaxed — coarse on/off latch, same as SlowMeasure.
        self.armed.store(true, Ordering::Relaxed);
    }
}

impl AssociationMeasure for JitterMeasure {
    fn score(&self, x: &[f64], y: &[f64]) -> f64 {
        // ordering: Relaxed — the counter only spreads stalls roughly
        // evenly across calls; exact interleaving is irrelevant.
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        if self.armed.load(Ordering::Relaxed) && n % self.slow_every == self.slow_every - 1 {
            std::thread::sleep(self.delay);
        }
        self.inner.score(x, y)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// A streaming [`Detector`] that panics on its `panic_at`-th sample —
/// mid-`ingest`, while the engine holds the context's shard lock. The
/// engine's poison-recovery idiom must absorb the poisoned lock and keep
/// serving the context.
pub struct PanickingDetector {
    panic_at: usize,
}

impl PanickingDetector {
    /// Panics on the `panic_at`-th stepped sample (1-based).
    pub fn new(panic_at: usize) -> Self {
        PanickingDetector {
            panic_at: panic_at.max(1),
        }
    }
}

struct PanickingRun {
    seen: usize,
    panic_at: usize,
}

impl DetectorRun for PanickingRun {
    fn step(&mut self, _x: f64) -> TickDecision {
        self.seen += 1;
        assert!(
            self.seen != self.panic_at,
            "injected detector panic at sample {}",
            self.seen
        );
        TickDecision {
            residual: 0.0,
            exceeded: false,
            anomalous: false,
        }
    }

    fn result(&self) -> DetectionResult {
        DetectionResult {
            residuals: vec![0.0; self.seen],
            exceedances: vec![false; self.seen],
            anomalies: vec![false; self.seen],
            threshold: f64::INFINITY,
            first_anomaly: None,
        }
    }
}

impl Detector for PanickingDetector {
    fn name(&self) -> &'static str {
        "panicking"
    }

    fn begin_run(&self) -> Box<dyn DetectorRun> {
        Box::new(PanickingRun {
            seen: 0,
            panic_at: self.panic_at,
        })
    }
}

/// Background allocator churn: worker threads that allocate, touch and
/// drop buffers in a tight loop until the handle is dropped — memory
/// pressure competing with the engine's sweeps.
#[must_use]
pub struct AllocChurn {
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<u64>>,
}

impl AllocChurn {
    /// Spawns `threads` churn workers.
    pub fn start(threads: usize) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let handles = (0..threads.max(1))
            .map(|k| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut checksum = 0u64;
                    // ordering: Relaxed — the stop flag needs no ordering
                    // with the churn work; a late observation just churns
                    // one extra iteration.
                    while !stop.load(Ordering::Relaxed) {
                        let buf: Vec<u64> = (0..4096).map(|i| i as u64 ^ k as u64).collect();
                        checksum = checksum.wrapping_add(buf.iter().sum::<u64>());
                    }
                    checksum
                })
            })
            .collect();
        AllocChurn { stop, handles }
    }
}

impl Drop for AllocChurn {
    fn drop(&mut self) {
        // ordering: Relaxed — see the worker loop.
        self.stop.store(true, Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn slow_measure_is_fast_until_armed() {
        let m = SlowMeasure::new(MicMeasure::default(), Duration::from_millis(20));
        let x: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..32).map(|i| (i * 2) as f64).collect();
        let fast = Instant::now();
        let a = m.score(&x, &y);
        assert!(fast.elapsed() < Duration::from_millis(15), "unarmed = fast");
        m.arm();
        let slow = Instant::now();
        let b = m.score(&x, &y);
        assert!(slow.elapsed() >= Duration::from_millis(20), "armed = slow");
        assert_eq!(a, b, "latency must not change the score");
    }

    #[test]
    fn jitter_measure_stalls_periodically() {
        let m = JitterMeasure::new(MicMeasure::default(), Duration::from_millis(5), 3);
        m.arm();
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let started = Instant::now();
        for _ in 0..6 {
            m.score(&x, &x);
        }
        assert!(
            started.elapsed() >= Duration::from_millis(10),
            "2 of 6 stall"
        );
    }

    #[test]
    fn panicking_detector_panics_exactly_once() {
        let d = PanickingDetector::new(2);
        let mut run = d.begin_run();
        run.step(1.0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run.step(1.0)));
        assert!(caught.is_err(), "second sample panics");
    }

    #[test]
    fn alloc_churn_stops_on_drop() {
        let churn = AllocChurn::start(2);
        std::thread::sleep(Duration::from_millis(5));
        drop(churn); // joins without hanging
    }
}
