//! The six chaos scenarios.
//!
//! Each scenario trains a deployment, injects one host-level fault, drives
//! the engine through it, and applies the harness oracle: every answer the
//! engine returns must be **correct** (full fidelity, matching a pristine
//! twin trained from the same simulator seed) or **explicitly degraded**
//! ([`ix_core::Diagnosis::degradation`], a typed [`ix_core::CoreError`],
//! or a health transition). A wrong answer with no declaration is the one
//! outcome that fails the run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ix_core::{
    AssociationMeasure, Detector, Engine, ErrorKind, HealthState, InvarNetConfig, MicMeasure,
    OperationContext, OverloadPolicy, SubmitOutcome, SweepBudget,
};
use ix_metrics::METRIC_COUNT;

use crate::faults::{AllocChurn, JitterMeasure, PanickingDetector, SlowMeasure};
use crate::fixture::{Fixture, FixtureOptions};
use crate::report::ScenarioReport;

/// A registered chaos scenario.
pub struct Scenario {
    /// Kebab-case name (also the CLI filter key).
    pub name: &'static str,
    /// One-line description of the injected fault.
    pub description: &'static str,
    /// Runs the scenario to a report.
    pub run: fn() -> ScenarioReport,
}

/// Every scenario the harness knows, in execution order.
pub fn all_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "slow-measure",
            description: "every MIC score call stalls 2 ms under a 5 ms sweep budget",
            run: slow_measure,
        },
        Scenario {
            name: "clock-jitter",
            description: "bimodal per-pair latency spikes under a tight budget",
            run: clock_jitter,
        },
        Scenario {
            name: "allocator-pressure",
            description: "background allocation churn competes with the sweep",
            run: allocator_pressure,
        },
        Scenario {
            name: "truncated-store",
            description: "the persisted model store is cut mid-file",
            run: truncated_store,
        },
        Scenario {
            name: "poisoned-lock",
            description: "a detector panics while the shard lock is held",
            run: poisoned_lock,
        },
        Scenario {
            name: "queue-flood",
            description: "ingest floods a bounded queue under both shed policies",
            run: queue_flood,
        },
    ]
}

/// Stamps the elapsed time into a finished report.
fn finish(mut report: ScenarioReport, started: Instant) -> ScenarioReport {
    report.millis = started.elapsed().as_millis();
    report
}

/// Describes a [`ix_core::SweepDegradation`] for the notes.
fn describe(deg: ix_core::SweepDegradation) -> String {
    format!(
        "tier {} ({}) because {}",
        deg.tier.level(),
        deg.tier.name(),
        deg.reason.name()
    )
}

/// A 2 ms stall on every MIC score call makes the full 325-pair sweep cost
/// ≥650 ms — hopeless under a 5 ms budget. The engine must degrade along
/// the declared ladder and say so; answering at "full fidelity" would be a
/// lie, and taking unbounded time would be an outage.
fn slow_measure() -> ScenarioReport {
    let started = Instant::now();
    let mut report = ScenarioReport::new("slow-measure");

    let budget = SweepBudget::wall_millis(5);
    let slow = Arc::new(SlowMeasure::new(
        MicMeasure::default(),
        Duration::from_millis(2),
    ));
    let fx = Fixture::trained(FixtureOptions {
        budget,
        measure: Some(Arc::clone(&slow) as Arc<dyn AssociationMeasure>),
        ..FixtureOptions::default()
    });
    slow.arm();

    let (window, _) = Fixture::incident(Fixture::incident_fault(), 7);
    let clock = Instant::now();
    match fx.engine.diagnose(&fx.context, &window) {
        Ok(diagnosis) => {
            let elapsed = clock.elapsed();
            report.note(format!(
                "diagnose returned in {elapsed:?} under a 5 ms budget"
            ));
            match diagnosis.degradation {
                Some(deg) => report.mark_degraded(describe(deg)),
                None => report.mark_failed(
                    "a sweep that cannot finish inside the budget claimed full fidelity",
                ),
            }
            if elapsed > Duration::from_millis(250) {
                report.mark_failed(format!("latency unbounded: {elapsed:?} for a 5 ms budget"));
            }
        }
        Err(e) => report.mark_failed(format!("diagnose errored instead of degrading: {e}")),
    }
    if fx.counters.sweeps_degraded() == 0 {
        report.mark_failed("no SweepDegraded event reached the sink");
    }
    if fx.engine.health() == HealthState::Healthy {
        report.mark_failed("health stayed Healthy through a degraded sweep");
    } else {
        report.note(format!("health after fault: {}", fx.engine.health().name()));
    }
    finish(report, started)
}

/// Bimodal latency — every 6th score call stalls 3 ms — sometimes fits the
/// budget and sometimes does not. Whatever happens, each of three fresh
/// incidents must come back either full-fidelity-and-identical to a
/// pristine twin, or explicitly degraded.
fn clock_jitter() -> ScenarioReport {
    let started = Instant::now();
    let mut report = ScenarioReport::new("clock-jitter");

    let jitter = Arc::new(JitterMeasure::new(
        MicMeasure::default(),
        Duration::from_millis(3),
        6,
    ));
    let fx = Fixture::trained(FixtureOptions {
        budget: SweepBudget::wall_millis(30),
        measure: Some(Arc::clone(&jitter) as Arc<dyn AssociationMeasure>),
        ..FixtureOptions::default()
    });
    let twin = Fixture::trained(FixtureOptions::default());
    jitter.arm();

    for run_idx in [7, 8, 9] {
        let (window, _) = Fixture::incident(Fixture::incident_fault(), run_idx);
        let chaotic = match fx.engine.diagnose(&fx.context, &window) {
            Ok(d) => d,
            Err(e) => {
                report.mark_failed(format!("run {run_idx}: diagnose errored: {e}"));
                continue;
            }
        };
        match chaotic.degradation {
            Some(deg) => report.mark_degraded(format!("run {run_idx}: {}", describe(deg))),
            None => {
                // Full fidelity under jitter must be *bit-for-bit* the
                // pristine twin's answer — latency must never leak into
                // scores.
                let baseline = twin
                    .engine
                    .diagnose(&twin.context, &window)
                    .expect("pristine twin diagnoses");
                if baseline.ranked == chaotic.ranked {
                    report.note(format!("run {run_idx}: full fidelity, matches twin"));
                } else {
                    report.mark_failed(format!(
                        "run {run_idx}: full-fidelity answer diverged from the pristine twin"
                    ));
                }
            }
        }
    }
    finish(report, started)
}

/// Background allocation churn slows everything a little. Under a generous
/// budget the sweep should still complete at full fidelity and match the
/// pristine twin; if the host is slow enough to blow even that budget, the
/// engine must declare the degradation.
fn allocator_pressure() -> ScenarioReport {
    let started = Instant::now();
    let mut report = ScenarioReport::new("allocator-pressure");

    let fx = Fixture::trained(FixtureOptions {
        budget: SweepBudget::wall_millis(500),
        ..FixtureOptions::default()
    });
    let twin = Fixture::trained(FixtureOptions::default());
    let (window, _) = Fixture::incident(Fixture::incident_fault(), 7);
    let baseline = twin
        .engine
        .diagnose(&twin.context, &window)
        .expect("pristine twin diagnoses");

    let churn = AllocChurn::start(4);
    let outcome = fx.engine.diagnose(&fx.context, &window);
    drop(churn);

    match outcome {
        Ok(diagnosis) => match diagnosis.degradation {
            Some(deg) => report.mark_degraded(describe(deg)),
            None if diagnosis.ranked == baseline.ranked => {
                report.note("full fidelity under churn, matches twin");
            }
            None => report.mark_failed("answer under churn diverged from the pristine twin"),
        },
        Err(e) => report.mark_failed(format!("diagnose errored under churn: {e}")),
    }
    finish(report, started)
}

/// The persisted deployment file is cut mid-JSON. Loading must fail with a
/// typed, sourced error and flip health to Degraded(persistence); restoring
/// the file must let retried loads walk health back to Healthy, and the
/// rehydrated engine must agree with the original.
fn truncated_store() -> ScenarioReport {
    let started = Instant::now();
    let mut report = ScenarioReport::new("truncated-store");

    let fx = Fixture::trained(FixtureOptions::default());
    let dir = std::env::temp_dir().join("ix_chaos_store");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        report.mark_failed(format!("cannot create temp dir: {e}"));
        return finish(report, started);
    }
    let path = dir.join("deployment.json");
    let store = fx.engine.snapshot_state();
    if let Err(e) = fx.engine.save_store(&store, &path) {
        report.mark_failed(format!("save failed on a healthy disk: {e}"));
        return finish(report, started);
    }

    let bytes = std::fs::read(&path).expect("just written");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
    match fx.engine.load_store(&path) {
        Ok(_) => report.mark_failed("a truncated store parsed successfully"),
        Err(e) => {
            if e.kind() != ErrorKind::Serialization && e.kind() != ErrorKind::Io {
                report.mark_failed(format!("unexpected error kind {:?}: {e}", e.kind()));
            } else if std::error::Error::source(&e).is_none() {
                report.mark_failed("the load error lost its source chain");
            } else {
                report.mark_degraded(format!("load failed loudly: kind {}", e.kind().name()));
            }
        }
    }
    if fx.counters.store_retries() == 0 {
        report.mark_failed("the failing load was never retried");
    }
    match fx.engine.health() {
        HealthState::Degraded(_) => report.note("health: degraded after exhausted retries"),
        other => report.mark_failed(format!(
            "health is {} after a persistence failure",
            other.name()
        )),
    }

    // Heal the disk: retried loads must recover health.
    std::fs::write(&path, &bytes).expect("restore");
    let mut loaded = None;
    for _ in 0..3 {
        match fx.engine.load_store(&path) {
            Ok(s) => loaded = Some(s),
            Err(e) => report.mark_failed(format!("load still failing on a healed disk: {e}")),
        }
    }
    std::fs::remove_file(&path).ok();
    if fx.engine.health() == HealthState::Healthy {
        report.note("health recovered to Healthy after a clean-load streak");
    } else {
        report.mark_failed(format!(
            "health stuck at {} after recovery",
            fx.engine.health().name()
        ));
    }

    // The rehydrated engine must agree with the original on a fresh
    // incident.
    if let Some(store) = loaded {
        let fresh = Engine::builder().config(fx.engine.config().clone()).build();
        if let Err(e) = fresh.load_state(&store) {
            report.mark_failed(format!("rehydration failed: {e}"));
        } else {
            let (window, _) = Fixture::incident(Fixture::incident_fault(), 7);
            let a = fx.engine.diagnose(&fx.context, &window).expect("original");
            let b = fresh.diagnose(&fx.context, &window).expect("rehydrated");
            if a.ranked == b.ranked {
                report.note("rehydrated engine matches the original diagnosis");
            } else {
                report.mark_failed("rehydrated engine diverged from the original");
            }
        }
    }
    finish(report, started)
}

/// A detector panics mid-`ingest`, while the engine holds the context's
/// shard lock. The poison must not spread: later ticks on the same context
/// must keep working, and the engine must stay queryable.
fn poisoned_lock() -> ScenarioReport {
    let started = Instant::now();
    let mut report = ScenarioReport::new("poisoned-lock");

    let context = OperationContext::new("10.0.0.66", "Wordcount");
    let detector: Arc<dyn Detector> = Arc::new(PanickingDetector::new(5));
    let engine = Engine::builder()
        .config(InvarNetConfig::default())
        .detector(context.clone(), detector)
        .build();
    let row = vec![0.5; METRIC_COUNT];

    for t in 0..4 {
        if let Err(e) = engine.ingest(&context, 1.0, &row) {
            report.mark_failed(format!("healthy tick {t} failed: {e}"));
            return finish(report, started);
        }
    }
    // Silence the default hook for the one panic we inject on purpose.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let caught = catch_unwind(AssertUnwindSafe(|| engine.ingest(&context, 1.0, &row)));
    std::panic::set_hook(hook);
    if caught.is_ok() {
        report.mark_failed("the injected detector panic did not fire");
        return finish(report, started);
    }
    report.note("tick 5 panicked inside the shard closure (injected)");

    // The shard's lock was poisoned mid-write; the engine must recover it.
    match engine.ingest(&context, 1.0, &row) {
        Ok(_) => report.note("tick 6 ingested normally through the recovered lock"),
        Err(e) => report.mark_failed(format!("engine did not survive the poisoned lock: {e}")),
    }
    if engine.detection_result(&context).is_none() {
        report.mark_failed("run state lost after the panic");
    }
    let _ = engine.health(); // must not panic or deadlock
    finish(report, started)
}

/// Floods the bounded ingest queue far past capacity under both shed
/// policies. Depth must stay bounded, every shed must be counted, and once
/// the flood subsides the detector must still confirm the anomaly from the
/// contiguous ticks that survived.
fn queue_flood() -> ScenarioReport {
    let started = Instant::now();
    let mut report = ScenarioReport::new("queue-flood");

    // --- ShedOldest: newest ticks survive, depth stays bounded. ---------
    let fx = Fixture::trained(FixtureOptions {
        queue_ticks: 8,
        overload: OverloadPolicy::ShedOldest,
        ..FixtureOptions::default()
    });
    let cap = fx.engine.ingest_queue_capacity();
    report.note(format!("effective per-shard capacity: {cap}"));
    let (frame, cpi) = Fixture::incident_run(Fixture::incident_fault(), 7);

    // Flood phase: a burst of the run's normal prefix with no consumer.
    // All but the newest `cap` must be shed — loudly. (The burst stays
    // inside the pre-fault region so the post-flood window still has
    // enough ticks accumulated when the anomaly onset triggers
    // diagnosis.)
    let flood = 16.min(cpi.len());
    for (t, &sample) in cpi.iter().enumerate().take(flood) {
        let outcome = fx.engine.submit(&fx.context, sample, frame.tick(t));
        if matches!(outcome, SubmitOutcome::Rejected) {
            report.mark_failed("ShedOldest rejected a submission");
        }
        if fx.engine.queued_ticks() > cap {
            report.mark_failed(format!(
                "queue depth {} exceeded capacity {cap}",
                fx.engine.queued_ticks()
            ));
        }
    }
    let shed = fx.counters.ticks_shed();
    if shed != (flood - cap) as u64 {
        report.mark_failed(format!("expected {} sheds, counted {shed}", flood - cap));
    } else {
        report.note(format!(
            "flood of {flood} ticks shed exactly {shed}, all reported"
        ));
    }
    let drained = fx.engine.drain(usize::MAX);
    if drained.len() != cap || drained.iter().any(|(_, r)| r.is_err()) {
        report.mark_failed(format!(
            "drain processed {}/{cap} surviving ticks cleanly",
            drained.iter().filter(|(_, r)| r.is_ok()).count()
        ));
    }

    // Recovery phase: the rest of the run streams through submit→drain at
    // a sustainable pace. The prefix loss must not stop the detector from
    // confirming the real anomaly, nor the diagnosis from running at full
    // fidelity.
    let mut diagnosis = None;
    for (t, &sample) in cpi.iter().enumerate().skip(flood) {
        fx.engine.submit(&fx.context, sample, frame.tick(t));
        for (_, result) in fx.engine.drain(1) {
            match result {
                Ok(out) => {
                    if let Some(d) = out.diagnosis {
                        diagnosis.get_or_insert(d);
                    }
                }
                Err(e) => report.mark_failed(format!("post-flood ingest failed: {e}")),
            }
        }
    }
    if fx.counters.detections_fired() == 0 {
        report.mark_failed("the detector never confirmed the anomaly after the flood");
    } else {
        report.note("3-consecutive-exceedance detection confirmed after the flood");
    }
    match diagnosis {
        Some(d) if d.degradation.is_none() => {
            report.note(format!(
                "diagnosis ran at full fidelity, top cause: {}",
                d.root_cause().map_or("<none>", |c| c.problem.as_str())
            ));
        }
        Some(_) => report.mark_degraded("diagnosis ran degraded during recovery"),
        None => report.mark_failed("no diagnosis was produced for the flooded run"),
    }

    // --- ShedNewest: arrivals beyond capacity bounce, oldest survive. ---
    let fx2 = Fixture::trained(FixtureOptions {
        queue_ticks: 8,
        overload: OverloadPolicy::ShedNewest,
        ..FixtureOptions::default()
    });
    let cap2 = fx2.engine.ingest_queue_capacity();
    let mut rejected = 0usize;
    for (t, &sample) in cpi.iter().enumerate().take(cap2 + 10) {
        if matches!(
            fx2.engine.submit(&fx2.context, sample, frame.tick(t)),
            SubmitOutcome::Rejected
        ) {
            rejected += 1;
        }
    }
    if rejected != 10 {
        report.mark_failed(format!("ShedNewest rejected {rejected}/10 overflow ticks"));
    } else {
        report.note("ShedNewest bounced exactly the overflow, kept the oldest");
    }
    if fx2.counters.ticks_shed() != 10 {
        report.mark_failed("rejected ticks were not reported as shed events");
    }
    if fx2.engine.drain(usize::MAX).len() != cap2 {
        report.mark_failed("drain did not return the surviving oldest ticks");
    }
    finish(report, started)
}
