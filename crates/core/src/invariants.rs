//! Algorithm 1 of the paper: invariant selection.
//!
//! Across `N` normal runs of one workload on one node, a metric pair whose
//! association scores stay within a band of width `tau` is an *observable
//! likely invariant*; its reference value is the band maximum
//! (`I(m, n) <- Max(V(m, n))`).

use serde::{Deserialize, Serialize};

use ix_metrics::MetricId;

use crate::assoc::{pair_count, pair_of_index, AssociationMatrix};

/// One selected invariant: a pair index plus its reference score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvariantEntry {
    /// Canonical flat pair index (see [`crate::pair_index`]).
    pub pair: usize,
    /// Reference association score `I = Max(V)`.
    pub value: f64,
}

/// The invariant set of one operation context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvariantSet {
    entries: Vec<InvariantEntry>,
    tau: f64,
}

impl InvariantSet {
    /// Runs Algorithm 1 over the association matrices of `N` normal runs.
    ///
    /// # Panics
    ///
    /// Panics when `runs` is empty (callers validate run counts first).
    pub fn select(runs: &[AssociationMatrix], tau: f64) -> Self {
        assert!(
            !runs.is_empty(),
            "invariant selection needs at least one run"
        );
        let mut entries = Vec::new();
        for pair in 0..pair_count() {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for run in runs {
                let v = run.at(pair);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi - lo < tau {
                entries.push(InvariantEntry { pair, value: hi });
            }
        }
        InvariantSet { entries, tau }
    }

    /// The selected invariants, ordered by pair index.
    pub fn entries(&self) -> &[InvariantEntry] {
        &self.entries
    }

    /// Number of invariants.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pair was stable.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stability threshold the set was built with.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The metric pair of entry `k`.
    pub fn metrics_of(&self, k: usize) -> (MetricId, MetricId) {
        pair_of_index(self.entries[k].pair)
    }

    /// Graded deviations of an abnormal association matrix from the
    /// invariant references: `|I - A|` per invariant, in entry order.
    pub fn deviations(&self, abnormal: &AssociationMatrix) -> Vec<f64> {
        self.entries
            .iter()
            .map(|e| (e.value - abnormal.at(e.pair)).abs())
            .collect()
    }

    /// Renders the invariant network in Graphviz DOT format — the picture
    /// of the paper's Fig. 1. Metrics are nodes; invariants are edges
    /// weighted by their reference score. When `violations` is given
    /// (aligned with this set), violated edges are drawn dashed red, as in
    /// the figure.
    ///
    /// # Panics
    ///
    /// Panics when `violations` has a different length than this set.
    pub fn to_dot(&self, violations: Option<&[bool]>) -> String {
        if let Some(v) = violations {
            assert_eq!(v.len(), self.len(), "violation vector must align");
        }
        let mut used = std::collections::BTreeSet::new();
        let mut edges = String::new();
        for (k, e) in self.entries.iter().enumerate() {
            let (a, b) = pair_of_index(e.pair);
            used.insert(a);
            used.insert(b);
            let violated = violations.is_some_and(|v| v[k]);
            let style = if violated {
                ", style=dashed, color=red"
            } else {
                ""
            };
            edges.push_str(&format!(
                "  \"{a}\" -- \"{b}\" [weight={:.2}{style}];\n",
                e.value
            ));
        }
        let mut out =
            String::from("graph invariants {\n  layout=neato;\n  node [shape=ellipse];\n");
        for m in used {
            out.push_str(&format!("  \"{m}\";\n"));
        }
        out.push_str(&edges);
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_with(pair_values: &[(usize, f64)], default: f64) -> AssociationMatrix {
        let mut scores = vec![default; pair_count()];
        for &(p, v) in pair_values {
            scores[p] = v;
        }
        AssociationMatrix::from_scores(scores)
    }

    #[test]
    fn stable_pairs_are_selected_with_max_value() {
        // Pair 0 stable (0.8..0.9), pair 1 unstable (0.2..0.8).
        let runs = vec![
            matrix_with(&[(0, 0.80), (1, 0.20)], 0.5),
            matrix_with(&[(0, 0.90), (1, 0.80)], 0.5),
            matrix_with(&[(0, 0.85), (1, 0.50)], 0.5),
        ];
        let set = InvariantSet::select(&runs, 0.2);
        let e0 = set
            .entries()
            .iter()
            .find(|e| e.pair == 0)
            .expect("pair 0 kept");
        assert_eq!(e0.value, 0.90);
        assert!(set.entries().iter().all(|e| e.pair != 1), "pair 1 dropped");
        // All other pairs constant at 0.5: kept.
        assert_eq!(set.len(), pair_count() - 1);
    }

    #[test]
    fn selection_is_monotone_in_tau() {
        let runs: Vec<AssociationMatrix> = (0..4)
            .map(|r| {
                let scores: Vec<f64> = (0..pair_count())
                    .map(|p| ((p * 7 + r * 13) % 10) as f64 / 10.0)
                    .collect();
                AssociationMatrix::from_scores(scores)
            })
            .collect();
        let tight = InvariantSet::select(&runs, 0.1);
        let loose = InvariantSet::select(&runs, 0.5);
        assert!(tight.len() <= loose.len());
        // Every invariant kept by the tight threshold is kept by the loose one.
        let loose_pairs: std::collections::HashSet<usize> =
            loose.entries().iter().map(|e| e.pair).collect();
        for e in tight.entries() {
            assert!(loose_pairs.contains(&e.pair));
        }
    }

    #[test]
    fn single_run_keeps_everything() {
        let runs = vec![matrix_with(&[], 0.7)];
        let set = InvariantSet::select(&runs, 0.2);
        assert_eq!(set.len(), pair_count());
    }

    #[test]
    fn deviations_measure_violations() {
        let runs = vec![matrix_with(&[(0, 0.9)], 0.5), matrix_with(&[(0, 0.9)], 0.5)];
        let set = InvariantSet::select(&runs, 0.2);
        let abnormal = matrix_with(&[(0, 0.3)], 0.5);
        let dev = set.deviations(&abnormal);
        assert_eq!(dev.len(), set.len());
        let k = set.entries().iter().position(|e| e.pair == 0).unwrap();
        assert!((dev[k] - 0.6).abs() < 1e-12);
        assert!(dev.iter().enumerate().all(|(i, &d)| i == k || d < 1e-12));
    }

    #[test]
    fn dot_export_marks_violations() {
        let runs = vec![matrix_with(&[(0, 0.9), (1, 0.8)], 0.0)];
        // tau small: with a single run everything is "stable"; keep two
        // meaningful invariants by zeroing the rest and filtering level.
        let set = InvariantSet::select(&runs, 0.2);
        let mut violations = vec![false; set.len()];
        violations[0] = true;
        let dot = set.to_dot(Some(&violations));
        assert!(dot.starts_with("graph invariants {"));
        assert!(dot.contains("style=dashed, color=red"));
        assert!(dot.contains("cpu.user"));
        // Without violations no edge is red.
        let clean = set.to_dot(None);
        assert!(!clean.contains("color=red"));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn dot_export_rejects_misaligned_violations() {
        let runs = vec![matrix_with(&[], 0.5)];
        let set = InvariantSet::select(&runs, 0.2);
        set.to_dot(Some(&[true]));
    }

    #[test]
    fn metrics_of_maps_back_to_catalog() {
        let runs = vec![matrix_with(&[], 0.5)];
        let set = InvariantSet::select(&runs, 0.2);
        let (a, b) = set.metrics_of(0);
        assert_ne!(a, b);
    }
}
