//! The InvarNet-X facade: offline training and the online engine.

use std::collections::HashMap;

use parking_lot::RwLock;

use ix_metrics::MetricFrame;

use crate::anomaly::{DetectionResult, PerformanceModel};
use crate::assoc::AssociationMatrix;
use crate::config::InvarNetConfig;
use crate::context::OperationContext;
use crate::invariants::InvariantSet;
use crate::measure::{AssociationMeasure, MicMeasure};
use crate::signature::{Signature, SignatureDatabase, ViolationTuple};
use crate::CoreError;

/// One ranked root-cause candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedCause {
    /// Problem label from the signature database.
    pub problem: String,
    /// Similarity of the observed violation tuple to the problem's
    /// signature, in `[0, 1]`.
    pub similarity: f64,
}

/// The outcome of cause inference: "a list of root causes which puts the
/// most probable causes in the top".
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// Candidates, best first.
    pub ranked: Vec<RankedCause>,
    /// The violation tuple that was matched.
    pub tuple: ViolationTuple,
}

impl Diagnosis {
    /// The most probable root cause.
    pub fn root_cause(&self) -> Option<&RankedCause> {
        self.ranked.first()
    }

    /// Whether the best match is convincing enough to report as a known
    /// problem rather than handing hints to the administrator.
    pub fn is_confident(&self, min_similarity: f64) -> bool {
        self.root_cause().is_some_and(|c| c.similarity >= min_similarity)
    }

    /// The paper's multiple-fault extension: "our method could be easily
    /// extended to multiple faults by listing multiple root causes whose
    /// signatures are most similar to the violation tuple". Returns up to
    /// `k` causes whose similarity reaches `min_similarity`.
    pub fn top_causes(&self, k: usize, min_similarity: f64) -> Vec<&RankedCause> {
        self.ranked
            .iter()
            .take(k)
            .filter(|c| c.similarity >= min_similarity)
            .collect()
    }

    /// Hints for unknown problems: the violated invariant pairs, strongest
    /// deviation first — "it can provide some hints by showing the violated
    /// association pairs (e.g. lock number–cpu utilization)". `invariants`
    /// must be the set the diagnosis was made against.
    ///
    /// # Panics
    ///
    /// Panics when `invariants` does not match the tuple's length (a set
    /// from a different context).
    pub fn hints(&self, invariants: &crate::InvariantSet) -> Vec<(ix_metrics::MetricId, ix_metrics::MetricId, f64)> {
        assert_eq!(
            invariants.len(),
            self.tuple.len(),
            "invariant set does not match the diagnosis tuple"
        );
        let mut out: Vec<(ix_metrics::MetricId, ix_metrics::MetricId, f64)> = self
            .tuple
            .graded()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0.0)
            .map(|(k, &v)| {
                let (a, b) = invariants.metrics_of(k);
                (a, b, v)
            })
            .collect();
        out.sort_by(|x, y| y.2.partial_cmp(&x.2).expect("finite deviations"));
        out
    }
}

/// The InvarNet-X system: per-context performance models, invariant sets
/// and a signature database, with a pluggable association measure.
pub struct InvarNetX {
    config: InvarNetConfig,
    measure: Box<dyn AssociationMeasure>,
    perf_models: HashMap<OperationContext, PerformanceModel>,
    invariants: HashMap<OperationContext, InvariantSet>,
    signatures: RwLock<SignatureDatabase>,
    threads: usize,
}

impl InvarNetX {
    /// A system with the default MIC measure.
    pub fn new(config: InvarNetConfig) -> Self {
        let mic = MicMeasure::new(config.mic);
        Self::with_measure(config, Box::new(mic))
    }

    /// A system with an explicit association measure (e.g. the ARX
    /// baseline).
    pub fn with_measure(config: InvarNetConfig, measure: Box<dyn AssociationMeasure>) -> Self {
        InvarNetX {
            config,
            measure,
            perf_models: HashMap::new(),
            invariants: HashMap::new(),
            signatures: RwLock::new(SignatureDatabase::new()),
            threads: std::thread::available_parallelism().map_or(1, |n| n.get().min(8)),
        }
    }

    /// Overrides the worker count of the pairwise association sweep.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The configuration.
    pub fn config(&self) -> &InvarNetConfig {
        &self.config
    }

    /// The association measure's name ("MIC" / "ARX" / ...).
    pub fn measure_name(&self) -> &'static str {
        self.measure.name()
    }

    // ------------------------------------------------------- offline part

    /// Trains the per-context ARIMA performance model on N normal CPI
    /// traces.
    ///
    /// # Errors
    ///
    /// Propagates training errors ([`CoreError::NotEnoughRuns`], ARIMA
    /// failures).
    pub fn train_performance_model(
        &mut self,
        context: OperationContext,
        cpi_traces: &[Vec<f64>],
    ) -> Result<(), CoreError> {
        let model = PerformanceModel::train(cpi_traces, self.config.beta)?;
        self.perf_models.insert(context, model);
        Ok(())
    }

    /// Computes the pairwise association matrix of one frame under the
    /// configured measure.
    ///
    /// # Errors
    ///
    /// [`CoreError::FrameTooShort`] when the frame has too few ticks.
    pub fn association_matrix(&self, frame: &MetricFrame) -> Result<AssociationMatrix, CoreError> {
        if frame.ticks() < self.config.min_frame_ticks {
            return Err(CoreError::FrameTooShort {
                required: self.config.min_frame_ticks,
                got: frame.ticks(),
            });
        }
        Ok(AssociationMatrix::compute(
            frame,
            &MeasureRef(self.measure.as_ref()),
            self.threads,
        ))
    }

    /// Runs Algorithm 1: builds the invariant set of a context from the
    /// metric frames of N normal runs.
    ///
    /// For comparability, pass frames windowed the same way diagnosis
    /// windows will be (association estimates depend on sample count).
    ///
    /// # Errors
    ///
    /// [`CoreError::NotEnoughRuns`] / [`CoreError::FrameTooShort`].
    pub fn build_invariants(
        &mut self,
        context: OperationContext,
        normal_frames: &[MetricFrame],
    ) -> Result<(), CoreError> {
        if normal_frames.len() < self.config.min_training_runs {
            return Err(CoreError::NotEnoughRuns {
                required: self.config.min_training_runs,
                got: normal_frames.len(),
            });
        }
        let mut matrices = Vec::with_capacity(normal_frames.len());
        for frame in normal_frames {
            matrices.push(self.association_matrix(frame)?);
        }
        let set = InvariantSet::select(&matrices, self.config.tau);
        self.invariants.insert(context, set);
        Ok(())
    }

    /// Builds the violation tuple of an abnormal window against the
    /// context's invariants.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoInvariants`] / frame errors.
    pub fn violation_tuple(
        &self,
        context: &OperationContext,
        abnormal: &MetricFrame,
    ) -> Result<ViolationTuple, CoreError> {
        let invariants = self
            .invariants
            .get(context)
            .ok_or_else(|| CoreError::NoInvariants(context.clone()))?;
        let matrix = self.association_matrix(abnormal)?;
        Ok(ViolationTuple::build(invariants, &matrix, self.config.epsilon))
    }

    /// Records a signature for an investigated problem ("once the
    /// performance problem is resolved, a new signature will be added").
    ///
    /// # Errors
    ///
    /// Same as [`InvarNetX::violation_tuple`].
    pub fn record_signature(
        &self,
        context: &OperationContext,
        problem: &str,
        abnormal: &MetricFrame,
    ) -> Result<(), CoreError> {
        let tuple = self.violation_tuple(context, abnormal)?;
        self.signatures.write().add(Signature {
            tuple,
            problem: problem.to_string(),
            context: context.clone(),
        });
        Ok(())
    }

    // -------------------------------------------------------- online part

    /// Scores a CPI trace against the context's performance model.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoPerformanceModel`].
    pub fn detect(
        &self,
        context: &OperationContext,
        cpi: &[f64],
    ) -> Result<DetectionResult, CoreError> {
        let model = self
            .perf_models
            .get(context)
            .ok_or_else(|| CoreError::NoPerformanceModel(context.clone()))?;
        Ok(model.detect(
            cpi,
            self.config.threshold_rule,
            self.config.consecutive_anomalies,
        ))
    }

    /// Cause inference: matches the abnormal window's violation tuple
    /// against the signature database.
    ///
    /// # Errors
    ///
    /// Missing invariants/signatures for the context, or frame errors.
    pub fn diagnose(
        &self,
        context: &OperationContext,
        abnormal: &MetricFrame,
    ) -> Result<Diagnosis, CoreError> {
        let tuple = self.violation_tuple(context, abnormal)?;
        let ranked = self
            .signatures
            .read()
            .rank(context, &tuple, self.config.similarity)?
            .into_iter()
            .map(|(problem, similarity)| RankedCause {
                problem,
                similarity,
            })
            .collect();
        Ok(Diagnosis { ranked, tuple })
    }

    /// The full online step: detect on CPI, and only when anomalous run
    /// cause inference on the metric window ("to reduce the cost of
    /// unnecessary performance diagnosis").
    ///
    /// # Errors
    ///
    /// Any error from detection or diagnosis.
    pub fn process(
        &self,
        context: &OperationContext,
        cpi: &[f64],
        window: &MetricFrame,
    ) -> Result<(DetectionResult, Option<Diagnosis>), CoreError> {
        let detection = self.detect(context, cpi)?;
        if detection.is_anomalous() {
            let diagnosis = self.diagnose(context, window)?;
            Ok((detection, Some(diagnosis)))
        } else {
            Ok((detection, None))
        }
    }

    // --------------------------------------------------------- inspection

    /// The trained performance model of a context.
    pub fn performance_model(&self, context: &OperationContext) -> Option<&PerformanceModel> {
        self.perf_models.get(context)
    }

    /// The invariant set of a context.
    pub fn invariant_set(&self, context: &OperationContext) -> Option<&InvariantSet> {
        self.invariants.get(context)
    }

    /// A snapshot of the signature database.
    pub fn signature_database(&self) -> SignatureDatabase {
        self.signatures.read().clone()
    }

    /// Contexts with trained models.
    pub fn contexts(&self) -> Vec<OperationContext> {
        let mut out: Vec<OperationContext> = self.perf_models.keys().cloned().collect();
        out.sort();
        out
    }

    /// Replaces the signature database (used when loading persisted state).
    pub fn set_signature_database(&self, db: SignatureDatabase) {
        *self.signatures.write() = db;
    }

    /// Installs a prebuilt invariant set (used when loading persisted state).
    pub fn set_invariant_set(&mut self, context: OperationContext, set: InvariantSet) {
        self.invariants.insert(context, set);
    }

    /// Installs a prebuilt performance model (used when loading persisted
    /// state).
    pub fn set_performance_model(&mut self, context: OperationContext, model: PerformanceModel) {
        self.perf_models.insert(context, model);
    }
}

impl std::fmt::Debug for InvarNetX {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InvarNetX")
            .field("measure", &self.measure.name())
            .field("contexts", &self.perf_models.len())
            .field("invariant_sets", &self.invariants.len())
            .field("signatures", &self.signatures.read().len())
            .finish()
    }
}

/// Adapter so `Box<dyn AssociationMeasure>` can feed the generic matrix
/// computation without re-boxing per call.
struct MeasureRef<'a>(&'a dyn AssociationMeasure);

impl AssociationMeasure for MeasureRef<'_> {
    fn score(&self, x: &[f64], y: &[f64]) -> f64 {
        self.0.score(x, y)
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_metrics::METRIC_COUNT;

    fn tiny_config() -> InvarNetConfig {
        InvarNetConfig {
            min_frame_ticks: 5,
            ..InvarNetConfig::default()
        }
    }

    /// A frame whose metrics are all driven by one latent ramp (strongly
    /// associated), with metric 0 optionally replaced by noise.
    fn coupled_frame(ticks: usize, seed: u64, break_metric0: bool) -> MetricFrame {
        let mut f = MetricFrame::new();
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for t in 0..ticks {
            let latent = (t as f64 * 0.23).sin() * 5.0 + 10.0 + 0.2 * next();
            let mut row: Vec<f64> = (0..METRIC_COUNT)
                .map(|k| latent * (k + 1) as f64 + 0.1 * next())
                .collect();
            if break_metric0 {
                row[0] = 100.0 * next();
            }
            f.push_tick(&row).unwrap();
        }
        f
    }

    fn ctx() -> OperationContext {
        OperationContext::new("10.0.0.1", "Test")
    }

    #[test]
    fn end_to_end_single_context() {
        let mut ix = InvarNetX::new(tiny_config());
        ix.set_threads(2);

        // Invariants from 3 normal frames.
        let frames: Vec<MetricFrame> = (0..3).map(|s| coupled_frame(60, s, false)).collect();
        ix.build_invariants(ctx(), &frames).unwrap();
        let inv = ix.invariant_set(&ctx()).unwrap();
        assert!(inv.len() > 200, "coupled frame should keep most pairs, got {}", inv.len());

        // Signature: metric 0 decoupled.
        let broken = coupled_frame(60, 77, true);
        ix.record_signature(&ctx(), "metric0-break", &broken).unwrap();
        ix.record_signature(&ctx(), "nothing", &coupled_frame(60, 78, false))
            .unwrap();

        // Diagnosis of a fresh broken window.
        let probe = coupled_frame(60, 99, true);
        let d = ix.diagnose(&ctx(), &probe).unwrap();
        assert_eq!(d.root_cause().unwrap().problem, "metric0-break");
        assert!(d.tuple.violation_count() > 0);
    }

    #[test]
    fn detection_gates_diagnosis() {
        let mut ix = InvarNetX::new(tiny_config());
        ix.set_threads(1);
        let cpi_traces: Vec<Vec<f64>> = (0..3)
            .map(|s| {
                ix_timeseries::SeriesBuilder::new(120)
                    .level(1.0)
                    .ar1(0.6)
                    .noise(0.02)
                    .build(s)
                    .unwrap()
                    .into_values()
            })
            .collect();
        ix.train_performance_model(ctx(), &cpi_traces).unwrap();
        let frames: Vec<MetricFrame> = (0..2).map(|s| coupled_frame(40, s, false)).collect();
        ix.build_invariants(ctx(), &frames).unwrap();
        ix.record_signature(&ctx(), "x", &coupled_frame(40, 7, true)).unwrap();

        // Normal CPI: no diagnosis performed.
        let normal = &cpi_traces[0];
        let (det, diag) = ix.process(&ctx(), normal, &coupled_frame(40, 8, true)).unwrap();
        assert!(!det.is_anomalous());
        assert!(diag.is_none());

        // Anomalous CPI: diagnosis runs.
        let mut hot = normal.clone();
        for v in hot[60..90].iter_mut() {
            *v *= 1.8;
        }
        let (det, diag) = ix.process(&ctx(), &hot, &coupled_frame(40, 9, true)).unwrap();
        assert!(det.is_anomalous());
        assert_eq!(diag.unwrap().root_cause().unwrap().problem, "x");
    }

    #[test]
    fn missing_state_errors() {
        let ix = InvarNetX::new(tiny_config());
        assert!(matches!(
            ix.detect(&ctx(), &[1.0; 50]),
            Err(CoreError::NoPerformanceModel(_))
        ));
        assert!(matches!(
            ix.violation_tuple(&ctx(), &coupled_frame(30, 1, false)),
            Err(CoreError::NoInvariants(_))
        ));
    }

    #[test]
    fn frame_too_short_is_rejected() {
        let mut ix = InvarNetX::new(InvarNetConfig::default());
        let short = coupled_frame(5, 1, false);
        assert!(matches!(
            ix.build_invariants(ctx(), &[short.clone(), short]),
            Err(CoreError::FrameTooShort { .. })
        ));
    }

    #[test]
    fn top_causes_and_hints() {
        let mut ix = InvarNetX::new(tiny_config());
        ix.set_threads(1);
        let frames: Vec<MetricFrame> = (0..2).map(|s| coupled_frame(50, s, false)).collect();
        ix.build_invariants(ctx(), &frames).unwrap();
        ix.record_signature(&ctx(), "break-a", &coupled_frame(50, 7, true)).unwrap();
        ix.record_signature(&ctx(), "clean", &coupled_frame(50, 8, false)).unwrap();

        let d = ix.diagnose(&ctx(), &coupled_frame(50, 9, true)).unwrap();
        // top_causes respects both k and the similarity floor.
        assert_eq!(d.top_causes(2, 0.0).len(), 2);
        assert_eq!(d.top_causes(1, 0.0).len(), 1);
        assert!(d.top_causes(5, 0.99).len() <= 2);

        // Hints name metric 0 (the broken one) in the strongest pairs.
        let inv = ix.invariant_set(&ctx()).unwrap();
        let hints = d.hints(inv);
        assert!(!hints.is_empty());
        let first = hints[0];
        assert!(
            first.0.index() == 0 || first.1.index() == 0,
            "strongest hint should involve the broken metric: {hints:?}"
        );
        // Sorted by deviation, descending.
        for w in hints.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
    }

    #[test]
    fn contexts_are_isolated() {
        let mut ix = InvarNetX::new(tiny_config());
        ix.set_threads(1);
        let a = OperationContext::new("n1", "W");
        let b = OperationContext::new("n2", "W");
        let frames: Vec<MetricFrame> = (0..2).map(|s| coupled_frame(40, s, false)).collect();
        ix.build_invariants(a.clone(), &frames).unwrap();
        assert!(ix.invariant_set(&a).is_some());
        assert!(ix.invariant_set(&b).is_none());
        ix.record_signature(&a, "p", &coupled_frame(40, 5, true)).unwrap();
        // Context b has no invariants: diagnosis must error, not borrow a's.
        assert!(ix.diagnose(&b, &coupled_frame(40, 6, true)).is_err());
    }
}
