//! The InvarNet-X facade: a thin batch-oriented wrapper over the layered
//! streaming [`Engine`].
//!
//! [`InvarNetX`] keeps the original whole-trace API (train, build
//! invariants, detect, diagnose) and its `&`-returning accessors; all real
//! work is delegated to an [`Engine`]. New code that ingests samples tick
//! by tick should use [`Engine`] directly.

use std::collections::BTreeMap;
use std::sync::Arc;

use ix_metrics::MetricFrame;

use crate::anomaly::{DetectionResult, PerformanceModel};
use crate::assoc::AssociationMatrix;
use crate::config::InvarNetConfig;
use crate::context::OperationContext;
use crate::engine::Engine;
use crate::invariants::InvariantSet;
use crate::measure::AssociationMeasure;
use crate::signature::SignatureDatabase;
use crate::CoreError;

pub use crate::engine::diagnosis::{Diagnosis, RankedCause};

/// The InvarNet-X system: per-context performance models, invariant sets
/// and a signature database, with a pluggable association measure.
///
/// The facade mirrors the engine's per-context state in plain maps so the
/// historical `&`-returning accessors ([`InvarNetX::performance_model`],
/// [`InvarNetX::invariant_set`]) keep working; the engine holds the same
/// state behind its shard locks.
pub struct InvarNetX {
    engine: Engine,
    perf_models: BTreeMap<OperationContext, Arc<PerformanceModel>>,
    invariants: BTreeMap<OperationContext, Arc<InvariantSet>>,
}

impl InvarNetX {
    /// A system with the default MIC measure.
    pub fn new(config: InvarNetConfig) -> Self {
        InvarNetX {
            engine: Engine::new(config),
            perf_models: BTreeMap::new(),
            invariants: BTreeMap::new(),
        }
    }

    /// A system with an explicit association measure (e.g. the ARX
    /// baseline).
    pub fn with_measure(config: InvarNetConfig, measure: Box<dyn AssociationMeasure>) -> Self {
        Self::from_engine(Engine::with_measure(config, Arc::from(measure)))
    }

    /// Wraps an already-assembled [`Engine`] (typically from
    /// [`Engine::builder`]) in the batch facade.
    pub fn from_engine(engine: Engine) -> Self {
        InvarNetX {
            engine,
            perf_models: BTreeMap::new(),
            invariants: BTreeMap::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &InvarNetConfig {
        self.engine.config()
    }

    /// The association measure's name ("MIC" / "ARX" / ...).
    pub fn measure_name(&self) -> &'static str {
        self.engine.measure_name()
    }

    /// The underlying streaming engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    // ------------------------------------------------------- offline part

    /// Trains the per-context ARIMA performance model on N normal CPI
    /// traces.
    ///
    /// # Errors
    ///
    /// Propagates training errors ([`CoreError::NotEnoughRuns`], ARIMA
    /// failures).
    pub fn train_performance_model(
        &mut self,
        context: OperationContext,
        cpi_traces: &[Vec<f64>],
    ) -> Result<(), CoreError> {
        self.engine
            .train_performance_model(context.clone(), cpi_traces)?;
        let model = self
            .engine
            .performance_model(&context)
            .expect("engine trained the model above");
        self.perf_models.insert(context, model);
        Ok(())
    }

    /// Computes the pairwise association matrix of one frame under the
    /// configured measure.
    ///
    /// # Errors
    ///
    /// [`CoreError::FrameTooShort`] when the frame has too few ticks.
    pub fn association_matrix(&self, frame: &MetricFrame) -> Result<AssociationMatrix, CoreError> {
        self.engine.association_matrix(frame)
    }

    /// Runs Algorithm 1: builds the invariant set of a context from the
    /// metric frames of N normal runs.
    ///
    /// For comparability, pass frames windowed the same way diagnosis
    /// windows will be (association estimates depend on sample count).
    ///
    /// # Errors
    ///
    /// [`CoreError::NotEnoughRuns`] / [`CoreError::FrameTooShort`].
    pub fn build_invariants(
        &mut self,
        context: OperationContext,
        normal_frames: &[MetricFrame],
    ) -> Result<(), CoreError> {
        self.engine
            .build_invariants(context.clone(), normal_frames)?;
        let set = self
            .engine
            .invariant_set(&context)
            .expect("engine built the set above");
        self.invariants.insert(context, set);
        Ok(())
    }

    /// Builds the violation tuple of an abnormal window against the
    /// context's invariants.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoInvariants`] / frame errors.
    pub fn violation_tuple(
        &self,
        context: &OperationContext,
        abnormal: &MetricFrame,
    ) -> Result<crate::signature::ViolationTuple, CoreError> {
        self.engine.violation_tuple(context, abnormal)
    }

    /// Records a signature for an investigated problem ("once the
    /// performance problem is resolved, a new signature will be added").
    ///
    /// # Errors
    ///
    /// Same as [`InvarNetX::violation_tuple`].
    pub fn record_signature(
        &self,
        context: &OperationContext,
        problem: &str,
        abnormal: &MetricFrame,
    ) -> Result<(), CoreError> {
        self.engine.record_signature(context, problem, abnormal)
    }

    // -------------------------------------------------------- online part

    /// Scores a CPI trace against the context's performance model.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoPerformanceModel`].
    pub fn detect(
        &self,
        context: &OperationContext,
        cpi: &[f64],
    ) -> Result<DetectionResult, CoreError> {
        self.engine.detect(context, cpi)
    }

    /// Cause inference: matches the abnormal window's violation tuple
    /// against the signature database.
    ///
    /// # Errors
    ///
    /// Missing invariants/signatures for the context, or frame errors.
    pub fn diagnose(
        &self,
        context: &OperationContext,
        abnormal: &MetricFrame,
    ) -> Result<Diagnosis, CoreError> {
        self.engine.diagnose(context, abnormal)
    }

    /// The full online step: detect on CPI, and only when anomalous run
    /// cause inference on the metric window ("to reduce the cost of
    /// unnecessary performance diagnosis").
    ///
    /// # Errors
    ///
    /// Any error from detection or diagnosis.
    pub fn process(
        &self,
        context: &OperationContext,
        cpi: &[f64],
        window: &MetricFrame,
    ) -> Result<(DetectionResult, Option<Diagnosis>), CoreError> {
        self.engine.process(context, cpi, window)
    }

    // --------------------------------------------------------- inspection

    /// The trained performance model of a context.
    pub fn performance_model(&self, context: &OperationContext) -> Option<&PerformanceModel> {
        self.perf_models.get(context).map(|m| m.as_ref())
    }

    /// The invariant set of a context.
    pub fn invariant_set(&self, context: &OperationContext) -> Option<&InvariantSet> {
        self.invariants.get(context).map(|s| s.as_ref())
    }

    /// A snapshot of the signature database.
    ///
    /// Clones the whole database; prefer
    /// [`InvarNetX::with_signature_database`] for read-only access.
    pub fn signature_database(&self) -> SignatureDatabase {
        self.engine.signature_database()
    }

    /// Runs `f` against the signature database under its lock, without
    /// cloning — the cheap read path for queries like `len()`.
    pub fn with_signature_database<R>(&self, f: impl FnOnce(&SignatureDatabase) -> R) -> R {
        self.engine.with_signature_database(f)
    }

    /// Contexts with trained models, in key order (`BTreeMap` keeps the
    /// listing deterministic without a post-hoc sort).
    pub fn contexts(&self) -> Vec<OperationContext> {
        self.perf_models.keys().cloned().collect()
    }

    /// Replaces the signature database (used when loading persisted state).
    pub fn set_signature_database(&self, db: SignatureDatabase) {
        self.engine.set_signature_database(db);
    }

    /// Installs a prebuilt invariant set (used when loading persisted state).
    pub fn set_invariant_set(&mut self, context: OperationContext, set: InvariantSet) {
        self.engine
            .install_invariant_set_internal(context.clone(), set.clone());
        self.invariants.insert(context, Arc::new(set));
    }

    /// Installs a prebuilt performance model (used when loading persisted
    /// state).
    pub fn set_performance_model(&mut self, context: OperationContext, model: PerformanceModel) {
        self.engine
            .install_performance_model_internal(context.clone(), model.clone());
        self.perf_models.insert(context, Arc::new(model));
    }
}

impl std::fmt::Debug for InvarNetX {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InvarNetX")
            .field("measure", &self.measure_name())
            .field("contexts", &self.perf_models.len())
            .field("invariant_sets", &self.invariants.len())
            .field("signatures", &self.with_signature_database(|db| db.len()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_metrics::METRIC_COUNT;

    fn tiny_config() -> InvarNetConfig {
        InvarNetConfig {
            min_frame_ticks: 5,
            ..InvarNetConfig::default()
        }
    }

    /// A frame whose metrics are all driven by one latent ramp (strongly
    /// associated), with metric 0 optionally replaced by noise.
    fn coupled_frame(ticks: usize, seed: u64, break_metric0: bool) -> MetricFrame {
        let mut f = MetricFrame::new();
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for t in 0..ticks {
            let latent = (t as f64 * 0.23).sin() * 5.0 + 10.0 + 0.2 * next();
            let mut row: Vec<f64> = (0..METRIC_COUNT)
                .map(|k| latent * (k + 1) as f64 + 0.1 * next())
                .collect();
            if break_metric0 {
                row[0] = 100.0 * next();
            }
            f.push_tick(&row).unwrap();
        }
        f
    }

    fn ctx() -> OperationContext {
        OperationContext::new("10.0.0.1", "Test")
    }

    #[test]
    fn end_to_end_single_context() {
        let mut ix =
            InvarNetX::from_engine(Engine::builder().config(tiny_config()).threads(2).build());

        // Invariants from 3 normal frames.
        let frames: Vec<MetricFrame> = (0..3).map(|s| coupled_frame(60, s, false)).collect();
        ix.build_invariants(ctx(), &frames).unwrap();
        let inv = ix.invariant_set(&ctx()).unwrap();
        assert!(
            inv.len() > 200,
            "coupled frame should keep most pairs, got {}",
            inv.len()
        );

        // Signature: metric 0 decoupled.
        let broken = coupled_frame(60, 77, true);
        ix.record_signature(&ctx(), "metric0-break", &broken)
            .unwrap();
        ix.record_signature(&ctx(), "nothing", &coupled_frame(60, 78, false))
            .unwrap();

        // Diagnosis of a fresh broken window.
        let probe = coupled_frame(60, 99, true);
        let d = ix.diagnose(&ctx(), &probe).unwrap();
        assert_eq!(d.root_cause().unwrap().problem, "metric0-break");
        assert!(d.tuple.violation_count() > 0);
    }

    #[test]
    fn detection_gates_diagnosis() {
        let mut ix =
            InvarNetX::from_engine(Engine::builder().config(tiny_config()).threads(1).build());
        let cpi_traces: Vec<Vec<f64>> = (0..3)
            .map(|s| {
                ix_timeseries::SeriesBuilder::new(120)
                    .level(1.0)
                    .ar1(0.6)
                    .noise(0.02)
                    .build(s)
                    .unwrap()
                    .into_values()
            })
            .collect();
        ix.train_performance_model(ctx(), &cpi_traces).unwrap();
        let frames: Vec<MetricFrame> = (0..2).map(|s| coupled_frame(40, s, false)).collect();
        ix.build_invariants(ctx(), &frames).unwrap();
        ix.record_signature(&ctx(), "x", &coupled_frame(40, 7, true))
            .unwrap();

        // Normal CPI: no diagnosis performed.
        let normal = &cpi_traces[0];
        let (det, diag) = ix
            .process(&ctx(), normal, &coupled_frame(40, 8, true))
            .unwrap();
        assert!(!det.is_anomalous());
        assert!(diag.is_none());

        // Anomalous CPI: diagnosis runs.
        let mut hot = normal.clone();
        for v in hot[60..90].iter_mut() {
            *v *= 1.8;
        }
        let (det, diag) = ix
            .process(&ctx(), &hot, &coupled_frame(40, 9, true))
            .unwrap();
        assert!(det.is_anomalous());
        assert_eq!(diag.unwrap().root_cause().unwrap().problem, "x");
    }

    #[test]
    fn missing_state_errors() {
        let ix = InvarNetX::new(tiny_config());
        assert!(matches!(
            ix.detect(&ctx(), &[1.0; 50]),
            Err(CoreError::NoPerformanceModel(_))
        ));
        assert!(matches!(
            ix.violation_tuple(&ctx(), &coupled_frame(30, 1, false)),
            Err(CoreError::NoInvariants(_))
        ));
    }

    #[test]
    fn frame_too_short_is_rejected() {
        let mut ix = InvarNetX::new(InvarNetConfig::default());
        let short = coupled_frame(5, 1, false);
        assert!(matches!(
            ix.build_invariants(ctx(), &[short.clone(), short]),
            Err(CoreError::FrameTooShort { .. })
        ));
    }

    #[test]
    fn top_causes_and_hints() {
        let mut ix =
            InvarNetX::from_engine(Engine::builder().config(tiny_config()).threads(1).build());
        let frames: Vec<MetricFrame> = (0..2).map(|s| coupled_frame(50, s, false)).collect();
        ix.build_invariants(ctx(), &frames).unwrap();
        ix.record_signature(&ctx(), "break-a", &coupled_frame(50, 7, true))
            .unwrap();
        ix.record_signature(&ctx(), "clean", &coupled_frame(50, 8, false))
            .unwrap();

        let d = ix.diagnose(&ctx(), &coupled_frame(50, 9, true)).unwrap();
        // top_causes respects both k and the similarity floor.
        assert_eq!(d.top_causes(2, 0.0).len(), 2);
        assert_eq!(d.top_causes(1, 0.0).len(), 1);
        assert!(d.top_causes(5, 0.99).len() <= 2);

        // Hints name metric 0 (the broken one) in the strongest pairs.
        let inv = ix.invariant_set(&ctx()).unwrap();
        let hints = d.hints(inv).unwrap();
        assert!(!hints.is_empty());
        let first = hints[0];
        assert!(
            first.0.index() == 0 || first.1.index() == 0,
            "strongest hint should involve the broken metric: {hints:?}"
        );
        // Sorted by deviation, descending.
        for w in hints.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
    }

    #[test]
    fn hints_reject_mismatched_invariant_set() {
        let mut ix =
            InvarNetX::from_engine(Engine::builder().config(tiny_config()).threads(1).build());
        let frames: Vec<MetricFrame> = (0..2).map(|s| coupled_frame(50, s, false)).collect();
        ix.build_invariants(ctx(), &frames).unwrap();
        ix.record_signature(&ctx(), "p", &coupled_frame(50, 7, true))
            .unwrap();
        let d = ix.diagnose(&ctx(), &coupled_frame(50, 9, true)).unwrap();

        // A set with a different pair population (different tau) has a
        // different length; hints must refuse it instead of panicking.
        let mats: Vec<AssociationMatrix> = frames
            .iter()
            .map(|f| ix.association_matrix(f).unwrap())
            .collect();
        let other = InvariantSet::select(&mats, 1e-9);
        if other.len() != d.tuple.len() {
            assert!(matches!(
                d.hints(&other),
                Err(CoreError::TupleLengthMismatch { .. })
            ));
        }
        // The matching set works.
        assert!(d.hints(ix.invariant_set(&ctx()).unwrap()).is_ok());
    }

    #[test]
    fn contexts_are_isolated() {
        let mut ix =
            InvarNetX::from_engine(Engine::builder().config(tiny_config()).threads(1).build());
        let a = OperationContext::new("n1", "W");
        let b = OperationContext::new("n2", "W");
        let frames: Vec<MetricFrame> = (0..2).map(|s| coupled_frame(40, s, false)).collect();
        ix.build_invariants(a.clone(), &frames).unwrap();
        assert!(ix.invariant_set(&a).is_some());
        assert!(ix.invariant_set(&b).is_none());
        ix.record_signature(&a, "p", &coupled_frame(40, 5, true))
            .unwrap();
        // Context b has no invariants: diagnosis must error, not borrow a's.
        assert!(ix.diagnose(&b, &coupled_frame(40, 6, true)).is_err());
    }
}
