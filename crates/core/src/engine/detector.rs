//! The detection layer: streaming anomaly detectors over CPI.
//!
//! A [`Detector`] is the trained, shareable half (one per context); a
//! [`DetectorRun`] is the mutable per-run half that consumes one CPI sample
//! per tick and reports a [`TickDecision`]. Two implementations exist:
//!
//! - [`ArimaDetector`] — the paper's detector: one-step ARIMA prediction
//!   residuals against a calibrated threshold, with the consecutive-count
//!   rule. Its incremental run reproduces
//!   [`PerformanceModel::detect`] *bit-exactly*: same differencing
//!   cascade, same innovation recursion, same binomial reconstruction,
//!   evaluated in the same order.
//! - [`CusumStreamDetector`] — two-sided tabular CUSUM on standardized raw
//!   CPI, the threshold-the-metric baseline, selectable through
//!   [`crate::config::DetectorChoice::Cusum`].

use std::collections::VecDeque;
use std::sync::Arc;

use crate::anomaly::{DetectionResult, PerformanceModel, ThresholdRule};
use crate::cusum::CusumDetector;

/// What the detection layer concluded about one ingested CPI sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickDecision {
    /// The detector's per-tick score (absolute prediction residual for
    /// ARIMA; the larger cumulative sum, in sigmas, for CUSUM).
    pub residual: f64,
    /// Whether the score exceeded the detector's threshold at this tick.
    pub exceeded: bool,
    /// Whether the detector reports a performance problem at this tick
    /// (for ARIMA, after the consecutive-exceedance rule).
    pub anomalous: bool,
}

/// The mutable, per-run state of a streaming detector.
///
/// `Send + Sync` because runs live inside the engine's sharded `RwLock`
/// map: mutation happens under a write lock, but read-path inspection
/// ([`DetectorRun::result`]) can observe a run from any thread.
pub trait DetectorRun: Send + Sync {
    /// Consumes the next CPI sample and scores it.
    fn step(&mut self, x: f64) -> TickDecision;

    /// The accumulated batch-shaped result of everything stepped so far.
    fn result(&self) -> DetectionResult;
}

/// The trained, shareable half of a streaming detector.
pub trait Detector: Send + Sync {
    /// Short name ("ARIMA" / "CUSUM").
    fn name(&self) -> &'static str;

    /// Starts a fresh run (e.g. at the start of a job execution).
    fn begin_run(&self) -> Box<dyn DetectorRun>;

    /// Scores a complete trace at once. The default implementation streams
    /// the trace through a fresh run; implementations may override with a
    /// cheaper batch path as long as the results are identical.
    fn score(&self, cpi: &[f64]) -> DetectionResult {
        let mut run = self.begin_run();
        for &x in cpi {
            run.step(x);
        }
        run.result()
    }
}

// ---------------------------------------------------------------- ARIMA

/// The paper's detector (Sect. 3.2) in streaming form.
pub struct ArimaDetector {
    model: Arc<PerformanceModel>,
    rule: ThresholdRule,
    consecutive: usize,
}

impl ArimaDetector {
    /// Wraps a trained performance model.
    pub fn new(model: Arc<PerformanceModel>, rule: ThresholdRule, consecutive: usize) -> Self {
        ArimaDetector {
            model,
            rule,
            consecutive: consecutive.max(1),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &PerformanceModel {
        &self.model
    }
}

impl Detector for ArimaDetector {
    fn name(&self) -> &'static str {
        "ARIMA"
    }

    fn begin_run(&self) -> Box<dyn DetectorRun> {
        let arima = self.model.arima();
        let spec = arima.spec();
        Box::new(ArimaRun {
            threshold: self.model.threshold(self.rule),
            warm: spec.warmup(),
            start: spec.p.max(spec.q),
            d: spec.d,
            intercept: arima.intercept(),
            phi: arima.ar_coefficients().to_vec(),
            theta: arima.ma_coefficients().to_vec(),
            consecutive: self.consecutive,
            diff_regs: vec![None; spec.d],
            w_hist: VecDeque::with_capacity(spec.p + 1),
            e_hist: VecDeque::with_capacity(spec.q + 1),
            x_hist: VecDeque::with_capacity(spec.d + 1),
            t: 0,
            streak: 0,
            acc: RunAccumulator::new(),
        })
    }

    fn score(&self, cpi: &[f64]) -> DetectionResult {
        // Batch path: defer to the model directly (the incremental run is
        // verified bit-identical by tests, but this avoids per-tick
        // bookkeeping for full traces).
        self.model.detect(cpi, self.rule, self.consecutive)
    }
}

/// Accumulates per-tick decisions into a batch-shaped [`DetectionResult`].
struct RunAccumulator {
    residuals: Vec<f64>,
    exceedances: Vec<bool>,
    anomalies: Vec<bool>,
    first_anomaly: Option<usize>,
}

impl RunAccumulator {
    fn new() -> Self {
        RunAccumulator {
            residuals: Vec::new(),
            exceedances: Vec::new(),
            anomalies: Vec::new(),
            first_anomaly: None,
        }
    }

    fn push(&mut self, d: &TickDecision) {
        if d.anomalous {
            self.first_anomaly.get_or_insert(self.residuals.len());
        }
        self.residuals.push(d.residual);
        self.exceedances.push(d.exceeded);
        self.anomalies.push(d.anomalous);
    }

    fn result(&self, threshold: f64) -> DetectionResult {
        DetectionResult {
            residuals: self.residuals.clone(),
            exceedances: self.exceedances.clone(),
            anomalies: self.anomalies.clone(),
            threshold,
            first_anomaly: self.first_anomaly,
        }
    }
}

/// Incremental replay of [`PerformanceModel::detect`].
///
/// State per tick: `d` cascaded differencing registers (each holding the
/// previous output of the stage above), the last `p` differenced values,
/// the last `q` innovations and the last `d` original values for the
/// binomial reconstruction — exactly the quantities the batch recursion
/// reads at index `t`.
struct ArimaRun {
    threshold: f64,
    warm: usize,
    start: usize,
    d: usize,
    intercept: f64,
    phi: Vec<f64>,
    theta: Vec<f64>,
    consecutive: usize,
    /// Cascade register `i` holds the previous input of differencing
    /// stage `i`; `None` until that stage has seen one value.
    diff_regs: Vec<Option<f64>>,
    /// Recent differenced values, newest first (`w_hist[i] = w[wt-1-i]`).
    w_hist: VecDeque<f64>,
    /// Recent innovations, newest first (`e_hist[j] = e[wt-1-j]`).
    e_hist: VecDeque<f64>,
    /// Recent original values, newest first (`x_hist[k-1] = x[t-k]`).
    x_hist: VecDeque<f64>,
    t: usize,
    streak: usize,
    acc: RunAccumulator,
}

impl ArimaRun {
    /// Feeds `x` through the differencing cascade; `Some(w[t - d])` once
    /// all `d` stages have history.
    fn difference(&mut self, x: f64) -> Option<f64> {
        let mut v = x;
        for reg in &mut self.diff_regs {
            match reg.replace(v) {
                Some(prev) => v -= prev,
                None => return None,
            }
        }
        Some(v)
    }
}

impl DetectorRun for ArimaRun {
    fn step(&mut self, x: f64) -> TickDecision {
        let t = self.t;
        self.t += 1;

        // Differenced-scale recursion, identical to the batch loop.
        let mut w_hat = None;
        if let Some(w) = self.difference(x) {
            let wt = t - self.d;
            let (pred, e) = if wt < self.start {
                (w, 0.0)
            } else {
                let mut pred = self.intercept;
                for (i, &phi) in self.phi.iter().enumerate() {
                    pred += phi * self.w_hist[i];
                }
                for (j, &theta) in self.theta.iter().enumerate() {
                    pred += theta * self.e_hist[j];
                }
                (pred, w - pred)
            };
            w_hat = Some(pred);
            if !self.phi.is_empty() {
                self.w_hist.push_front(w);
                self.w_hist.truncate(self.phi.len());
            }
            if !self.theta.is_empty() {
                self.e_hist.push_front(e);
                self.e_hist.truncate(self.theta.len());
            }
        }

        // Original-scale forecast: echo during warmup, binomial
        // reconstruction afterwards.
        let forecast = if t < self.warm {
            x
        } else {
            // lint: allow(hot-path-panic) t >= warm guarantees the cascade
            // above ran to completion and produced w_hat
            let mut pred = w_hat.expect("past warmup implies full cascade");
            let mut sign = 1.0;
            let mut binom = 1.0;
            for k in 1..=self.d {
                binom = binom * (self.d - k + 1) as f64 / k as f64;
                sign = -sign;
                pred += -sign * binom * self.x_hist[k - 1];
            }
            pred
        };
        if self.d > 0 {
            self.x_hist.push_front(x);
            self.x_hist.truncate(self.d);
        }

        let residual = (x - forecast).abs();
        let exceeded = t >= self.warm && residual > self.threshold;
        self.streak = if exceeded { self.streak + 1 } else { 0 };
        let decision = TickDecision {
            residual,
            exceeded,
            anomalous: self.streak >= self.consecutive,
        };
        self.acc.push(&decision);
        decision
    }

    fn result(&self) -> DetectionResult {
        self.acc.result(self.threshold)
    }
}

// ---------------------------------------------------------------- CUSUM

/// Streaming two-sided tabular CUSUM (see [`CusumDetector`]).
///
/// The per-tick residual is the larger of the two cumulative sums *before*
/// the post-alarm reset, so `residual > h` exactly when the tick alarms;
/// `exceeded` and `anomalous` coincide because CUSUM already accumulates
/// evidence — no extra consecutive-count rule is applied.
pub struct CusumStreamDetector {
    detector: CusumDetector,
}

impl CusumStreamDetector {
    /// Wraps a calibrated CUSUM detector.
    pub fn new(detector: CusumDetector) -> Self {
        CusumStreamDetector { detector }
    }

    /// The wrapped detector.
    pub fn cusum(&self) -> &CusumDetector {
        &self.detector
    }
}

impl Detector for CusumStreamDetector {
    fn name(&self) -> &'static str {
        "CUSUM"
    }

    fn begin_run(&self) -> Box<dyn DetectorRun> {
        Box::new(CusumRun {
            detector: self.detector.clone(),
            s_hi: 0.0,
            s_lo: 0.0,
            acc: RunAccumulator::new(),
        })
    }
}

struct CusumRun {
    detector: CusumDetector,
    s_hi: f64,
    s_lo: f64,
    acc: RunAccumulator,
}

impl DetectorRun for CusumRun {
    fn step(&mut self, x: f64) -> TickDecision {
        let z = (x - self.detector.mu) / self.detector.sigma;
        self.s_hi = (self.s_hi + z - self.detector.k).max(0.0);
        self.s_lo = (self.s_lo - z - self.detector.k).max(0.0);
        let excursion = self.s_hi.max(self.s_lo);
        let alarm = excursion > self.detector.h;
        if alarm {
            // Restart after an alarm so subsequent shifts are also seen.
            self.s_hi = 0.0;
            self.s_lo = 0.0;
        }
        let decision = TickDecision {
            residual: excursion,
            exceeded: alarm,
            anomalous: alarm,
        };
        self.acc.push(&decision);
        decision
    }

    fn result(&self) -> DetectionResult {
        self.acc.result(self.detector.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_timeseries::SeriesBuilder;

    fn cpi(seed: u64) -> Vec<f64> {
        SeriesBuilder::new(150)
            .level(1.2)
            .ar1(0.7)
            .noise(0.03)
            .build(seed)
            .unwrap()
            .into_values()
    }

    fn model() -> Arc<PerformanceModel> {
        let traces: Vec<Vec<f64>> = (0..4).map(cpi).collect();
        Arc::new(PerformanceModel::train(&traces, 1.2).unwrap())
    }

    /// The crux of the streaming refactor: tick-at-a-time stepping must
    /// reproduce the batch detector bit for bit.
    #[test]
    fn incremental_arima_matches_batch_bitexactly() {
        let m = model();
        let det = ArimaDetector::new(Arc::clone(&m), ThresholdRule::BetaMax, 3);
        for seed in [50u64, 51, 52] {
            let mut xs = cpi(seed);
            if seed == 52 {
                for v in xs[70..100].iter_mut() {
                    *v *= 1.7; // make one trace anomalous
                }
            }
            let batch = m.detect(&xs, ThresholdRule::BetaMax, 3);
            let mut run = det.begin_run();
            for &x in &xs {
                run.step(x);
            }
            let streamed = run.result();
            assert_eq!(streamed, batch, "seed {seed}");
            // Per-tick bit equality, not just structural equality.
            for (t, (a, b)) in streamed.residuals.iter().zip(&batch.residuals).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "residual bits differ at tick {t}");
            }
        }
    }

    /// Differenced models exercise the cascade + binomial reconstruction.
    #[test]
    fn incremental_matches_batch_with_differencing() {
        use ix_arima::{ArimaModel, ArimaSpec};
        // Random-walk-ish series so ARIMA(1,1,1) is a sensible fit.
        let mut xs = vec![1.0f64];
        let mut s = 9u64;
        for _ in 0..200 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let step = ((s >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 0.1;
            xs.push(xs.last().unwrap() + step);
        }
        let arima = ArimaModel::fit(&xs, ArimaSpec::new(1, 1, 1)).unwrap();
        let stats = crate::anomaly::ResidualStats {
            max: 0.05,
            min: 0.0,
            p95: 0.04,
        };
        let m = Arc::new(PerformanceModel::from_parts(arima, stats, 1.2));
        let batch = m.detect(&xs, ThresholdRule::BetaMax, 3);
        let det = ArimaDetector::new(Arc::clone(&m), ThresholdRule::BetaMax, 3);
        let mut run = det.begin_run();
        for &x in &xs {
            run.step(x);
        }
        assert_eq!(run.result(), batch);
    }

    #[test]
    fn batch_score_equals_model_detect() {
        let m = model();
        let det = ArimaDetector::new(Arc::clone(&m), ThresholdRule::BetaMax, 3);
        let xs = cpi(60);
        assert_eq!(det.score(&xs), m.detect(&xs, ThresholdRule::BetaMax, 3));
    }

    #[test]
    fn cusum_stream_matches_batch_alarms() {
        let traces: Vec<Vec<f64>> = (0..4).map(cpi).collect();
        let cusum =
            CusumDetector::train(&traces, CusumDetector::DEFAULT_K, CusumDetector::DEFAULT_H)
                .unwrap();
        let mut xs = cpi(61);
        for v in xs[90..].iter_mut() {
            *v += 0.10;
        }
        let batch = cusum.detect(&xs);
        let det = CusumStreamDetector::new(cusum);
        let streamed = det.score(&xs);
        assert_eq!(streamed.anomalies, batch.alarms);
        assert_eq!(streamed.first_anomaly, batch.first_alarm);
        assert!(streamed.is_anomalous());
        assert_eq!(det.name(), "CUSUM");
    }
}
