//! Read-only engine inspection for debuggers and consoles.
//!
//! [`EngineInspector`] is a borrowing view over a live [`Engine`] that
//! exposes exactly the state a replay debugger or operator console needs
//! — per-context detector state, the sliding window, queue depth, health
//! — through the engine's *existing* read paths. It introduces no new
//! locks and takes no lock for longer than the engine's own accessors
//! do, so inspection never perturbs the ingest hot path it observes.

use ix_metrics::MetricFrame;

use crate::anomaly::DetectionResult;
use crate::context::OperationContext;

use super::resilience::HealthState;
use super::Engine;

/// A read-only borrowing view over a live [`Engine`] (see
/// [`Engine::inspector`]). Every accessor goes through the engine's
/// existing read paths; nothing here can mutate engine state.
#[derive(Clone, Copy)]
pub struct EngineInspector<'a> {
    engine: &'a Engine,
}

/// A point-in-time copy of one context's streaming state, taken under
/// that context's shard read lock (see
/// [`EngineInspector::context_state`]).
#[derive(Debug, Clone)]
pub struct ContextStateSnapshot {
    /// Ticks ingested into the current run.
    pub run_ticks: usize,
    /// Ticks currently held by the sliding window.
    pub window_ticks: usize,
    /// Whether the previous tick was anomalous (the edge-trigger memory).
    pub prev_anomalous: bool,
    /// Whether a trained performance model is installed.
    pub has_model: bool,
    /// Whether a streaming detector is installed.
    pub has_detector: bool,
    /// Whether an invariant set is installed.
    pub has_invariants: bool,
    /// A batch copy of the sliding window's current contents.
    pub window: MetricFrame,
    /// The batch-shaped detection result accumulated by the in-flight
    /// detector run (`None` before the first ingest of a run).
    pub detection: Option<DetectionResult>,
}

impl Engine {
    /// A read-only inspector over this engine — the state-inspection
    /// surface behind the replay debugger and the operator console.
    pub fn inspector(&self) -> EngineInspector<'_> {
        EngineInspector { engine: self }
    }
}

impl EngineInspector<'_> {
    /// The lifetime tick counter: total ticks ingested across all
    /// contexts since the engine was built.
    pub fn lifetime_ticks(&self) -> u64 {
        let counter = self.engine.tick_counter();
        // ordering: Relaxed — a monotone counter read for display; no
        // other state is inferred from it.
        counter.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Ticks currently waiting in the bounded ingest queue.
    pub fn queued_ticks(&self) -> usize {
        self.engine.queued_ticks()
    }

    /// Effective per-shard capacity of the bounded ingest queue.
    pub fn queue_capacity(&self) -> usize {
        self.engine.ingest_queue_capacity()
    }

    /// The engine's current health state.
    pub fn health(&self) -> HealthState {
        self.engine.health()
    }

    /// Signatures currently held by the signature database.
    pub fn signature_count(&self) -> usize {
        self.engine.with_signature_database(|db| db.len())
    }

    /// All contexts the engine has state for (trained or not), sorted.
    pub fn known_contexts(&self) -> Vec<OperationContext> {
        self.engine.state().contexts()
    }

    /// A point-in-time snapshot of one context's streaming state, or
    /// `None` when the engine holds no state for the context. The copy is
    /// taken under the context's shard read lock — the same lock every
    /// other engine read of this context takes.
    pub fn context_state(&self, context: &OperationContext) -> Option<ContextStateSnapshot> {
        self.engine.state().with(context, |s| ContextStateSnapshot {
            run_ticks: s.run_ticks,
            window_ticks: s.window.ticks(),
            prev_anomalous: s.prev_anomalous,
            has_model: s.perf_model.is_some(),
            has_detector: s.detector.is_some(),
            has_invariants: s.invariants.is_some(),
            window: s.window.to_frame(),
            detection: s.run.as_ref().map(|r| r.result()),
        })
    }
}

impl std::fmt::Debug for EngineInspector<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineInspector")
            .field("lifetime_ticks", &self.lifetime_ticks())
            .field("queued_ticks", &self.queued_ticks())
            .field("health", &self.health())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::InvarNetConfig;
    use crate::context::OperationContext;
    use crate::engine::Engine;

    #[test]
    fn inspector_reads_engine_state_without_mutating() {
        let engine = Engine::builder()
            .config(InvarNetConfig::default())
            .threads(1)
            .build();
        let inspector = engine.inspector();
        assert_eq!(inspector.lifetime_ticks(), 0);
        assert_eq!(inspector.queued_ticks(), 0);
        assert!(inspector.queue_capacity() > 0);
        assert_eq!(inspector.signature_count(), 0);
        assert!(inspector.known_contexts().is_empty());
        let ctx = OperationContext::new("10.0.0.1", "Sort");
        assert!(inspector.context_state(&ctx).is_none());
    }

    #[test]
    fn context_snapshot_reflects_training() {
        let engine = Engine::builder()
            .config(InvarNetConfig::default())
            .threads(1)
            .build();
        let ctx = OperationContext::new("10.0.0.1", "Sort");
        let traces: Vec<Vec<f64>> = (0..5)
            .map(|r| {
                (0..40)
                    .map(|t| 1.0 + 0.01 * ((t + r) as f64).sin())
                    .collect()
            })
            .collect();
        engine
            .train_performance_model(ctx.clone(), &traces)
            .expect("train");
        let snap = engine
            .inspector()
            .context_state(&ctx)
            .expect("state exists after training");
        assert!(snap.has_model);
        assert!(snap.has_detector);
        assert!(!snap.has_invariants);
        assert_eq!(snap.run_ticks, 0);
        assert_eq!(snap.window_ticks, 0);
        assert!(snap.detection.is_none());
    }
}
