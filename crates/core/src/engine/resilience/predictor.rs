//! The sweep-cost predictor behind [`super::SweepBudget`]'s
//! predicted-overrun check.
//!
//! The engine keeps two exponential moving averages of recent sweep cost:
//! one for full from-scratch sweeps and one for incremental
//! screen-then-confirm passes ([`crate::IncrementalSweep`]). The full
//! estimate gates [`crate::Engine::diagnose_with_budget`]'s wall budget
//! *before* any wall-clock is burned; the incremental estimate lets the
//! ladder recognize that a context with live incremental state is far
//! cheaper to serve than its full-sweep history suggests.
//!
//! Two failure modes of the naive EWMA are fixed here:
//!
//! - **Stuck-degraded**: once the estimate exceeds the wall budget every
//!   sweep is skipped, so no new sample ever lands and the estimate can
//!   never recover — even after the overload that inflated it has passed.
//!   [`SweepCostPredictor::note_skipped_should_probe`] grants one probe
//!   sweep after every [`PROBE_AFTER_SKIPS`] consecutive skips, giving the
//!   estimate a fresh sample to converge on.
//! - **Slow downward re-convergence**: the quarter-weight fold that keeps
//!   the estimate calm on the way *up* (one slow outlier should not
//!   degrade the next sweep) made it take ~8 samples to trust a regime
//!   shift back *down*. Downward samples now fold at half weight, so a
//!   cheap steady state is re-learned within a few sweeps (pinned by the
//!   step-response test below).

use std::sync::atomic::{AtomicU64, Ordering};

/// Consecutive predictor-skipped sweeps before one probe sweep is let
/// through to refresh the estimate.
pub(crate) const PROBE_AFTER_SKIPS: u64 = 4;

/// EWMA estimates of full and incremental sweep cost, in microseconds
/// (`0` = no sample yet). All methods are lock-free and advisory: a lost
/// concurrent update skews an estimate by one sample at worst.
#[derive(Debug, Default)]
pub(crate) struct SweepCostPredictor {
    full_micros: AtomicU64,
    incremental_micros: AtomicU64,
    consecutive_skips: AtomicU64,
}

impl SweepCostPredictor {
    pub(crate) fn new() -> Self {
        SweepCostPredictor::default()
    }

    /// Predicted cost of the next full from-scratch sweep in µs (`0` when
    /// no full sweep has completed yet).
    pub(crate) fn predicted_full_micros(&self) -> u64 {
        // ordering: Relaxed — advisory load estimate; a stale read merely
        // degrades (or probes) one sweep earlier or later.
        self.full_micros.load(Ordering::Relaxed)
    }

    /// Predicted cost of the next incremental screen-then-confirm pass in
    /// µs (`0` when none has completed yet).
    pub(crate) fn predicted_incremental_micros(&self) -> u64 {
        // ordering: Relaxed — same advisory reasoning as the full estimate.
        self.incremental_micros.load(Ordering::Relaxed)
    }

    /// Folds one completed full-sweep duration into the full estimate and
    /// clears the skip streak (a real sample beats any probe schedule).
    pub(crate) fn observe_full(&self, micros: u64) {
        fold(&self.full_micros, micros);
        // ordering: Relaxed — the streak is a heuristic counter.
        self.consecutive_skips.store(0, Ordering::Relaxed);
    }

    /// Folds one completed incremental-pass duration into the incremental
    /// estimate and clears the skip streak.
    pub(crate) fn observe_incremental(&self, micros: u64) {
        fold(&self.incremental_micros, micros);
        // ordering: Relaxed — the streak is a heuristic counter.
        self.consecutive_skips.store(0, Ordering::Relaxed);
    }

    /// Records that the predictor's say-so just skipped a sweep. Returns
    /// `true` when the caller should run the sweep anyway as a probe —
    /// granted once per [`PROBE_AFTER_SKIPS`] consecutive skips, so a
    /// stale over-budget estimate cannot pin the engine in the degraded
    /// tier forever.
    pub(crate) fn note_skipped_should_probe(&self) -> bool {
        // ordering: Relaxed — the streak only schedules probes; losing an
        // increment under contention delays one probe by one sweep.
        let skips = self.consecutive_skips.fetch_add(1, Ordering::Relaxed) + 1;
        if skips >= PROBE_AFTER_SKIPS {
            // ordering: Relaxed — restarting the heuristic streak.
            self.consecutive_skips.store(0, Ordering::Relaxed);
            true
        } else {
            false
        }
    }
}

/// Asymmetric EWMA fold: quarter-weight on the way up (stay calm about
/// one slow outlier), half-weight on the way down (trust a cheaper regime
/// quickly). Estimates never fold to zero — `0` is reserved for "no
/// sample yet".
fn fold(estimate: &AtomicU64, sample: u64) {
    // ordering: Relaxed on both sides — the estimate is advisory; a lost
    // racing update skews it by one sample at worst.
    let old = estimate.load(Ordering::Relaxed);
    let new = if old == 0 {
        sample.max(1)
    } else if sample < old {
        ((old + sample) / 2).max(1)
    } else {
        ((3 * old + sample) / 4).max(1)
    };
    // ordering: Relaxed — see the load above.
    estimate.store(new, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_response_reconverges_downward_fast() {
        let p = SweepCostPredictor::new();
        for _ in 0..16 {
            p.observe_full(10_000);
        }
        assert_eq!(p.predicted_full_micros(), 10_000);
        // Regime shift down: within 3 samples the estimate must be inside
        // 2x of the new steady state (half-weight fold: 5500, 3250, 2125).
        for _ in 0..3 {
            p.observe_full(1_000);
        }
        assert!(
            p.predicted_full_micros() < 2_200,
            "estimate {} did not re-converge",
            p.predicted_full_micros()
        );
        // And it settles onto the new steady state (integer halving
        // leaves at most a rounding residue).
        for _ in 0..12 {
            p.observe_full(1_000);
        }
        assert!(
            (1_000..1_010).contains(&p.predicted_full_micros()),
            "estimate {} did not settle",
            p.predicted_full_micros()
        );
    }

    #[test]
    fn step_response_stays_calm_upward() {
        let p = SweepCostPredictor::new();
        for _ in 0..8 {
            p.observe_full(1_000);
        }
        // One slow outlier moves the estimate by only a quarter of the gap.
        p.observe_full(9_000);
        assert_eq!(p.predicted_full_micros(), 3_000);
    }

    #[test]
    fn probe_is_granted_after_consecutive_skips() {
        let p = SweepCostPredictor::new();
        p.observe_full(50_000);
        // Skips accumulate; the fourth is let through as a probe.
        assert!(!p.note_skipped_should_probe());
        assert!(!p.note_skipped_should_probe());
        assert!(!p.note_skipped_should_probe());
        assert!(p.note_skipped_should_probe());
        // The streak restarts after a granted probe...
        assert!(!p.note_skipped_should_probe());
        // ...and a real observation clears it entirely.
        p.observe_full(50_000);
        assert!(!p.note_skipped_should_probe());
        assert!(!p.note_skipped_should_probe());
        assert!(!p.note_skipped_should_probe());
        assert!(p.note_skipped_should_probe());
    }

    #[test]
    fn estimates_are_tracked_independently() {
        let p = SweepCostPredictor::new();
        assert_eq!(p.predicted_full_micros(), 0);
        assert_eq!(p.predicted_incremental_micros(), 0);
        p.observe_full(6_000);
        p.observe_incremental(400);
        assert_eq!(p.predicted_full_micros(), 6_000);
        assert_eq!(p.predicted_incremental_micros(), 400);
        // A zero-duration sample never folds the estimate to the "no
        // sample yet" sentinel.
        p.observe_incremental(0);
        assert!(p.predicted_incremental_micros() >= 1);
    }
}
