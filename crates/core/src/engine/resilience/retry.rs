//! Jittered exponential backoff for persistence operations.

use std::path::Path;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Retry policy for [`crate::ModelStore`] persistence: exponential backoff
/// with deterministic jitter.
///
/// The jitter is derived from a caller-supplied seed (the engine uses a
/// hash of the store path), not from a global RNG — retries are
/// reproducible, which keeps chaos runs and tests deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` disables retrying).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each retry.
    pub base_delay: Duration,
    /// Ceiling on any single delay, applied before jitter.
    pub max_delay: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a factor in
    /// `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
            jitter: 0.25,
        }
    }
}

// Hand-written because `Duration` has no `serde` impl in the offline
// compat crate: delays travel as integer microseconds.
impl Serialize for RetryPolicy {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("max_attempts".to_string(), self.max_attempts.to_value()),
            (
                "base_delay_micros".to_string(),
                (self.base_delay.as_micros() as u64).to_value(),
            ),
            (
                "max_delay_micros".to_string(),
                (self.max_delay.as_micros() as u64).to_value(),
            ),
            ("jitter".to_string(), self.jitter.to_value()),
        ])
    }
}

impl Deserialize for RetryPolicy {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(RetryPolicy {
            max_attempts: u32::from_value(value.field("max_attempts")?)?,
            base_delay: Duration::from_micros(u64::from_value(value.field("base_delay_micros")?)?),
            max_delay: Duration::from_micros(u64::from_value(value.field("max_delay_micros")?)?),
            jitter: f64::from_value(value.field("jitter")?)?,
        })
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, fail fast).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The backoff delay before retry number `attempt` (1-based: the delay
    /// slept after the first failure is `backoff(1, ..)`).
    pub fn backoff(&self, attempt: u32, seed: u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let raw = self.base_delay.saturating_mul(1u32 << exp.min(20));
        let capped = raw.min(self.max_delay);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 {
            return capped;
        }
        // Deterministic per-(seed, attempt) factor in [1 - j, 1 + j].
        let unit = splitmix64(seed ^ u64::from(attempt)) as f64 / u64::MAX as f64;
        let factor = 1.0 - jitter + 2.0 * jitter * unit;
        capped.mul_f64(factor)
    }

    /// Runs `op` up to `max_attempts` times, sleeping the jittered backoff
    /// between attempts and reporting each retry through `on_retry(attempt,
    /// delay)` before the sleep. Returns the first success or the last
    /// error.
    pub fn run<T, E>(
        &self,
        seed: u64,
        mut op: impl FnMut(u32) -> Result<T, E>,
        mut on_retry: impl FnMut(u32, Duration),
    ) -> Result<T, E> {
        let attempts = self.max_attempts.max(1);
        let mut attempt = 1;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if attempt >= attempts => return Err(e),
                Err(_) => {
                    let delay = self.backoff(attempt, seed);
                    on_retry(attempt, delay);
                    std::thread::sleep(delay);
                    attempt += 1;
                }
            }
        }
    }
}

/// A stable seed for a store path's retry jitter.
pub(crate) fn path_seed(path: &Path) -> u64 {
    use std::hash::{DefaultHasher, Hash, Hasher};
    let mut hasher = DefaultHasher::new();
    path.hash(&mut hasher);
    hasher.finish()
}

/// SplitMix64: a tiny, well-mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_wire_encoding_is_pinned() {
        let json = serde_json::to_string(&RetryPolicy::default()).expect("encode");
        assert_eq!(
            json,
            r#"{"max_attempts":4,"base_delay_micros":10000,"max_delay_micros":200000,"jitter":0.25}"#
        );
        let back: RetryPolicy = serde_json::from_str(&json).expect("decode");
        assert_eq!(back, RetryPolicy::default());
    }

    #[test]
    fn backoff_doubles_up_to_the_cap() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff(1, 7), Duration::from_millis(10));
        assert_eq!(policy.backoff(2, 7), Duration::from_millis(20));
        assert_eq!(policy.backoff(3, 7), Duration::from_millis(40));
        // 10ms << 6 = 640ms, capped at 200ms.
        assert_eq!(policy.backoff(7, 7), Duration::from_millis(200));
    }

    #[test]
    fn jitter_stays_in_band_and_is_deterministic() {
        let policy = RetryPolicy::default();
        let no_jitter = RetryPolicy {
            jitter: 0.0,
            ..policy.clone()
        };
        for attempt in 1..6 {
            let d = policy.backoff(attempt, 42);
            assert_eq!(d, policy.backoff(attempt, 42));
            let nominal = no_jitter.backoff(attempt, 42);
            let (lo, hi) = (nominal.mul_f64(0.75), nominal.mul_f64(1.25));
            assert!(
                d >= lo && d <= hi,
                "attempt {attempt}: {d:?} not in [{lo:?}, {hi:?}]"
            );
        }
    }

    #[test]
    fn run_retries_then_succeeds() {
        let policy = RetryPolicy {
            base_delay: Duration::from_micros(50),
            max_delay: Duration::from_micros(100),
            ..RetryPolicy::default()
        };
        let mut retries = Vec::new();
        let mut calls = 0;
        let out: Result<u32, &str> = policy.run(
            9,
            |attempt| {
                calls += 1;
                if attempt < 3 {
                    Err("transient")
                } else {
                    Ok(attempt)
                }
            },
            |attempt, _| retries.push(attempt),
        );
        assert_eq!(out, Ok(3));
        assert_eq!(calls, 3);
        assert_eq!(retries, vec![1, 2]);
    }

    #[test]
    fn run_exhausts_attempts_and_returns_last_error() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(20),
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let out: Result<(), u32> = policy.run(
            1,
            |attempt| {
                calls += 1;
                Err(attempt)
            },
            |_, _| {},
        );
        assert_eq!(out, Err(3));
        assert_eq!(calls, 3);
    }

    #[test]
    fn none_never_retries() {
        let mut calls = 0;
        let out: Result<(), &str> = RetryPolicy::none().run(
            0,
            |_| {
                calls += 1;
                Err("boom")
            },
            |_, _| panic!("no retries expected"),
        );
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn path_seed_is_stable() {
        let p = Path::new("/tmp/store.json");
        assert_eq!(path_seed(p), path_seed(Path::new("/tmp/store.json")));
        assert_ne!(path_seed(p), path_seed(Path::new("/tmp/other.json")));
    }
}
