//! Sweep budgets and the degradation ladder's vocabulary.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// A budget for one diagnosis sweep: optional wall-clock and pair-count
/// limits.
///
/// The default budget is unlimited — identical to pre-budget behavior.
/// With a budget set, [`crate::Engine::diagnose`] still always returns a
/// [`crate::Diagnosis`], but an overrun answer is computed by a declared
/// fallback tier and carries [`crate::Diagnosis::degradation`] saying so.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepBudget {
    /// Wall-clock limit for the association sweep, if any.
    pub wall: Option<Duration>,
    /// Maximum number of metric pairs to score, if any.
    pub max_pairs: Option<usize>,
}

impl SweepBudget {
    /// No limits: sweeps always run to completion.
    pub const UNLIMITED: SweepBudget = SweepBudget {
        wall: None,
        max_pairs: None,
    };

    /// A wall-clock-only budget.
    pub fn wall_clock(limit: Duration) -> Self {
        SweepBudget {
            wall: Some(limit),
            max_pairs: None,
        }
    }

    /// A wall-clock-only budget in milliseconds.
    pub fn wall_millis(ms: u64) -> Self {
        Self::wall_clock(Duration::from_millis(ms))
    }

    /// Adds a pair-count ceiling to this budget.
    #[must_use]
    pub fn with_max_pairs(mut self, pairs: usize) -> Self {
        self.max_pairs = Some(pairs);
        self
    }

    /// Whether this budget imposes no limit at all.
    pub fn is_unlimited(&self) -> bool {
        self.wall.is_none() && self.max_pairs.is_none()
    }

    /// The absolute deadline implied by the wall-clock limit, measured
    /// from `start`.
    pub(crate) fn deadline(&self, start: Instant) -> Option<Instant> {
        self.wall.map(|w| start + w)
    }
}

/// The declared fallback ladder, cheapest-acceptable first.
///
/// When a full-fidelity MIC sweep cannot finish inside its
/// [`SweepBudget`], the engine walks these tiers in order and takes the
/// first one that yields an answer. `level()` orders the tiers by how far
/// they sit from full fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DegradationTier {
    /// Tier 1: reuse the most recent cached association matrix for this
    /// context (stale but full-fidelity MIC scores).
    CachedMatrix,
    /// Tier 2: re-run the full sweep with the cheap Pearson measure
    /// instead of MIC (fresh but linear-only association scores).
    PearsonFallback,
    /// Tier 3: score only the pairs among the highest-variance metrics
    /// (fresh, but most pairs carry no evidence).
    PartialMatrix,
    /// Persistence tier: a [`crate::ModelStore`] save/load exhausted its
    /// retries. Not part of the sweep ladder; reported through
    /// [`super::HealthState`] only.
    Persistence,
}

impl DegradationTier {
    /// Distance from full fidelity (full sweep = 0; larger is worse).
    pub fn level(&self) -> u8 {
        match self {
            DegradationTier::CachedMatrix => 1,
            DegradationTier::PearsonFallback => 2,
            DegradationTier::PartialMatrix => 3,
            DegradationTier::Persistence => 4,
        }
    }

    /// Stable kebab-case name (telemetry labels, reports).
    pub fn name(&self) -> &'static str {
        match self {
            DegradationTier::CachedMatrix => "cached-matrix",
            DegradationTier::PearsonFallback => "pearson-fallback",
            DegradationTier::PartialMatrix => "partial-matrix",
            DegradationTier::Persistence => "persistence",
        }
    }
}

/// Why a sweep left the full-fidelity path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DegradationReason {
    /// The sweep's wall-clock deadline expired mid-sweep.
    WallClockExceeded,
    /// The budget's pair ceiling is below the full pair count.
    PairBudgetExceeded,
    /// The sweep-latency estimate predicted an overrun, so the full sweep
    /// was not attempted at all.
    PredictedOverrun,
}

impl DegradationReason {
    /// Stable kebab-case name (telemetry labels, reports).
    pub fn name(&self) -> &'static str {
        match self {
            DegradationReason::WallClockExceeded => "wall-clock-exceeded",
            DegradationReason::PairBudgetExceeded => "pair-budget-exceeded",
            DegradationReason::PredictedOverrun => "predicted-overrun",
        }
    }
}

// Hand-written because `Duration` has no `serde` impl in the offline
// compat crate: the wall limit travels as integer microseconds, which
// keeps the wire form exact (no float rounding) and stable across
// platforms.
impl Serialize for SweepBudget {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "wall_micros".to_string(),
                self.wall.map(|w| w.as_micros() as u64).to_value(),
            ),
            ("max_pairs".to_string(), self.max_pairs.to_value()),
        ])
    }
}

impl Deserialize for SweepBudget {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let wall = Option::<u64>::from_value(value.field("wall_micros")?)?;
        Ok(SweepBudget {
            wall: wall.map(Duration::from_micros),
            max_pairs: Option::<usize>::from_value(value.field("max_pairs")?)?,
        })
    }
}

/// How a degraded diagnosis was produced: the tier that answered and the
/// reason the full sweep was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SweepDegradation {
    /// The fallback tier that produced the association matrix.
    pub tier: DegradationTier,
    /// Why the full-fidelity sweep was abandoned.
    pub reason: DegradationReason,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        assert!(SweepBudget::default().is_unlimited());
        assert_eq!(SweepBudget::default(), SweepBudget::UNLIMITED);
        assert!(SweepBudget::UNLIMITED.deadline(Instant::now()).is_none());
    }

    #[test]
    fn constructors_set_limits() {
        let b = SweepBudget::wall_millis(5).with_max_pairs(40);
        assert_eq!(b.wall, Some(Duration::from_millis(5)));
        assert_eq!(b.max_pairs, Some(40));
        assert!(!b.is_unlimited());
        let start = Instant::now();
        assert_eq!(b.deadline(start), Some(start + Duration::from_millis(5)));
    }

    #[test]
    fn budget_wire_encoding_is_pinned() {
        let b = SweepBudget::wall_millis(5).with_max_pairs(40);
        let json = serde_json::to_string(&b).expect("encode");
        assert_eq!(json, r#"{"wall_micros":5000,"max_pairs":40}"#);
        let back: SweepBudget = serde_json::from_str(&json).expect("decode");
        assert_eq!(back, b);
        let unlimited = serde_json::to_string(&SweepBudget::UNLIMITED).expect("encode");
        assert_eq!(unlimited, r#"{"wall_micros":null,"max_pairs":null}"#);
        let back: SweepBudget = serde_json::from_str(&unlimited).expect("decode");
        assert_eq!(back, SweepBudget::UNLIMITED);
    }

    #[test]
    fn tiers_are_ordered_by_level() {
        let ladder = [
            DegradationTier::CachedMatrix,
            DegradationTier::PearsonFallback,
            DegradationTier::PartialMatrix,
            DegradationTier::Persistence,
        ];
        for pair in ladder.windows(2) {
            assert!(pair[0].level() < pair[1].level());
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(DegradationTier::CachedMatrix.name(), "cached-matrix");
        assert_eq!(DegradationTier::PearsonFallback.name(), "pearson-fallback");
        assert_eq!(DegradationTier::PartialMatrix.name(), "partial-matrix");
        assert_eq!(DegradationTier::Persistence.name(), "persistence");
        assert_eq!(
            DegradationReason::WallClockExceeded.name(),
            "wall-clock-exceeded"
        );
        assert_eq!(
            DegradationReason::PairBudgetExceeded.name(),
            "pair-budget-exceeded"
        );
        assert_eq!(
            DegradationReason::PredictedOverrun.name(),
            "predicted-overrun"
        );
    }
}
