//! The engine's poison-safe health state machine.

use std::sync::{Mutex, PoisonError};

use super::budget::DegradationTier;

/// Consecutive full-fidelity operations required to leave `Recovering`.
const RECOVERY_SUCCESSES: u32 = 3;

/// The engine's coarse health, driven by sweep degradations and store
/// failures.
///
/// Transitions:
///
/// - any state → `Degraded(tier)` on a degradation (re-degrading replaces
///   the tier with the latest one);
/// - `Degraded(_)` → `Recovering` on the first full-fidelity operation;
/// - `Recovering` → `Healthy` after [`RECOVERY_SUCCESSES`] consecutive
///   full-fidelity operations (a degradation mid-recovery falls back to
///   `Degraded`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// Recent operations all completed at full fidelity.
    Healthy,
    /// The most recent degradation fell back to the carried tier.
    Degraded(DegradationTier),
    /// Operations are clean again but the streak is still short.
    Recovering,
}

impl HealthState {
    /// Stable kebab-case name (telemetry labels, reports).
    pub fn name(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded(_) => "degraded",
            HealthState::Recovering => "recovering",
        }
    }
}

// `Degraded` carries the tier, so the wire form is written by hand: unit
// variants as their names, `Degraded` as a one-field object. Pinned by the
// `engine::wire` tests.
impl serde::Serialize for HealthState {
    fn to_value(&self) -> serde::Value {
        match self {
            HealthState::Healthy => serde::Value::Str("Healthy".to_string()),
            HealthState::Recovering => serde::Value::Str("Recovering".to_string()),
            HealthState::Degraded(tier) => serde::Value::Object(vec![(
                "Degraded".to_string(),
                serde::Serialize::to_value(tier),
            )]),
        }
    }
}

impl serde::Deserialize for HealthState {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        match value {
            serde::Value::Str(s) => match s.as_str() {
                "Healthy" => Ok(HealthState::Healthy),
                "Recovering" => Ok(HealthState::Recovering),
                other => Err(serde::DeError::unknown_variant(other)),
            },
            serde::Value::Object(_) => Ok(HealthState::Degraded(serde::Deserialize::from_value(
                value.field("Degraded")?,
            )?)),
            other => Err(serde::DeError::expected("health state", other)),
        }
    }
}

struct HealthInner {
    state: HealthState,
    /// Consecutive clean operations while `Recovering`.
    streak: u32,
}

/// Tracks [`HealthState`] across threads; a panicking holder cannot wedge
/// it (poisoning is recovered on every acquisition).
pub(crate) struct HealthMonitor {
    inner: Mutex<HealthInner>,
}

impl HealthMonitor {
    pub(crate) fn new() -> Self {
        HealthMonitor {
            inner: Mutex::new(HealthInner {
                state: HealthState::Healthy,
                streak: 0,
            }),
        }
    }

    pub(crate) fn current(&self) -> HealthState {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .state
    }

    /// Records a degradation; returns `Some((from, to))` when the state
    /// changed.
    pub(crate) fn note_degraded(
        &self,
        tier: DegradationTier,
    ) -> Option<(HealthState, HealthState)> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let from = inner.state;
        let to = HealthState::Degraded(tier);
        inner.state = to;
        inner.streak = 0;
        (from != to).then_some((from, to))
    }

    /// Records a full-fidelity operation; returns `Some((from, to))` when
    /// the state changed.
    pub(crate) fn note_ok(&self) -> Option<(HealthState, HealthState)> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let from = inner.state;
        match from {
            HealthState::Healthy => None,
            HealthState::Degraded(_) => {
                inner.state = HealthState::Recovering;
                inner.streak = 1;
                Some((from, HealthState::Recovering))
            }
            HealthState::Recovering => {
                inner.streak += 1;
                if inner.streak >= RECOVERY_SUCCESSES {
                    inner.state = HealthState::Healthy;
                    inner.streak = 0;
                    Some((from, HealthState::Healthy))
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_healthy_and_clean_ops_are_quiet() {
        let m = HealthMonitor::new();
        assert_eq!(m.current(), HealthState::Healthy);
        assert_eq!(m.note_ok(), None);
        assert_eq!(m.current(), HealthState::Healthy);
    }

    #[test]
    fn full_degrade_recover_cycle() {
        let m = HealthMonitor::new();
        let degraded = HealthState::Degraded(DegradationTier::PearsonFallback);
        assert_eq!(
            m.note_degraded(DegradationTier::PearsonFallback),
            Some((HealthState::Healthy, degraded))
        );
        // First clean op: Degraded -> Recovering.
        assert_eq!(m.note_ok(), Some((degraded, HealthState::Recovering)));
        // The streak (started at 1) completes after two more clean ops.
        assert_eq!(m.note_ok(), None);
        assert_eq!(m.current(), HealthState::Recovering);
        assert_eq!(
            m.note_ok(),
            Some((HealthState::Recovering, HealthState::Healthy))
        );
        assert_eq!(m.current(), HealthState::Healthy);
    }

    #[test]
    fn redegrading_replaces_the_tier_and_resets_the_streak() {
        let m = HealthMonitor::new();
        m.note_degraded(DegradationTier::CachedMatrix);
        // Same tier again: no transition (state unchanged).
        assert_eq!(m.note_degraded(DegradationTier::CachedMatrix), None);
        // Worse tier: transition between the two Degraded states.
        assert_eq!(
            m.note_degraded(DegradationTier::PartialMatrix),
            Some((
                HealthState::Degraded(DegradationTier::CachedMatrix),
                HealthState::Degraded(DegradationTier::PartialMatrix)
            ))
        );
        // A degradation mid-recovery restarts the cycle.
        m.note_ok();
        assert_eq!(m.current(), HealthState::Recovering);
        m.note_degraded(DegradationTier::Persistence);
        assert_eq!(
            m.current(),
            HealthState::Degraded(DegradationTier::Persistence)
        );
        m.note_ok();
        m.note_ok();
        assert_eq!(m.current(), HealthState::Recovering);
        m.note_ok();
        assert_eq!(m.current(), HealthState::Healthy);
    }
}
