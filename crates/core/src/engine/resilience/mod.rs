//! The resilience layer: bounded work, bounded queues, retries and health.
//!
//! A production engine must keep diagnosing while the host itself is
//! degraded — slow disks, contended CPUs, skewed clocks. This module makes
//! every failure mode *bounded and observable* instead of silent:
//!
//! - [`SweepBudget`] — a wall-clock + pair-count budget for diagnosis
//!   sweeps. On overrun the engine degrades along a declared ladder
//!   (cached matrix → Pearson fallback → partial matrix over the
//!   highest-variance metrics), each step emitting
//!   [`super::EngineEvent::SweepDegraded`] with its [`DegradationTier`]
//!   and [`DegradationReason`];
//! - [`OverloadPolicy`] — the bounded ingest queue's behavior when full
//!   ([`crate::Engine::submit`] / [`crate::Engine::drain`]);
//! - [`RetryPolicy`] — jittered exponential backoff for
//!   [`crate::ModelStore`] persistence ([`crate::Engine::save_store`] /
//!   [`crate::Engine::load_store`]);
//! - [`HealthState`] — the poison-safe health state machine
//!   (`Healthy → Degraded(tier) → Recovering → Healthy`), queryable via
//!   [`crate::Engine::health`].
//!
//! The invariant the whole layer upholds: a diagnosis is either computed
//! at full fidelity or explicitly marked degraded
//! ([`crate::Diagnosis::degradation`]) — never silently wrong.

mod budget;
mod health;
mod predictor;
pub(crate) mod queue;
mod retry;

pub use budget::{DegradationReason, DegradationTier, SweepBudget, SweepDegradation};
pub use health::HealthState;
pub use queue::{OverloadPolicy, SubmitOutcome};
pub use retry::RetryPolicy;

pub(crate) use health::HealthMonitor;
pub(crate) use predictor::SweepCostPredictor;
pub(crate) use queue::IngestQueue;

use std::path::Path;

use crate::context::OperationContext;
use crate::engine::telemetry::ContextId;
use crate::engine::{Engine, EngineEvent};
use crate::error::CoreError;
use crate::store::ModelStore;

impl Engine {
    /// The engine's current health state.
    ///
    /// `Healthy` means recent work completed at full fidelity. A degraded
    /// sweep or a failed store operation moves the machine to
    /// `Degraded(tier)`; the first subsequent full-fidelity operation moves
    /// it to `Recovering`, and a short streak of clean operations restores
    /// `Healthy`. Transitions are reported as
    /// [`EngineEvent::HealthChanged`].
    pub fn health(&self) -> HealthState {
        self.health_monitor().current()
    }

    /// Records a degradation: emits [`EngineEvent::SweepDegraded`] and
    /// advances the health machine (emitting
    /// [`EngineEvent::HealthChanged`] on a transition).
    pub(crate) fn note_degradation(
        &self,
        context: ContextId,
        tier: DegradationTier,
        reason: DegradationReason,
    ) {
        self.sink().record(&EngineEvent::SweepDegraded {
            context,
            tier,
            reason,
        });
        if let Some((from, to)) = self.health_monitor().note_degraded(tier) {
            self.sink()
                .record(&EngineEvent::HealthChanged { context, from, to });
        }
    }

    /// Records a full-fidelity operation: advances the health machine
    /// toward `Healthy`, emitting [`EngineEvent::HealthChanged`] on a
    /// transition.
    pub(crate) fn note_health_ok(&self, context: ContextId) {
        if let Some((from, to)) = self.health_monitor().note_ok() {
            self.sink()
                .record(&EngineEvent::HealthChanged { context, from, to });
        }
    }

    /// Saves `store` to `path` with the configured [`RetryPolicy`]
    /// (jittered exponential backoff); each retry is reported as
    /// [`EngineEvent::StoreRetried`], and exhausting the attempts degrades
    /// the engine's health ([`DegradationTier::Persistence`]).
    ///
    /// # Errors
    ///
    /// [`CoreError`] with kind `Io`/`Serialization` once every attempt has
    /// failed.
    pub fn save_store(&self, store: &ModelStore, path: &Path) -> Result<(), CoreError> {
        self.store_op(path, |p| store.save(p))
    }

    /// Loads a [`ModelStore`] from `path` with the configured
    /// [`RetryPolicy`] — the retrying dual of [`Engine::save_store`].
    ///
    /// # Errors
    ///
    /// [`CoreError`] with kind `Io`/`Serialization` once every attempt has
    /// failed.
    pub fn load_store(&self, path: &Path) -> Result<ModelStore, CoreError> {
        self.store_op(path, ModelStore::load)
    }

    fn store_op<T>(
        &self,
        path: &Path,
        mut op: impl FnMut(&Path) -> Result<T, CoreError>,
    ) -> Result<T, CoreError> {
        let policy = self.config().store_retry.clone();
        let seed = retry::path_seed(path);
        let result = policy.run(
            seed,
            |_attempt| op(path),
            |attempt, delay| {
                self.sink().record(&EngineEvent::StoreRetried {
                    context: ContextId::UNATTRIBUTED,
                    attempt,
                    backoff_micros: delay.as_micros() as u64,
                });
            },
        );
        match result {
            Ok(v) => {
                self.note_health_ok(ContextId::UNATTRIBUTED);
                Ok(v)
            }
            Err(e) => {
                if let Some((from, to)) = self
                    .health_monitor()
                    .note_degraded(DegradationTier::Persistence)
                {
                    self.sink().record(&EngineEvent::HealthChanged {
                        context: ContextId::UNATTRIBUTED,
                        from,
                        to,
                    });
                }
                Err(e)
            }
        }
    }

    /// Installs everything a persisted [`ModelStore`] holds — performance
    /// models, invariant sets and the signature database — into this
    /// engine. Context keys are parsed back from the store's
    /// `workload@node` form.
    ///
    /// # Errors
    ///
    /// [`CoreError`] with kind `Arima` when a stored model is internally
    /// inconsistent, or kind `Serialization` for an unparseable context
    /// key.
    pub fn load_state(&self, store: &ModelStore) -> Result<(), CoreError> {
        for (key, stored) in &store.performance_models {
            let context = parse_context_key(key)?;
            let model = stored.clone().into_model()?;
            self.install_performance_model_internal(context, model);
        }
        for (key, set) in &store.invariants {
            let context = parse_context_key(key)?;
            self.install_invariant_set_internal(context, set.clone());
        }
        self.set_signature_database(store.signatures.clone());
        Ok(())
    }

    /// Captures this engine's trained state — every context's performance
    /// model and invariant set plus the signature database — into a
    /// [`ModelStore`] ready for [`Engine::save_store`].
    pub fn snapshot_state(&self) -> ModelStore {
        let mut store = ModelStore::new();
        for context in self.state().contexts() {
            if let Some(model) = self.performance_model(&context) {
                store.put_model(&context, model.as_ref());
            }
            if let Some(set) = self.invariant_set(&context) {
                store.put_invariants(&context, set.as_ref());
            }
        }
        store.signatures = self.with_signature_database(|db| db.clone());
        store
    }
}

/// Parses a [`ModelStore`] context key (`workload@node`) back into an
/// [`OperationContext`].
fn parse_context_key(key: &str) -> Result<OperationContext, CoreError> {
    match key.split_once('@') {
        Some((workload, node)) => Ok(OperationContext::new(node, workload)),
        None => Err(CoreError::InvalidStoreKey { key: key.into() }),
    }
}
