//! The bounded ingest queue: per-shard FIFOs with a pluggable overload
//! policy.
//!
//! [`crate::Engine::submit`] enqueues ticks instead of processing them
//! inline; [`crate::Engine::drain`] pops and runs them through the normal
//! ingest path. Shards are keyed by context hash (mirroring the state
//! map), so a flood on one context cannot starve another shard's queue.
//!
//! Shedding keeps *contiguous* runs: `ShedOldest` retains a suffix of each
//! context's submissions and `ShedNewest` a prefix, so as long as the
//! per-shard capacity is at least the detector's consecutive-exceedance
//! window (3 in the paper, §3.1), a confirmed anomaly can never be broken
//! up by overload shedding.

use std::collections::VecDeque;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

use serde::{Deserialize, Serialize};

use crate::context::OperationContext;
use crate::engine::ingest::TickOutcome;
use crate::engine::{Engine, EngineEvent};
use crate::error::CoreError;

/// What a full ingest queue does with the next tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum OverloadPolicy {
    /// Block the submitting thread until a slot frees up (lossless).
    #[default]
    Block,
    /// Drop the oldest queued tick to make room (keeps a contiguous
    /// suffix per context).
    ShedOldest,
    /// Reject the incoming tick (keeps a contiguous prefix per context).
    ShedNewest,
}

impl OverloadPolicy {
    /// Stable kebab-case name (telemetry labels, reports).
    pub fn name(&self) -> &'static str {
        match self {
            OverloadPolicy::Block => "block",
            OverloadPolicy::ShedOldest => "shed-oldest",
            OverloadPolicy::ShedNewest => "shed-newest",
        }
    }
}

/// What [`crate::Engine::submit`] did with a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The tick was queued; `depth` is the shard's depth afterwards.
    Enqueued {
        /// Queue depth of the tick's shard after the enqueue.
        depth: usize,
    },
    /// The tick was queued after shedding the shard's oldest tick.
    EnqueuedAfterShed {
        /// Queue depth of the tick's shard after the enqueue.
        depth: usize,
    },
    /// The tick itself was shed (`ShedNewest` on a full shard).
    Rejected,
}

/// One queued tick, exactly the arguments of [`crate::Engine::ingest`].
pub(crate) struct PendingTick {
    pub(crate) context: OperationContext,
    pub(crate) cpi: f64,
    pub(crate) row: Vec<f64>,
}

/// Internal push result, before event emission.
pub(crate) enum QueuePush {
    Enqueued {
        depth: usize,
    },
    SheddedOldest {
        depth: usize,
        dropped: OperationContext,
    },
    RejectedNewest,
}

struct QueueShard {
    pending: Mutex<VecDeque<PendingTick>>,
    /// Signalled whenever a slot frees up (pop or shed).
    space: Condvar,
}

/// The bounded, sharded ingest queue.
pub(crate) struct IngestQueue {
    shards: Vec<QueueShard>,
    /// Per-shard tick capacity.
    capacity: usize,
    policy: OverloadPolicy,
    /// Round-robin pop cursor, for fairness across shards.
    cursor: AtomicUsize,
}

impl IngestQueue {
    /// `capacity` is clamped up to `floor` (the detector's
    /// consecutive-exceedance window) so shedding can never retain fewer
    /// contiguous ticks than anomaly confirmation needs.
    pub(crate) fn new(
        shards: usize,
        capacity: usize,
        floor: usize,
        policy: OverloadPolicy,
    ) -> Self {
        IngestQueue {
            shards: (0..shards.max(1))
                .map(|_| QueueShard {
                    pending: Mutex::new(VecDeque::new()),
                    space: Condvar::new(),
                })
                .collect(),
            capacity: capacity.max(floor).max(1),
            policy,
            cursor: AtomicUsize::new(0),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    #[cfg(test)]
    pub(crate) fn policy(&self) -> OverloadPolicy {
        self.policy
    }

    fn shard_of(&self, context: &OperationContext) -> &QueueShard {
        let mut hasher = DefaultHasher::new();
        context.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    pub(crate) fn push(&self, tick: PendingTick) -> QueuePush {
        let shard = self.shard_of(&tick.context);
        let mut pending = shard.pending.lock().unwrap_or_else(PoisonError::into_inner);
        if pending.len() >= self.capacity {
            match self.policy {
                OverloadPolicy::Block => {
                    while pending.len() >= self.capacity {
                        pending = shard
                            .space
                            .wait(pending)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                }
                OverloadPolicy::ShedOldest => {
                    // Capacity ≥ 1, so the pop cannot fail here.
                    let dropped = pending.pop_front().map(|t| t.context);
                    pending.push_back(tick);
                    let depth = pending.len();
                    return match dropped {
                        Some(dropped) => QueuePush::SheddedOldest { depth, dropped },
                        None => QueuePush::Enqueued { depth },
                    };
                }
                OverloadPolicy::ShedNewest => return QueuePush::RejectedNewest,
            }
        }
        pending.push_back(tick);
        QueuePush::Enqueued {
            depth: pending.len(),
        }
    }

    /// Pops one tick, scanning shards round-robin from a rotating cursor.
    pub(crate) fn pop(&self) -> Option<PendingTick> {
        let n = self.shards.len();
        // ordering: Relaxed — the cursor only spreads pop load across
        // shards; any interleaving is correct.
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        for off in 0..n {
            let shard = &self.shards[(start + off) % n];
            let tick = shard
                .pending
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front();
            if let Some(tick) = tick {
                shard.space.notify_one();
                return Some(tick);
            }
        }
        None
    }

    /// Total queued ticks across all shards.
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.pending
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .len()
            })
            .sum()
    }
}

impl Engine {
    /// Submits one tick to the bounded ingest queue instead of processing
    /// it inline. What happens when the tick's shard is full is governed
    /// by the configured [`OverloadPolicy`]; every enqueue reports its
    /// shard depth as [`EngineEvent::TickEnqueued`], and every shed tick
    /// is reported as [`EngineEvent::TickShed`] — overload is never
    /// silent.
    ///
    /// Pair with [`Engine::drain`] on a consumer thread. Under
    /// [`OverloadPolicy::Block`] this call parks until a slot frees up.
    pub fn submit(
        &self,
        context: &OperationContext,
        cpi_sample: f64,
        metric_row: &[f64],
    ) -> SubmitOutcome {
        let context_id = self.intern_context(context);
        let push = self.ingest_queue().push(PendingTick {
            context: context.clone(),
            cpi: cpi_sample,
            row: metric_row.to_vec(),
        });
        match push {
            QueuePush::Enqueued { depth } => {
                self.sink().record(&EngineEvent::TickEnqueued {
                    context: context_id,
                    depth,
                });
                SubmitOutcome::Enqueued { depth }
            }
            QueuePush::SheddedOldest { depth, dropped } => {
                let dropped_id = self.intern_context(&dropped);
                self.sink().record(&EngineEvent::TickShed {
                    context: dropped_id,
                    policy: OverloadPolicy::ShedOldest,
                });
                self.sink().record(&EngineEvent::TickEnqueued {
                    context: context_id,
                    depth,
                });
                SubmitOutcome::EnqueuedAfterShed { depth }
            }
            QueuePush::RejectedNewest => {
                self.sink().record(&EngineEvent::TickShed {
                    context: context_id,
                    policy: OverloadPolicy::ShedNewest,
                });
                SubmitOutcome::Rejected
            }
        }
    }

    /// Pops up to `max_ticks` queued ticks and runs each through
    /// [`Engine::ingest`]. Ticks are popped round-robin across shards;
    /// the queue lock is never held while a tick is being ingested, so a
    /// slow diagnosis cannot stall concurrent [`Engine::submit`] calls.
    pub fn drain(
        &self,
        max_ticks: usize,
    ) -> Vec<(OperationContext, Result<TickOutcome, CoreError>)> {
        let mut out = Vec::new();
        while out.len() < max_ticks {
            let Some(tick) = self.ingest_queue().pop() else {
                break;
            };
            let result = self.ingest(&tick.context, tick.cpi, &tick.row);
            out.push((tick.context, result));
        }
        out
    }

    /// Ticks currently waiting in the ingest queue across all shards.
    pub fn queued_ticks(&self) -> usize {
        self.ingest_queue().len()
    }

    /// Effective per-shard capacity of the bounded ingest queue — the
    /// configured [`crate::InvarNetConfig::ingest_queue_ticks`], clamped
    /// up to the detector's consecutive-exceedance window so shedding can
    /// never starve anomaly confirmation.
    pub fn ingest_queue_capacity(&self) -> usize {
        self.ingest_queue().capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(node: &str, cpi: f64) -> PendingTick {
        PendingTick {
            context: OperationContext::new(node, "W"),
            cpi,
            row: vec![cpi; 3],
        }
    }

    #[test]
    fn fifo_within_capacity() {
        let q = IngestQueue::new(1, 4, 3, OverloadPolicy::ShedOldest);
        for i in 0..3 {
            match q.push(tick("n", i as f64)) {
                QueuePush::Enqueued { depth } => assert_eq!(depth, i + 1),
                _ => panic!("unexpected shed below capacity"),
            }
        }
        assert_eq!(q.len(), 3);
        let popped: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|t| t.cpi).collect();
        assert_eq!(popped, vec![0.0, 1.0, 2.0]);
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn shed_oldest_keeps_the_newest_suffix() {
        let q = IngestQueue::new(1, 3, 3, OverloadPolicy::ShedOldest);
        for i in 0..6 {
            q.push(tick("n", i as f64));
        }
        assert_eq!(q.len(), 3);
        let kept: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|t| t.cpi).collect();
        assert_eq!(kept, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn shed_newest_keeps_the_oldest_prefix() {
        let q = IngestQueue::new(1, 3, 3, OverloadPolicy::ShedNewest);
        for i in 0..6 {
            let push = q.push(tick("n", i as f64));
            if i >= 3 {
                assert!(matches!(push, QueuePush::RejectedNewest));
            }
        }
        let kept: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|t| t.cpi).collect();
        assert_eq!(kept, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn capacity_clamps_to_the_confirmation_floor() {
        let q = IngestQueue::new(2, 1, 3, OverloadPolicy::ShedOldest);
        assert_eq!(q.capacity(), 3);
        assert_eq!(q.policy(), OverloadPolicy::ShedOldest);
    }

    #[test]
    fn block_policy_waits_for_a_slot() {
        use std::sync::Arc;
        let q = Arc::new(IngestQueue::new(1, 3, 3, OverloadPolicy::Block));
        for i in 0..3 {
            q.push(tick("n", i as f64));
        }
        let q2 = Arc::clone(&q);
        let submitter = std::thread::spawn(move || {
            // Blocks until the main thread pops.
            q2.push(tick("n", 99.0));
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.len(), 3, "submitter should still be parked");
        assert_eq!(q.pop().map(|t| t.cpi), Some(0.0));
        submitter.join().unwrap();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn pop_round_robins_across_shards() {
        let q = IngestQueue::new(4, 8, 3, OverloadPolicy::Block);
        // Two contexts landing (statistically) in different shards.
        for i in 0..4 {
            q.push(tick("node-a", i as f64));
            q.push(tick("node-b", 10.0 + i as f64));
        }
        let mut seen = Vec::new();
        while let Some(t) = q.pop() {
            seen.push(t.context.node.clone());
        }
        assert_eq!(seen.len(), 8);
        assert!(seen.iter().any(|n| n == "node-a"));
        assert!(seen.iter().any(|n| n == "node-b"));
    }
}
