//! The stable wire form of [`EngineEvent`].
//!
//! History segments (`ix-history`), replay traces and any future
//! persistence of the event stream share this one encoding: a tagged
//! object whose `"type"` field carries the kebab-case event name and whose
//! remaining fields follow the variant's declaration order. The encoding
//! is *pinned* by the tests at the bottom of this module — changing a
//! field name, the tag spelling or the field order is a wire-format break
//! and must fail a test before it ships.
//!
//! Data-carrying enums are beyond the workspace's `serde_derive` subset
//! (it handles named-field structs and fieldless enums only), so the
//! impls here are written by hand against the `serde::Value` tree.

use serde::{DeError, Deserialize, Serialize, Value};

use super::events::EngineEvent;

/// Builds the tagged object for one variant: the `"type"` tag first, then
/// the payload fields in declaration order.
macro_rules! tagged {
    ($tag:expr, $(($name:expr, $value:expr)),* $(,)?) => {{
        let mut fields: Vec<(String, Value)> =
            vec![("type".to_string(), Value::Str($tag.to_string()))];
        $(fields.push(($name.to_string(), Serialize::to_value(&$value)));)*
        Value::Object(fields)
    }};
}

impl Serialize for EngineEvent {
    fn to_value(&self) -> Value {
        match *self {
            EngineEvent::TickIngested {
                context,
                tick,
                residual,
                exceeded,
                micros,
            } => tagged!(
                "tick-ingested",
                ("context", context),
                ("tick", tick),
                ("residual", residual),
                ("exceeded", exceeded),
                ("micros", micros),
            ),
            EngineEvent::DetectionFired { context, tick } => {
                tagged!("detection-fired", ("context", context), ("tick", tick))
            }
            EngineEvent::DetectionCleared { context, tick } => {
                tagged!("detection-cleared", ("context", context), ("tick", tick))
            }
            EngineEvent::DiagnosisRan {
                context,
                tick,
                micros,
            } => tagged!(
                "diagnosis-ran",
                ("context", context),
                ("tick", tick),
                ("micros", micros),
            ),
            EngineEvent::SignatureMatched {
                context,
                tick,
                best_similarity,
                confident,
            } => tagged!(
                "signature-matched",
                ("context", context),
                ("tick", tick),
                ("best_similarity", best_similarity),
                ("confident", confident),
            ),
            EngineEvent::SweepCompleted {
                context,
                pairs,
                micros,
            } => tagged!(
                "sweep-completed",
                ("context", context),
                ("pairs", pairs),
                ("micros", micros),
            ),
            EngineEvent::PairsScored {
                context,
                pairs,
                micros,
            } => tagged!(
                "pairs-scored",
                ("context", context),
                ("pairs", pairs),
                ("micros", micros),
            ),
            EngineEvent::SweepScreened {
                context,
                reused,
                screened,
                confirmed,
            } => tagged!(
                "sweep-screened",
                ("context", context),
                ("reused", reused),
                ("screened", screened),
                ("confirmed", confirmed),
            ),
            EngineEvent::SweepCacheLookup { context, hit } => {
                tagged!("sweep-cache-lookup", ("context", context), ("hit", hit))
            }
            EngineEvent::SpanClosed {
                phase,
                context,
                micros,
            } => tagged!(
                "span-closed",
                ("phase", phase),
                ("context", context),
                ("micros", micros),
            ),
            EngineEvent::SweepDegraded {
                context,
                tier,
                reason,
            } => tagged!(
                "sweep-degraded",
                ("context", context),
                ("tier", tier),
                ("reason", reason),
            ),
            EngineEvent::TickEnqueued { context, depth } => {
                tagged!("tick-enqueued", ("context", context), ("depth", depth))
            }
            EngineEvent::TickShed { context, policy } => {
                tagged!("tick-shed", ("context", context), ("policy", policy))
            }
            EngineEvent::StoreRetried {
                context,
                attempt,
                backoff_micros,
            } => tagged!(
                "store-retried",
                ("context", context),
                ("attempt", attempt),
                ("backoff_micros", backoff_micros),
            ),
            EngineEvent::HealthChanged { context, from, to } => tagged!(
                "health-changed",
                ("context", context),
                ("from", from),
                ("to", to),
            ),
            EngineEvent::TenantEvicted {
                context,
                tenant,
                ticks,
            } => tagged!(
                "tenant-evicted",
                ("context", context),
                ("tenant", tenant),
                ("ticks", ticks),
            ),
            EngineEvent::TenantWarmed {
                context,
                tenant,
                micros,
            } => tagged!(
                "tenant-warmed",
                ("context", context),
                ("tenant", tenant),
                ("micros", micros),
            ),
        }
    }
}

impl Deserialize for EngineEvent {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        /// Decodes one named payload field.
        fn get<T: Deserialize>(value: &Value, name: &str) -> Result<T, DeError> {
            T::from_value(value.field(name)?)
        }
        let event = match value.field("type")?.as_str()? {
            "tick-ingested" => EngineEvent::TickIngested {
                context: get(value, "context")?,
                tick: get(value, "tick")?,
                residual: get(value, "residual")?,
                exceeded: get(value, "exceeded")?,
                micros: get(value, "micros")?,
            },
            "detection-fired" => EngineEvent::DetectionFired {
                context: get(value, "context")?,
                tick: get(value, "tick")?,
            },
            "detection-cleared" => EngineEvent::DetectionCleared {
                context: get(value, "context")?,
                tick: get(value, "tick")?,
            },
            "diagnosis-ran" => EngineEvent::DiagnosisRan {
                context: get(value, "context")?,
                tick: get(value, "tick")?,
                micros: get(value, "micros")?,
            },
            "signature-matched" => EngineEvent::SignatureMatched {
                context: get(value, "context")?,
                tick: get(value, "tick")?,
                best_similarity: get(value, "best_similarity")?,
                confident: get(value, "confident")?,
            },
            "sweep-completed" => EngineEvent::SweepCompleted {
                context: get(value, "context")?,
                pairs: get(value, "pairs")?,
                micros: get(value, "micros")?,
            },
            "pairs-scored" => EngineEvent::PairsScored {
                context: get(value, "context")?,
                pairs: get(value, "pairs")?,
                micros: get(value, "micros")?,
            },
            "sweep-screened" => EngineEvent::SweepScreened {
                context: get(value, "context")?,
                reused: get(value, "reused")?,
                screened: get(value, "screened")?,
                confirmed: get(value, "confirmed")?,
            },
            "sweep-cache-lookup" => EngineEvent::SweepCacheLookup {
                context: get(value, "context")?,
                hit: get(value, "hit")?,
            },
            "span-closed" => EngineEvent::SpanClosed {
                phase: get(value, "phase")?,
                context: get(value, "context")?,
                micros: get(value, "micros")?,
            },
            "sweep-degraded" => EngineEvent::SweepDegraded {
                context: get(value, "context")?,
                tier: get(value, "tier")?,
                reason: get(value, "reason")?,
            },
            "tick-enqueued" => EngineEvent::TickEnqueued {
                context: get(value, "context")?,
                depth: get(value, "depth")?,
            },
            "tick-shed" => EngineEvent::TickShed {
                context: get(value, "context")?,
                policy: get(value, "policy")?,
            },
            "store-retried" => EngineEvent::StoreRetried {
                context: get(value, "context")?,
                attempt: get(value, "attempt")?,
                backoff_micros: get(value, "backoff_micros")?,
            },
            "health-changed" => EngineEvent::HealthChanged {
                context: get(value, "context")?,
                from: get(value, "from")?,
                to: get(value, "to")?,
            },
            "tenant-evicted" => EngineEvent::TenantEvicted {
                context: get(value, "context")?,
                tenant: get(value, "tenant")?,
                ticks: get(value, "ticks")?,
            },
            "tenant-warmed" => EngineEvent::TenantWarmed {
                context: get(value, "context")?,
                tenant: get(value, "tenant")?,
                micros: get(value, "micros")?,
            },
            other => return Err(DeError::unknown_variant(other)),
        };
        Ok(event)
    }
}

#[cfg(test)]
mod tests {
    use super::super::resilience::{
        DegradationReason, DegradationTier, HealthState, OverloadPolicy,
    };
    use super::super::telemetry::{ContextId, EnginePhase};
    use super::*;

    fn roundtrip(event: EngineEvent) -> EngineEvent {
        let json = serde_json::to_string(&event).expect("serialize");
        serde_json::from_str(&json).expect("deserialize")
    }

    /// Every variant survives serialize → deserialize → `==`.
    #[test]
    fn every_variant_roundtrips() {
        let ctx = ContextId::from_index(3);
        let events = [
            EngineEvent::TickIngested {
                context: ctx,
                tick: 42,
                residual: 0.25,
                exceeded: true,
                micros: 7,
            },
            EngineEvent::DetectionFired {
                context: ctx,
                tick: 42,
            },
            EngineEvent::DetectionCleared {
                context: ctx,
                tick: 50,
            },
            EngineEvent::DiagnosisRan {
                context: ctx,
                tick: 42,
                micros: 1200,
            },
            EngineEvent::SignatureMatched {
                context: ctx,
                tick: 42,
                best_similarity: 0.875,
                confident: true,
            },
            EngineEvent::SweepCompleted {
                context: ctx,
                pairs: 325,
                micros: 5000,
            },
            EngineEvent::PairsScored {
                context: ctx,
                pairs: 40,
                micros: 600,
            },
            EngineEvent::SweepScreened {
                context: ctx,
                reused: 300,
                screened: 20,
                confirmed: 5,
            },
            EngineEvent::SweepCacheLookup {
                context: ctx,
                hit: false,
            },
            EngineEvent::SpanClosed {
                phase: EnginePhase::Sweep,
                context: ctx,
                micros: 5100,
            },
            EngineEvent::SweepDegraded {
                context: ctx,
                tier: DegradationTier::PearsonFallback,
                reason: DegradationReason::WallClockExceeded,
            },
            EngineEvent::TickEnqueued {
                context: ctx,
                depth: 4,
            },
            EngineEvent::TickShed {
                context: ctx,
                policy: OverloadPolicy::ShedOldest,
            },
            EngineEvent::StoreRetried {
                context: ContextId::UNATTRIBUTED,
                attempt: 2,
                backoff_micros: 2048,
            },
            EngineEvent::HealthChanged {
                context: ctx,
                from: HealthState::Healthy,
                to: HealthState::Degraded(DegradationTier::CachedMatrix),
            },
            EngineEvent::TenantEvicted {
                context: ContextId::UNATTRIBUTED,
                tenant: 12,
                ticks: 480,
            },
            EngineEvent::TenantWarmed {
                context: ContextId::UNATTRIBUTED,
                tenant: 12,
                micros: 420,
            },
        ];
        for event in events {
            assert_eq!(roundtrip(event), event, "wire roundtrip of {event:?}");
        }
    }

    /// Pins the encoding: exact JSON for representative variants. A
    /// failure here is a wire-format break — segments written by older
    /// builds would no longer load.
    #[test]
    fn encoding_is_pinned() {
        let ctx = ContextId::from_index(3);
        let cases = [
            (
                EngineEvent::TickIngested {
                    context: ctx,
                    tick: 42,
                    residual: 0.25,
                    exceeded: true,
                    micros: 7,
                },
                r#"{"type":"tick-ingested","context":3,"tick":42,"residual":0.25,"exceeded":true,"micros":7}"#,
            ),
            (
                EngineEvent::DetectionFired {
                    context: ctx,
                    tick: 42,
                },
                r#"{"type":"detection-fired","context":3,"tick":42}"#,
            ),
            (
                EngineEvent::SweepDegraded {
                    context: ctx,
                    tier: DegradationTier::PearsonFallback,
                    reason: DegradationReason::WallClockExceeded,
                },
                r#"{"type":"sweep-degraded","context":3,"tier":"PearsonFallback","reason":"WallClockExceeded"}"#,
            ),
            (
                EngineEvent::SpanClosed {
                    phase: EnginePhase::Diagnosis,
                    context: ctx,
                    micros: 9,
                },
                r#"{"type":"span-closed","phase":"Diagnosis","context":3,"micros":9}"#,
            ),
            (
                EngineEvent::HealthChanged {
                    context: ctx,
                    from: HealthState::Healthy,
                    to: HealthState::Degraded(DegradationTier::CachedMatrix),
                },
                r#"{"type":"health-changed","context":3,"from":"Healthy","to":{"Degraded":"CachedMatrix"}}"#,
            ),
            (
                EngineEvent::StoreRetried {
                    context: ContextId::UNATTRIBUTED,
                    attempt: 2,
                    backoff_micros: 2048,
                },
                r#"{"type":"store-retried","context":4294967295,"attempt":2,"backoff_micros":2048}"#,
            ),
            (
                EngineEvent::SweepScreened {
                    context: ctx,
                    reused: 300,
                    screened: 20,
                    confirmed: 5,
                },
                r#"{"type":"sweep-screened","context":3,"reused":300,"screened":20,"confirmed":5}"#,
            ),
            (
                EngineEvent::TenantEvicted {
                    context: ContextId::UNATTRIBUTED,
                    tenant: 12,
                    ticks: 480,
                },
                r#"{"type":"tenant-evicted","context":4294967295,"tenant":12,"ticks":480}"#,
            ),
            (
                EngineEvent::TenantWarmed {
                    context: ContextId::UNATTRIBUTED,
                    tenant: 12,
                    micros: 420,
                },
                r#"{"type":"tenant-warmed","context":4294967295,"tenant":12,"micros":420}"#,
            ),
        ];
        for (event, expected) in cases {
            assert_eq!(
                serde_json::to_string(&event).expect("serialize"),
                expected,
                "pinned encoding of {event:?}"
            );
        }
    }
}
