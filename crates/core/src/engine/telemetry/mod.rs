//! The telemetry subsystem: context-attributed metrics, spans and
//! exporters for the streaming engine.
//!
//! [`Telemetry`] is an [`EventSink`] that supersedes the bare
//! [`super::events::EngineCounters`]: every [`EngineEvent`] is attributed
//! to an interned [`ContextId`] and aggregated into the per-context
//! [`MetricsRegistry`] (counters, gauges, log-scale latency histograms)
//! plus a bounded [`SpanRing`] of recently closed phase [`Span`]s. A
//! [`TelemetrySnapshot`] freezes everything into plain serializable data
//! for the Prometheus text, JSON, and report exporters.
//!
//! ```
//! use std::sync::Arc;
//! use ix_core::{Engine, InvarNetConfig, Telemetry};
//!
//! let telemetry = Telemetry::shared();
//! let engine = Engine::builder()
//!     .config(InvarNetConfig::default())
//!     .telemetry(&telemetry)
//!     .build();
//! // ... train and ingest ...
//! let snapshot = telemetry.snapshot();
//! println!("{}", snapshot.render_report());
//! ```

mod context;
mod export;
mod histogram;
mod registry;
mod span;

use std::sync::Arc;

pub use context::{ContextId, ContextRegistry};
pub use export::{PhaseSnapshot, SpanSnapshot, TelemetrySnapshot};
pub use histogram::{bucket_upper_edge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use registry::{ContextScope, MetricsRegistry, ScopeSnapshot};
pub use span::{EnginePhase, Span, SpanRecord, SpanRing};

use super::events::{EngineEvent, EventSink};

/// Similarity at or above which a signature match counts as confident
/// (the bar `diagnose` and the examples use for reporting a known problem).
pub const CONFIDENT_SIMILARITY: f64 = 0.5;

/// Default capacity of the recent-span ring.
pub const DEFAULT_SPAN_CAPACITY: usize = 256;

/// The full telemetry sink: context registry + metrics registry + span
/// ring. Share one `Arc<Telemetry>` between the engine (as its event sink)
/// and whatever reads the numbers; several engines may share a single
/// `Telemetry` (their contexts intern into one registry), which is how the
/// bench harness aggregates across experiment systems.
#[derive(Debug)]
pub struct Telemetry {
    contexts: Arc<ContextRegistry>,
    metrics: MetricsRegistry,
    phases: [Histogram; EnginePhase::ALL.len()],
    spans: SpanRing,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A telemetry hub with the default span capacity.
    pub fn new() -> Self {
        Telemetry::with_span_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// A telemetry hub keeping the last `span_capacity` spans.
    pub fn with_span_capacity(span_capacity: usize) -> Self {
        Telemetry {
            contexts: Arc::new(ContextRegistry::new()),
            metrics: MetricsRegistry::new(),
            phases: Default::default(),
            spans: SpanRing::new(span_capacity),
        }
    }

    /// `Arc::new(Telemetry::new())` — the form every attachment point
    /// takes.
    pub fn shared() -> Arc<Telemetry> {
        Arc::new(Telemetry::new())
    }

    /// The context interning registry (shared with attached engines).
    pub fn contexts(&self) -> &Arc<ContextRegistry> {
        &self.contexts
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The recent-span ring.
    pub fn spans(&self) -> &SpanRing {
        &self.spans
    }

    /// Freezes every counter, gauge, histogram and retained span into a
    /// serializable [`TelemetrySnapshot`].
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let contexts = self.metrics.snapshot_scopes(|id| self.contexts.label(id));
        let mut total = ScopeSnapshot::empty("(all)".to_string());
        for scope in &contexts {
            total.merge(scope);
        }
        let phases = EnginePhase::ALL
            .iter()
            .map(|&p| PhaseSnapshot {
                phase: p.name().to_string(),
                micros: self.phases[p.index()].snapshot(),
            })
            .collect();
        let spans = self
            .spans
            .recent()
            .into_iter()
            .map(|r| SpanSnapshot {
                seq: r.seq,
                phase: r.phase.name().to_string(),
                context: self.contexts.label(r.context),
                micros: r.micros,
            })
            .collect();
        TelemetrySnapshot {
            contexts,
            total,
            phases,
            spans,
        }
    }

    /// Prometheus text exposition (shorthand for
    /// `self.snapshot().render_prometheus()`).
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// Human-readable report (shorthand for
    /// `self.snapshot().render_report()`).
    pub fn render_report(&self) -> String {
        self.snapshot().render_report()
    }
}

impl EventSink for Telemetry {
    // ordering: Relaxed throughout — every update is a fetch_add/store on
    // an independent per-scope counter or last-write-wins gauge; snapshot
    // readers tolerate torn cross-counter views, and quiescence (engine
    // drop/join) makes the final numbers exact.
    fn record(&self, event: &EngineEvent) {
        match *event {
            EngineEvent::TickIngested {
                context,
                residual,
                exceeded,
                micros,
                ..
            } => {
                self.metrics
                    .scope(context)
                    .record_tick(residual, exceeded, micros);
            }
            EngineEvent::DetectionFired { context, .. } => {
                self.metrics
                    .scope(context)
                    .detections
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            EngineEvent::DetectionCleared { context, .. } => {
                self.metrics
                    .scope(context)
                    .clears
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            EngineEvent::DiagnosisRan {
                context, micros, ..
            } => {
                let scope = self.metrics.scope(context);
                scope
                    .diagnoses
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                scope.diagnosis_micros.record(micros);
            }
            EngineEvent::SignatureMatched {
                context,
                best_similarity,
                confident,
                ..
            } => {
                let scope = self.metrics.scope(context);
                if confident {
                    scope
                        .matches_confident
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                } else {
                    scope
                        .matches_unknown
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                scope.last_similarity.store(
                    best_similarity.to_bits(),
                    std::sync::atomic::Ordering::Relaxed,
                );
            }
            EngineEvent::SweepCompleted {
                context,
                pairs,
                micros,
            } => {
                let scope = self.metrics.scope(context);
                scope
                    .sweeps
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                scope
                    .pairs_scored
                    .fetch_add(pairs as u64, std::sync::atomic::Ordering::Relaxed);
                scope.sweep_micros.record(micros);
            }
            EngineEvent::SweepScreened {
                context,
                reused,
                screened,
                confirmed,
            } => {
                let scope = self.metrics.scope(context);
                scope
                    .sweep_pairs_reused
                    .fetch_add(reused as u64, std::sync::atomic::Ordering::Relaxed);
                scope
                    .sweep_pairs_screened
                    .fetch_add(screened as u64, std::sync::atomic::Ordering::Relaxed);
                scope
                    .sweep_pairs_confirmed
                    .fetch_add(confirmed as u64, std::sync::atomic::Ordering::Relaxed);
            }
            EngineEvent::SweepCacheLookup { context, hit } => {
                let scope = self.metrics.scope(context);
                let counter = if hit {
                    &scope.sweep_cache_hits
                } else {
                    &scope.sweep_cache_misses
                };
                counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            EngineEvent::PairsScored {
                context,
                pairs,
                micros,
            } => {
                let nanos_per_pair = micros.saturating_mul(1000) / (pairs.max(1) as u64);
                self.metrics
                    .scope(context)
                    .pair_score_nanos
                    .record(nanos_per_pair);
            }
            EngineEvent::SpanClosed {
                phase,
                context,
                micros,
            } => {
                self.phases[phase.index()].record(micros);
                self.spans.push(phase, context, micros);
            }
            EngineEvent::SweepDegraded { context, .. } => {
                self.metrics
                    .scope(context)
                    .sweeps_degraded
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            EngineEvent::TickEnqueued { context, depth } => {
                self.metrics.scope(context).record_queue_depth(depth as u64);
            }
            EngineEvent::TickShed { context, .. } => {
                self.metrics
                    .scope(context)
                    .ticks_shed
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            EngineEvent::StoreRetried { context, .. } => {
                self.metrics
                    .scope(context)
                    .store_retries
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            EngineEvent::HealthChanged { context, .. } => {
                self.metrics
                    .scope(context)
                    .health_transitions
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            // Fleet lifecycle events carry no per-context telemetry: the
            // fleet's own registry counts evictions and warm latencies.
            EngineEvent::TenantEvicted { .. } | EngineEvent::TenantWarmed { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_attributes_events_per_context() {
        let t = Telemetry::new();
        let a = t
            .contexts()
            .intern(&crate::OperationContext::new("n1", "W"));
        let b = t
            .contexts()
            .intern(&crate::OperationContext::new("n2", "W"));
        t.record(&EngineEvent::TickIngested {
            context: a,
            tick: 0,
            residual: 0.1,
            exceeded: false,
            micros: 4,
        });
        t.record(&EngineEvent::TickIngested {
            context: b,
            tick: 1,
            residual: 0.9,
            exceeded: true,
            micros: 6,
        });
        t.record(&EngineEvent::DetectionFired {
            context: b,
            tick: 1,
        });
        t.record(&EngineEvent::SweepCompleted {
            context: b,
            pairs: 325,
            micros: 1000,
        });
        t.record(&EngineEvent::PairsScored {
            context: b,
            pairs: 100,
            micros: 200,
        });
        let snap = t.snapshot();
        assert_eq!(snap.contexts.len(), 2);
        let sa = &snap.contexts[a.index()];
        let sb = &snap.contexts[b.index()];
        assert_eq!((sa.ticks, sa.detections), (1, 0));
        assert_eq!((sb.ticks, sb.detections, sb.sweeps), (1, 1, 1));
        assert_eq!(sb.pairs_scored, 325);
        assert_eq!(sb.pair_score_nanos.count, 1);
        assert_eq!(snap.total.ticks, 2);
        assert_eq!(snap.total.threshold_exceedances, 1);
        assert_eq!(snap.total.max_residual, 0.9);
    }

    #[test]
    fn spans_feed_ring_and_phase_histograms() {
        let t = Telemetry::new();
        t.record(&EngineEvent::SpanClosed {
            phase: EnginePhase::Sweep,
            context: ContextId::UNATTRIBUTED,
            micros: 1234,
        });
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].phase, "sweep");
        assert_eq!(snap.spans[0].context, "(unattributed)");
        let sweep_phase = snap.phases.iter().find(|p| p.phase == "sweep").unwrap();
        assert_eq!(sweep_phase.micros.count, 1);
        assert_eq!(sweep_phase.micros.max, 1234);
    }

    #[test]
    fn unattributed_scope_appears_only_when_used() {
        let t = Telemetry::new();
        assert!(t.snapshot().contexts.is_empty());
        t.record(&EngineEvent::SweepCompleted {
            context: ContextId::UNATTRIBUTED,
            pairs: 325,
            micros: 10,
        });
        let snap = t.snapshot();
        assert_eq!(snap.contexts.len(), 1);
        assert_eq!(snap.contexts[0].context, "(unattributed)");
    }
}
