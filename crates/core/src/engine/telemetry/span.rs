//! The span layer: scoped timers over engine phases and a bounded ring of
//! recently closed spans.
//!
//! A [`Span`] is an RAII guard: entering stamps the clock, dropping emits
//! an [`EngineEvent::SpanClosed`] through the engine's [`EventSink`]. The
//! [`crate::Telemetry`] sink turns those events into [`SpanRecord`]s in a
//! fixed-capacity [`SpanRing`], so a stuck or slow diagnosis can be
//! post-mortemed from the last few hundred phase timings without any
//! logging infrastructure.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use super::super::events::{EngineEvent, EventSink};
use super::context::ContextId;

/// The engine phase a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnginePhase {
    /// Offline ARIMA/CUSUM training ([`crate::Engine::train_performance_model`]).
    Train,
    /// Algorithm 1 invariant construction ([`crate::Engine::build_invariants`]).
    InvariantBuild,
    /// One pairwise association sweep on the worker pool.
    Sweep,
    /// One cause-inference pass (violation tuple + signature ranking).
    Diagnosis,
    /// One ingest tick. The engine does not open a span per tick (the ring
    /// would hold nothing else); ingest latency flows through
    /// [`EngineEvent::TickIngested`] instead. The phase exists for callers
    /// that want to time their own ingest batches.
    Ingest,
    /// Per-series profile construction at the start of a sweep (the shared
    /// preprocessing the profiled MIC kernel amortizes across all pairs).
    ProfileBuild,
    /// The screen-then-confirm pass of an incremental sweep (slide the
    /// profiles, screen stale invariant pairs with the conservative bound,
    /// confirm the rest with the full measure).
    Screen,
}

impl EnginePhase {
    /// Every phase, in reporting order.
    pub const ALL: [EnginePhase; 7] = [
        EnginePhase::Train,
        EnginePhase::InvariantBuild,
        EnginePhase::Sweep,
        EnginePhase::Diagnosis,
        EnginePhase::Ingest,
        EnginePhase::ProfileBuild,
        EnginePhase::Screen,
    ];

    /// Stable snake_case name (used as the metric label).
    pub fn name(self) -> &'static str {
        match self {
            EnginePhase::Train => "train",
            EnginePhase::InvariantBuild => "invariant_build",
            EnginePhase::Sweep => "sweep",
            EnginePhase::Diagnosis => "diagnosis",
            EnginePhase::Ingest => "ingest",
            EnginePhase::ProfileBuild => "profile_build",
            EnginePhase::Screen => "screen",
        }
    }

    /// The dense index of this phase within [`EnginePhase::ALL`].
    pub fn index(self) -> usize {
        match self {
            EnginePhase::Train => 0,
            EnginePhase::InvariantBuild => 1,
            EnginePhase::Sweep => 2,
            EnginePhase::Diagnosis => 3,
            EnginePhase::Ingest => 4,
            EnginePhase::ProfileBuild => 5,
            EnginePhase::Screen => 6,
        }
    }

    /// Inverse of [`EnginePhase::name`].
    pub fn from_name(name: &str) -> Option<EnginePhase> {
        EnginePhase::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for EnginePhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An RAII timer over one engine phase. Dropping the span emits
/// [`EngineEvent::SpanClosed`] with the elapsed wall-clock microseconds.
#[must_use = "dropping a Span immediately closes its phase with a zero-length timing"]
pub struct Span {
    sink: Arc<dyn EventSink>,
    phase: EnginePhase,
    context: ContextId,
    started: Instant,
}

impl Span {
    /// Starts timing `phase` for `context`; the closing event goes to
    /// `sink`.
    pub fn enter(sink: &Arc<dyn EventSink>, phase: EnginePhase, context: ContextId) -> Span {
        Span {
            sink: Arc::clone(sink),
            phase,
            context,
            // lint: allow(determinism, telemetry-only: span durations feed
            // SpanClosed events; replay normalizes all recorded timings)
            started: Instant::now(),
        }
    }

    /// Microseconds elapsed since the span was entered.
    pub fn elapsed_micros(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// The phase being timed.
    pub fn phase(&self) -> EnginePhase {
        self.phase
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.sink.record(&EngineEvent::SpanClosed {
            phase: self.phase,
            context: self.context,
            micros: self.elapsed_micros(),
        });
    }
}

/// One closed span, as kept by the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Monotone sequence number (total spans ever closed, 1-based).
    pub seq: u64,
    /// The phase the span covered.
    pub phase: EnginePhase,
    /// The context the span was attributed to.
    pub context: ContextId,
    /// Wall-clock duration in microseconds.
    pub micros: u64,
}

/// A bounded ring of the most recently closed spans. Pushing past capacity
/// evicts the oldest record.
#[derive(Debug)]
pub struct SpanRing {
    ring: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
    seq: AtomicU64,
}

impl SpanRing {
    /// A ring keeping the last `capacity` spans (at least one).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanRing {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            seq: AtomicU64::new(0),
        }
    }

    /// Records one closed span; returns its sequence number.
    pub fn push(&self, phase: EnginePhase, context: ContextId, micros: u64) -> u64 {
        // ordering: Relaxed — seq is a monotone ticket; uniqueness comes
        // from fetch_add's atomicity, and record visibility from the ring
        // mutex right below.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(SpanRecord {
            seq,
            phase,
            context,
            micros,
        });
        seq
    }

    /// The retained spans, oldest first.
    pub fn recent(&self) -> Vec<SpanRecord> {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .copied()
            .collect()
    }

    /// Total spans ever pushed (including evicted ones).
    pub fn total(&self) -> u64 {
        // ordering: Relaxed — monotone counter read, no paired data.
        self.seq.load(Ordering::Relaxed)
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::events::NullSink;

    #[test]
    fn ring_keeps_the_newest_spans() {
        let ring = SpanRing::new(3);
        for i in 0..5u64 {
            ring.push(EnginePhase::Sweep, ContextId::UNATTRIBUTED, i * 10);
        }
        let recent = ring.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(ring.total(), 5);
        assert_eq!(
            recent.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(recent.last().unwrap().micros, 40);
    }

    #[test]
    fn span_emits_on_drop() {
        use std::sync::atomic::AtomicUsize;

        #[derive(Default)]
        struct Capture {
            closed: AtomicUsize,
        }
        impl EventSink for Capture {
            fn record(&self, event: &EngineEvent) {
                if let EngineEvent::SpanClosed { phase, .. } = event {
                    assert_eq!(*phase, EnginePhase::Diagnosis);
                    self.closed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let capture = Arc::new(Capture::default());
        let sink: Arc<dyn EventSink> = Arc::clone(&capture) as Arc<dyn EventSink>;
        {
            let span = Span::enter(&sink, EnginePhase::Diagnosis, ContextId::UNATTRIBUTED);
            assert_eq!(span.phase(), EnginePhase::Diagnosis);
            assert_eq!(capture.closed.load(Ordering::Relaxed), 0);
        }
        assert_eq!(capture.closed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn phase_names_roundtrip() {
        for phase in EnginePhase::ALL {
            assert_eq!(EnginePhase::from_name(phase.name()), Some(phase));
            assert_eq!(EnginePhase::ALL[phase.index()], phase);
        }
        assert_eq!(EnginePhase::from_name("nope"), None);
        // Spans against a NullSink cost one Instant and one virtual call.
        let sink: Arc<dyn EventSink> = Arc::new(NullSink);
        let s = Span::enter(&sink, EnginePhase::Ingest, ContextId::UNATTRIBUTED);
        drop(s);
    }
}
