//! Context interning: cheap `u32` handles for [`OperationContext`]s.
//!
//! Events flow on the per-tick ingestion path, so they cannot afford to
//! clone an [`OperationContext`] (two heap strings) per event. Instead the
//! engine interns each context once in a [`ContextRegistry`] and stamps
//! events with the resulting [`ContextId`] — a `Copy` `u32` that exporters
//! resolve back to a human-readable label when rendering.

use std::collections::HashMap;
use std::sync::{PoisonError, RwLock};

use crate::context::OperationContext;

/// An interned handle to an [`OperationContext`], issued by a
/// [`ContextRegistry`]. Ids are dense (0, 1, 2, ...) in interning order, so
/// registries and exporters can use them as vector indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContextId(u32);

impl ContextId {
    /// The sentinel id stamped on events that cannot be attributed to a
    /// context (e.g. a sweep over a caller-supplied frame).
    pub const UNATTRIBUTED: ContextId = ContextId(u32::MAX);

    /// The dense index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The id at a dense index (inverse of [`ContextId::index`], used when
    /// walking slot tables).
    pub fn from_index(index: usize) -> ContextId {
        ContextId(index as u32)
    }

    /// Whether this is the [`ContextId::UNATTRIBUTED`] sentinel.
    pub fn is_unattributed(self) -> bool {
        self == ContextId::UNATTRIBUTED
    }
}

// The wire form is the raw `u32` (the sentinel rides along as
// `u32::MAX`), so ids in history segments stay meaningful only next to
// the label table of the registry that issued them.
impl serde::Serialize for ContextId {
    fn to_value(&self) -> serde::Value {
        serde::Value::UInt(u64::from(self.0))
    }
}

impl serde::Deserialize for ContextId {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let raw = value.as_u64()?;
        u32::try_from(raw)
            .map(ContextId)
            .map_err(|_| serde::DeError::new(format!("{raw} out of range for ContextId")))
    }
}

/// Interns [`OperationContext`]s to dense [`ContextId`]s and resolves them
/// back to display labels.
///
/// Interning an already-known context is a read-locked hash lookup — the
/// per-tick cost on the ingest path. New contexts (a write-locked insert)
/// appear only when a context is first trained or ingested.
#[derive(Debug, Default)]
pub struct ContextRegistry {
    ids: RwLock<HashMap<OperationContext, ContextId>>,
    labels: RwLock<Vec<String>>,
}

impl ContextRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ContextRegistry::default()
    }

    /// The id of `context`, interning it on first sight.
    pub fn intern(&self, context: &OperationContext) -> ContextId {
        if let Some(&id) = self
            .ids
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(context)
        {
            return id;
        }
        let mut ids = self.ids.write().unwrap_or_else(PoisonError::into_inner);
        // Another thread may have won the race between our read and write.
        if let Some(&id) = ids.get(context) {
            return id;
        }
        let mut labels = self.labels.write().unwrap_or_else(PoisonError::into_inner);
        let id = ContextId(labels.len() as u32);
        labels.push(context.to_string());
        ids.insert(context.clone(), id);
        id
    }

    /// The id of `context` if it has been interned.
    pub fn lookup(&self, context: &OperationContext) -> Option<ContextId> {
        self.ids
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(context)
            .copied()
    }

    /// The display label of an id; `"(unattributed)"` for the sentinel and
    /// `"(unknown)"` for ids this registry never issued.
    pub fn label(&self, id: ContextId) -> String {
        if id.is_unattributed() {
            return "(unattributed)".to_string();
        }
        self.labels
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(id.index())
            .cloned()
            .unwrap_or_else(|| "(unknown)".to_string())
    }

    /// Labels of every interned context, in id order.
    pub fn labels(&self) -> Vec<String> {
        self.labels
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Number of interned contexts.
    pub fn len(&self) -> usize {
        self.labels
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no context has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_dense() {
        let reg = ContextRegistry::new();
        let a = OperationContext::new("n1", "W");
        let b = OperationContext::new("n2", "W");
        let ia = reg.intern(&a);
        let ib = reg.intern(&b);
        assert_ne!(ia, ib);
        assert_eq!(reg.intern(&a), ia);
        assert_eq!(ia.index(), 0);
        assert_eq!(ib.index(), 1);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.label(ia), a.to_string());
        assert_eq!(reg.lookup(&b), Some(ib));
        assert_eq!(reg.lookup(&OperationContext::new("n3", "W")), None);
    }

    #[test]
    fn sentinel_and_unknown_labels() {
        let reg = ContextRegistry::new();
        assert!(ContextId::UNATTRIBUTED.is_unattributed());
        assert_eq!(reg.label(ContextId::UNATTRIBUTED), "(unattributed)");
        assert_eq!(reg.label(ContextId(5)), "(unknown)");
        assert!(reg.is_empty());
    }

    #[test]
    fn concurrent_interning_agrees() {
        let reg = std::sync::Arc::new(ContextRegistry::new());
        let ctx = OperationContext::new("n", "W");
        let ids: Vec<ContextId> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let reg = std::sync::Arc::clone(&reg);
                    let ctx = ctx.clone();
                    s.spawn(move || reg.intern(&ctx))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(reg.len(), 1);
    }
}
