//! The metrics registry: per-context counters, gauges and latency
//! histograms.
//!
//! Every metric is an atomic, so the record path never blocks: the only
//! shared structure is a slot table (`ContextId` → scope) behind an
//! `RwLock` that is write-locked solely when a new context appears. The
//! aggregate view is computed at snapshot time by merging the per-context
//! scopes, so recording touches exactly one scope.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

use serde::{Deserialize, Serialize};

use super::context::ContextId;
use super::histogram::{Histogram, HistogramSnapshot};

/// Sets an f64 gauge stored as bits in an `AtomicU64`.
// ordering: Relaxed — a last-write-wins gauge; no reader infers anything
// from its value about other memory.
fn gauge_set(gauge: &AtomicU64, value: f64) {
    gauge.store(value.to_bits(), Ordering::Relaxed);
}

/// Monotone-max update of an f64 gauge (residuals are non-negative, so a
/// CAS loop on the numeric value is required only for correctness under
/// racing writers, not for ordering).
// ordering: Relaxed on load and both CAS sides — the loop's atomicity is
// what protects the max, not inter-variable ordering; single variable,
// monotone value.
fn gauge_max(gauge: &AtomicU64, value: f64) {
    let mut current = gauge.load(Ordering::Relaxed);
    while value > f64::from_bits(current) {
        match gauge.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

// ordering: Relaxed — point-in-time gauge read; staleness is acceptable by
// the snapshot contract.
fn gauge_get(gauge: &AtomicU64) -> f64 {
    f64::from_bits(gauge.load(Ordering::Relaxed))
}

/// All metrics of one context (or of the unattributed sentinel scope).
#[derive(Debug, Default)]
pub struct ContextScope {
    /// Ticks ingested.
    pub ticks: AtomicU64,
    /// Ticks whose detector residual exceeded the threshold.
    pub threshold_exceedances: AtomicU64,
    /// Anomaly onsets (edge-triggered detections).
    pub detections: AtomicU64,
    /// Anomaly clears (anomalous → normal edges).
    pub clears: AtomicU64,
    /// Cause-inference passes.
    pub diagnoses: AtomicU64,
    /// Association sweeps.
    pub sweeps: AtomicU64,
    /// Metric pairs scored across all sweeps.
    pub pairs_scored: AtomicU64,
    /// Sweeps skipped because the window's association matrix was cached.
    pub sweep_cache_hits: AtomicU64,
    /// Sweep-cache lookups that fell through to a full sweep.
    pub sweep_cache_misses: AtomicU64,
    /// Pair scores served verbatim from the incremental sweep state.
    pub sweep_pairs_reused: AtomicU64,
    /// Stale pairs cleared by the conservative screen bound alone.
    pub sweep_pairs_screened: AtomicU64,
    /// Stale pairs confirmed with the full association measure.
    pub sweep_pairs_confirmed: AtomicU64,
    /// Signature matches confident enough to report as a known problem.
    pub matches_confident: AtomicU64,
    /// Diagnoses whose best match stayed below the confidence bar.
    pub matches_unknown: AtomicU64,
    /// Sweeps answered by a degradation-ladder fallback tier.
    pub sweeps_degraded: AtomicU64,
    /// Ticks shed by the ingest queue's overload policy.
    pub ticks_shed: AtomicU64,
    /// Store save/load attempts that failed and were retried.
    pub store_retries: AtomicU64,
    /// Health state machine transitions.
    pub health_transitions: AtomicU64,
    /// Tick rows appended to an attached history recorder.
    pub history_rows_recorded: AtomicU64,
    /// Gauge: storage segments the attached recorder holds for this
    /// context (last reported).
    pub history_segments: AtomicU64,
    /// Gauge: ingest-queue shard depth after the most recent enqueue.
    pub queue_depth_last: AtomicU64,
    /// Gauge: deepest ingest-queue shard depth seen.
    pub queue_depth_max: AtomicU64,
    /// Gauge: the most recent detector residual (f64 bits).
    pub last_residual: AtomicU64,
    /// Gauge: the largest detector residual seen (f64 bits).
    pub max_residual: AtomicU64,
    /// Gauge: similarity of the most recent best signature match (f64 bits).
    pub last_similarity: AtomicU64,
    /// Ingest latency (µs per tick, detector step + window push).
    pub ingest_micros: Histogram,
    /// Sweep latency (µs per 325-pair sweep).
    pub sweep_micros: Histogram,
    /// Diagnosis latency (µs per cause-inference pass).
    pub diagnosis_micros: Histogram,
    /// Association-measure scoring cost (ns per metric pair, averaged over
    /// each worker chunk).
    pub pair_score_nanos: Histogram,
    /// Recorder-append cost (ns per `record_tick` call under the shard
    /// lock).
    pub recorder_append_nanos: Histogram,
}

impl ContextScope {
    /// Records one ingested tick.
    // ordering: Relaxed — independent monotone counters on the record path;
    // snapshot readers tolerate torn cross-counter views by contract.
    pub fn record_tick(&self, residual: f64, exceeded: bool, micros: u64) {
        self.ticks.fetch_add(1, Ordering::Relaxed);
        if exceeded {
            self.threshold_exceedances.fetch_add(1, Ordering::Relaxed);
        }
        gauge_set(&self.last_residual, residual);
        gauge_max(&self.max_residual, residual);
        self.ingest_micros.record(micros);
    }

    /// Records one history append: the recorder's `record_tick` cost and,
    /// when the recorder reports one, its current segment count.
    // ordering: Relaxed — independent monotone counter and a last-write
    // gauge; no reader infers cross-variable state from them.
    pub fn record_history_append(&self, nanos: u64, segments: Option<u64>) {
        self.history_rows_recorded.fetch_add(1, Ordering::Relaxed);
        self.recorder_append_nanos.record(nanos);
        if let Some(segments) = segments {
            self.history_segments.store(segments, Ordering::Relaxed);
        }
    }

    /// Records one ingest-queue enqueue at the given shard depth.
    // ordering: Relaxed — both gauges are single-variable (store /
    // fetch_max); no reader infers cross-variable state from them.
    pub fn record_queue_depth(&self, depth: u64) {
        self.queue_depth_last.store(depth, Ordering::Relaxed);
        self.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// Plain-data copy of every metric in the scope.
    // ordering: Relaxed loads throughout — the snapshot is documented as
    // point-in-time-ish; exact once writers are quiescent (drop/join).
    pub fn snapshot(&self, context: String) -> ScopeSnapshot {
        ScopeSnapshot {
            context,
            ticks: self.ticks.load(Ordering::Relaxed),
            threshold_exceedances: self.threshold_exceedances.load(Ordering::Relaxed),
            detections: self.detections.load(Ordering::Relaxed),
            clears: self.clears.load(Ordering::Relaxed),
            diagnoses: self.diagnoses.load(Ordering::Relaxed),
            sweeps: self.sweeps.load(Ordering::Relaxed),
            pairs_scored: self.pairs_scored.load(Ordering::Relaxed),
            sweep_cache_hits: self.sweep_cache_hits.load(Ordering::Relaxed),
            sweep_cache_misses: self.sweep_cache_misses.load(Ordering::Relaxed),
            sweep_pairs_reused: self.sweep_pairs_reused.load(Ordering::Relaxed),
            sweep_pairs_screened: self.sweep_pairs_screened.load(Ordering::Relaxed),
            sweep_pairs_confirmed: self.sweep_pairs_confirmed.load(Ordering::Relaxed),
            matches_confident: self.matches_confident.load(Ordering::Relaxed),
            matches_unknown: self.matches_unknown.load(Ordering::Relaxed),
            sweeps_degraded: self.sweeps_degraded.load(Ordering::Relaxed),
            ticks_shed: self.ticks_shed.load(Ordering::Relaxed),
            store_retries: self.store_retries.load(Ordering::Relaxed),
            health_transitions: self.health_transitions.load(Ordering::Relaxed),
            history_rows_recorded: self.history_rows_recorded.load(Ordering::Relaxed),
            history_segments: self.history_segments.load(Ordering::Relaxed),
            queue_depth_last: self.queue_depth_last.load(Ordering::Relaxed),
            queue_depth_max: self.queue_depth_max.load(Ordering::Relaxed),
            last_residual: gauge_get(&self.last_residual),
            max_residual: gauge_get(&self.max_residual),
            last_similarity: gauge_get(&self.last_similarity),
            ingest_micros: self.ingest_micros.snapshot(),
            sweep_micros: self.sweep_micros.snapshot(),
            diagnosis_micros: self.diagnosis_micros.snapshot(),
            pair_score_nanos: self.pair_score_nanos.snapshot(),
            recorder_append_nanos: self.recorder_append_nanos.snapshot(),
        }
    }
}

/// Serializable point-in-time copy of a [`ContextScope`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScopeSnapshot {
    /// Display label of the scope's context (`"(all)"` for the aggregate).
    pub context: String,
    /// Ticks ingested.
    pub ticks: u64,
    /// Ticks whose detector residual exceeded the threshold.
    pub threshold_exceedances: u64,
    /// Anomaly onsets.
    pub detections: u64,
    /// Anomaly clears.
    pub clears: u64,
    /// Cause-inference passes.
    pub diagnoses: u64,
    /// Association sweeps.
    pub sweeps: u64,
    /// Metric pairs scored.
    pub pairs_scored: u64,
    /// Sweeps skipped via the association-matrix cache.
    pub sweep_cache_hits: u64,
    /// Sweep-cache lookups that missed.
    pub sweep_cache_misses: u64,
    /// Pair scores served verbatim from the incremental sweep state.
    pub sweep_pairs_reused: u64,
    /// Stale pairs cleared by the conservative screen bound alone.
    pub sweep_pairs_screened: u64,
    /// Stale pairs confirmed with the full association measure.
    pub sweep_pairs_confirmed: u64,
    /// Confident signature matches.
    pub matches_confident: u64,
    /// Below-confidence diagnoses.
    pub matches_unknown: u64,
    /// Sweeps answered by a degradation-ladder fallback tier.
    pub sweeps_degraded: u64,
    /// Ticks shed by the ingest queue's overload policy.
    pub ticks_shed: u64,
    /// Store save/load attempts that were retried.
    pub store_retries: u64,
    /// Health state machine transitions.
    pub health_transitions: u64,
    /// Tick rows appended to an attached history recorder.
    pub history_rows_recorded: u64,
    /// Storage segments the attached recorder holds (last reported).
    pub history_segments: u64,
    /// Ingest-queue shard depth after the most recent enqueue.
    pub queue_depth_last: u64,
    /// Deepest ingest-queue shard depth seen.
    pub queue_depth_max: u64,
    /// Most recent detector residual.
    pub last_residual: f64,
    /// Largest detector residual seen.
    pub max_residual: f64,
    /// Similarity of the most recent best match.
    pub last_similarity: f64,
    /// Ingest latency histogram (µs).
    pub ingest_micros: HistogramSnapshot,
    /// Sweep latency histogram (µs).
    pub sweep_micros: HistogramSnapshot,
    /// Diagnosis latency histogram (µs).
    pub diagnosis_micros: HistogramSnapshot,
    /// Pair-scoring cost histogram (ns per pair).
    pub pair_score_nanos: HistogramSnapshot,
    /// Recorder-append cost histogram (ns per recorded tick).
    pub recorder_append_nanos: HistogramSnapshot,
}

impl ScopeSnapshot {
    /// An all-zero snapshot labeled `context`.
    pub fn empty(context: String) -> Self {
        ScopeSnapshot {
            context,
            ticks: 0,
            threshold_exceedances: 0,
            detections: 0,
            clears: 0,
            diagnoses: 0,
            sweeps: 0,
            pairs_scored: 0,
            sweep_cache_hits: 0,
            sweep_cache_misses: 0,
            sweep_pairs_reused: 0,
            sweep_pairs_screened: 0,
            sweep_pairs_confirmed: 0,
            matches_confident: 0,
            matches_unknown: 0,
            sweeps_degraded: 0,
            ticks_shed: 0,
            store_retries: 0,
            health_transitions: 0,
            history_rows_recorded: 0,
            history_segments: 0,
            queue_depth_last: 0,
            queue_depth_max: 0,
            last_residual: 0.0,
            max_residual: 0.0,
            last_similarity: 0.0,
            ingest_micros: HistogramSnapshot::default(),
            sweep_micros: HistogramSnapshot::default(),
            diagnosis_micros: HistogramSnapshot::default(),
            pair_score_nanos: HistogramSnapshot::default(),
            recorder_append_nanos: HistogramSnapshot::default(),
        }
    }

    /// Merges `other` into this snapshot: counters add, gauges take the
    /// last/max as appropriate, histograms merge bucket-wise.
    pub fn merge(&mut self, other: &ScopeSnapshot) {
        self.ticks += other.ticks;
        self.threshold_exceedances += other.threshold_exceedances;
        self.detections += other.detections;
        self.clears += other.clears;
        self.diagnoses += other.diagnoses;
        self.sweeps += other.sweeps;
        self.pairs_scored += other.pairs_scored;
        self.sweep_cache_hits += other.sweep_cache_hits;
        self.sweep_cache_misses += other.sweep_cache_misses;
        self.sweep_pairs_reused += other.sweep_pairs_reused;
        self.sweep_pairs_screened += other.sweep_pairs_screened;
        self.sweep_pairs_confirmed += other.sweep_pairs_confirmed;
        self.matches_confident += other.matches_confident;
        self.matches_unknown += other.matches_unknown;
        self.sweeps_degraded += other.sweeps_degraded;
        self.ticks_shed += other.ticks_shed;
        self.store_retries += other.store_retries;
        self.health_transitions += other.health_transitions;
        self.history_rows_recorded += other.history_rows_recorded;
        self.history_segments += other.history_segments;
        self.queue_depth_last = self.queue_depth_last.max(other.queue_depth_last);
        self.queue_depth_max = self.queue_depth_max.max(other.queue_depth_max);
        // "Last" gauges have no global order across scopes; keep the
        // strongest signal so the aggregate stays meaningful.
        self.last_residual = self.last_residual.max(other.last_residual);
        self.last_similarity = self.last_similarity.max(other.last_similarity);
        self.max_residual = self.max_residual.max(other.max_residual);
        self.ingest_micros.merge(&other.ingest_micros);
        self.sweep_micros.merge(&other.sweep_micros);
        self.diagnosis_micros.merge(&other.diagnosis_micros);
        self.pair_score_nanos.merge(&other.pair_score_nanos);
        self.recorder_append_nanos
            .merge(&other.recorder_append_nanos);
    }

    /// Whether any event has been recorded in this scope.
    pub fn is_empty(&self) -> bool {
        self.ticks == 0 && self.sweeps == 0 && self.diagnoses == 0 && self.detections == 0
    }
}

/// The slot table mapping [`ContextId`]s to their [`ContextScope`]s.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    scopes: RwLock<Vec<Arc<ContextScope>>>,
    unattributed: Arc<ContextScope>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The scope of `id`, growing the slot table on first sight of a
    /// context. The fast path is a read-locked index.
    pub fn scope(&self, id: ContextId) -> Arc<ContextScope> {
        if id.is_unattributed() {
            return Arc::clone(&self.unattributed);
        }
        {
            let scopes = self.scopes.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(scope) = scopes.get(id.index()) {
                return Arc::clone(scope);
            }
        }
        let mut scopes = self.scopes.write().unwrap_or_else(PoisonError::into_inner);
        while scopes.len() <= id.index() {
            scopes.push(Arc::new(ContextScope::default()));
        }
        Arc::clone(&scopes[id.index()])
    }

    /// The unattributed sentinel scope.
    pub fn unattributed(&self) -> &Arc<ContextScope> {
        &self.unattributed
    }

    /// Number of per-context slots allocated so far.
    pub fn len(&self) -> usize {
        self.scopes
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no per-context slot exists yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots every allocated scope, labeled through `label`, plus the
    /// unattributed scope (labeled by `label(ContextId::UNATTRIBUTED)`).
    pub fn snapshot_scopes(&self, label: impl Fn(ContextId) -> String) -> Vec<ScopeSnapshot> {
        let scopes: Vec<Arc<ContextScope>> = self
            .scopes
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(Arc::clone)
            .collect();
        let mut out: Vec<ScopeSnapshot> = scopes
            .iter()
            .enumerate()
            .map(|(i, scope)| {
                let id = ContextId::from_index(i);
                scope.snapshot(label(id))
            })
            .collect();
        let sentinel = self.unattributed.snapshot(label(ContextId::UNATTRIBUTED));
        if !sentinel.is_empty() {
            out.push(sentinel);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_table_grows_and_is_stable() {
        let reg = MetricsRegistry::new();
        let id = ContextId::from_index(2);
        let scope = reg.scope(id);
        scope.ticks.fetch_add(3, Ordering::Relaxed);
        assert_eq!(reg.len(), 3);
        // Same slot on re-lookup.
        assert_eq!(reg.scope(id).ticks.load(Ordering::Relaxed), 3);
        // Unattributed is its own scope.
        reg.scope(ContextId::UNATTRIBUTED)
            .sweeps
            .fetch_add(1, Ordering::Relaxed);
        assert_eq!(reg.unattributed().sweeps.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn gauges_track_last_and_max() {
        let scope = ContextScope::default();
        scope.record_tick(0.5, false, 10);
        scope.record_tick(2.0, true, 12);
        scope.record_tick(1.0, false, 8);
        let s = scope.snapshot("c".into());
        assert_eq!(s.ticks, 3);
        assert_eq!(s.threshold_exceedances, 1);
        assert_eq!(s.last_residual, 1.0);
        assert_eq!(s.max_residual, 2.0);
        assert_eq!(s.ingest_micros.count, 3);
    }

    #[test]
    fn merge_aggregates_scopes() {
        let a = ContextScope::default();
        let b = ContextScope::default();
        a.record_tick(1.0, true, 5);
        b.record_tick(3.0, false, 7);
        b.diagnoses.fetch_add(2, Ordering::Relaxed);
        let mut total = ScopeSnapshot::empty("(all)".into());
        total.merge(&a.snapshot("a".into()));
        total.merge(&b.snapshot("b".into()));
        assert_eq!(total.ticks, 2);
        assert_eq!(total.diagnoses, 2);
        assert_eq!(total.max_residual, 3.0);
        assert_eq!(total.ingest_micros.count, 2);
        assert!(total.ingest_micros.is_consistent());
    }
}
