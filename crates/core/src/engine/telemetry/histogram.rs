//! Fixed-bucket log-scale latency histograms with atomic counters.
//!
//! Buckets are powers of two: bucket 0 holds the value `0`, bucket `i >= 1`
//! holds `[2^(i-1), 2^i)`. Recording is a single relaxed `fetch_add` on the
//! bucket plus count/sum/max bookkeeping, so histograms are safe to hammer
//! from every engine thread without locks. Quantiles are read from a
//! [`HistogramSnapshot`] and are upper bounds with at most 2x relative
//! error (the bucket's inclusive upper edge, capped at the observed max —
//! the standard trade of log-bucketed histograms).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: `{0}`, then 31 power-of-two ranges; the last bucket
/// (`>= 2^30`, about 18 minutes in microseconds) is the overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// The bucket a value lands in.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The inclusive upper edge of a bucket; `u64::MAX` for the overflow
/// bucket.
pub fn bucket_upper_edge(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A lock-free fixed-bucket log-scale histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one value.
    // ordering: Relaxed — bucket/count/sum/max are each monotone and
    // independently meaningful; readers accept torn cross-field views.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    // ordering: Relaxed — monotone counter read, no cross-field invariant.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy (relaxed loads; exact once
    /// writers are quiescent).
    // ordering: Relaxed — by the doc contract above, the snapshot is only
    // exact once writers are quiescent; no acquire edge would tighten it.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of a [`Histogram`], serializable and mergeable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_upper_edge`] for the bucket scheme).
    pub buckets: Vec<u64>,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value (exact, not bucketed).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merges another snapshot into this one (bucket-wise sums).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as the inclusive upper edge of
    /// the bucket holding the ranked value, capped at the observed max.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_upper_edge(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded values (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether the per-bucket counts add up to `count` — the structural
    /// invariant concurrency tests assert.
    pub fn is_consistent(&self) -> bool {
        self.buckets.iter().sum::<u64>() == self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_partition_the_axis() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every value <= its bucket's upper edge, > the previous bucket's.
        for v in [0u64, 1, 2, 5, 100, 1023, 1024, 1 << 29, 1 << 31] {
            let b = bucket_index(v);
            assert!(v <= bucket_upper_edge(b), "{v} in bucket {b}");
            if b > 0 && b < HISTOGRAM_BUCKETS - 1 {
                assert!(v > bucket_upper_edge(b - 1), "{v} in bucket {b}");
            }
        }
    }

    #[test]
    fn quantiles_bound_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.is_consistent());
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        // Log buckets: upper bound with <= 2x relative error.
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        assert!((990..=1023).contains(&p99), "p99 = {p99}");
        assert_eq!(s.quantile(1.0), 1000); // capped at the exact max
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.is_consistent());
    }

    #[test]
    fn merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v);
            b.record(v * 10);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 200);
        assert_eq!(m.max, 990);
        assert!(m.is_consistent());
    }
}
