//! Exporters: serializable snapshots, Prometheus text exposition, and the
//! human-readable report behind `diagnose --telemetry`.
//!
//! Everything renders from a [`TelemetrySnapshot`] — a plain-data copy of
//! the registry — so a snapshot deserialized from JSON renders exactly the
//! same text as the live registry it was taken from.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

use super::histogram::{bucket_upper_edge, HistogramSnapshot};
use super::registry::ScopeSnapshot;

/// One closed span as exported (labels resolved to strings).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanSnapshot {
    /// Monotone sequence number.
    pub seq: u64,
    /// Phase name (see [`super::EnginePhase::name`]).
    pub phase: String,
    /// Context label.
    pub context: String,
    /// Duration in microseconds.
    pub micros: u64,
}

/// Aggregate latency distribution of one engine phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSnapshot {
    /// Phase name.
    pub phase: String,
    /// Span durations of the phase (µs).
    pub micros: HistogramSnapshot,
}

/// A complete, serializable copy of the engine's telemetry at one instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Per-context scopes (plus the unattributed scope when non-empty).
    pub contexts: Vec<ScopeSnapshot>,
    /// Everything merged, labeled `"(all)"`.
    pub total: ScopeSnapshot,
    /// Per-phase span-duration distributions.
    pub phases: Vec<PhaseSnapshot>,
    /// The most recently closed spans, oldest first.
    pub spans: Vec<SpanSnapshot>,
}

impl TelemetrySnapshot {
    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (practically unreachable for this
    /// plain-data tree).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a snapshot back from [`TelemetrySnapshot::to_json`] output.
    ///
    /// # Errors
    ///
    /// Malformed JSON or a shape mismatch.
    pub fn from_json(text: &str) -> Result<TelemetrySnapshot, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Prometheus text exposition of every counter, gauge and histogram,
    /// one time series per context.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let counters: [SeriesSpec<u64>; 19] = [
            ("invarnet_ticks_ingested_total", "Ticks ingested.", |s| {
                s.ticks
            }),
            (
                "invarnet_threshold_exceedances_total",
                "Ticks whose detector residual exceeded the threshold.",
                |s| s.threshold_exceedances,
            ),
            (
                "invarnet_detections_fired_total",
                "Anomaly onsets reported by the detection layer.",
                |s| s.detections,
            ),
            (
                "invarnet_detections_cleared_total",
                "Anomalous-to-normal edges.",
                |s| s.clears,
            ),
            ("invarnet_diagnoses_total", "Cause-inference passes.", |s| {
                s.diagnoses
            }),
            (
                "invarnet_sweeps_total",
                "Pairwise association sweeps.",
                |s| s.sweeps,
            ),
            (
                "invarnet_pairs_scored_total",
                "Metric pairs scored across all sweeps.",
                |s| s.pairs_scored,
            ),
            (
                "invarnet_signature_matches_total",
                "Diagnoses whose best match was confident.",
                |s| s.matches_confident,
            ),
            (
                "invarnet_signature_unknowns_total",
                "Diagnoses below the confidence bar.",
                |s| s.matches_unknown,
            ),
            (
                "invarnet_sweep_cache_hits_total",
                "Diagnosis sweeps served from the association-matrix cache.",
                |s| s.sweep_cache_hits,
            ),
            (
                "invarnet_sweep_cache_misses_total",
                "Diagnosis sweeps that had to run the full pairwise sweep.",
                |s| s.sweep_cache_misses,
            ),
            (
                "invarnet_sweep_pairs_reused_total",
                "Pair scores served verbatim from the incremental sweep state.",
                |s| s.sweep_pairs_reused,
            ),
            (
                "invarnet_sweep_pairs_screened_total",
                "Stale pairs cleared by the conservative screen bound alone.",
                |s| s.sweep_pairs_screened,
            ),
            (
                "invarnet_sweep_pairs_confirmed_total",
                "Stale pairs confirmed with the full association measure.",
                |s| s.sweep_pairs_confirmed,
            ),
            (
                "invarnet_sweep_degraded_total",
                "Sweeps answered by a degradation-ladder fallback tier.",
                |s| s.sweeps_degraded,
            ),
            (
                "invarnet_ticks_shed_total",
                "Ticks shed by the ingest queue's overload policy.",
                |s| s.ticks_shed,
            ),
            (
                "invarnet_store_retries_total",
                "Model-store save/load attempts that were retried.",
                |s| s.store_retries,
            ),
            (
                "invarnet_health_transitions_total",
                "Engine health state machine transitions.",
                |s| s.health_transitions,
            ),
            (
                "invarnet_history_rows_recorded_total",
                "Tick rows appended to the attached history recorder.",
                |s| s.history_rows_recorded,
            ),
        ];
        for (name, help, get) in counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for scope in &self.contexts {
                let _ = writeln!(
                    out,
                    "{name}{{context=\"{}\"}} {}",
                    escape_label(&scope.context),
                    get(scope)
                );
            }
        }
        let gauges: [SeriesSpec<f64>; 6] = [
            (
                "invarnet_last_residual",
                "Most recent detector residual.",
                |s| s.last_residual,
            ),
            (
                "invarnet_max_residual",
                "Largest detector residual seen.",
                |s| s.max_residual,
            ),
            (
                "invarnet_last_similarity",
                "Similarity of the most recent best signature match.",
                |s| s.last_similarity,
            ),
            (
                "invarnet_queue_depth",
                "Ingest-queue shard depth after the most recent enqueue.",
                |s| s.queue_depth_last as f64,
            ),
            (
                "invarnet_queue_depth_max",
                "Deepest ingest-queue shard depth seen.",
                |s| s.queue_depth_max as f64,
            ),
            (
                "invarnet_history_segments",
                "Storage segments the attached history recorder holds.",
                |s| s.history_segments as f64,
            ),
        ];
        for (name, help, get) in gauges {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            for scope in &self.contexts {
                let _ = writeln!(
                    out,
                    "{name}{{context=\"{}\"}} {}",
                    escape_label(&scope.context),
                    get(scope)
                );
            }
        }
        let histograms: [HistogramSpec; 5] = [
            (
                "invarnet_ingest_micros",
                "Per-tick ingest latency in microseconds.",
                |s| &s.ingest_micros,
            ),
            (
                "invarnet_sweep_micros",
                "Association sweep latency in microseconds.",
                |s| &s.sweep_micros,
            ),
            (
                "invarnet_diagnosis_micros",
                "Cause-inference latency in microseconds.",
                |s| &s.diagnosis_micros,
            ),
            (
                "invarnet_pair_score_nanos",
                "Association-measure cost in nanoseconds per metric pair.",
                |s| &s.pair_score_nanos,
            ),
            (
                "invarnet_recorder_append_nanos",
                "History recorder append cost in nanoseconds per recorded tick.",
                |s| &s.recorder_append_nanos,
            ),
        ];
        for (name, help, get) in histograms {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} histogram");
            for scope in &self.contexts {
                render_histogram(&mut out, name, &scope.context, get(scope));
            }
        }
        out
    }

    /// The human-readable report printed by `diagnose --telemetry`:
    /// per-context activity with sweep latency quantiles, phase timings,
    /// and the recent-span tail.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "telemetry report");
        let _ = writeln!(out, "================");
        let _ = writeln!(
            out,
            "{:<34} {:>8} {:>7} {:>6} {:>6} {:>5} {:>6} {:>6} {:>8} {:>8}",
            "context",
            "ticks",
            "exceed",
            "fired",
            "clear",
            "diag",
            "sweep",
            "match",
            "swp_p50",
            "swp_p99"
        );
        let mut rows: Vec<&ScopeSnapshot> = self.contexts.iter().collect();
        rows.push(&self.total);
        for scope in rows {
            let _ = writeln!(
                out,
                "{:<34} {:>8} {:>7} {:>6} {:>6} {:>5} {:>6} {:>6} {:>7}µ {:>7}µ",
                scope.context,
                scope.ticks,
                scope.threshold_exceedances,
                scope.detections,
                scope.clears,
                scope.diagnoses,
                scope.sweeps,
                scope.matches_confident,
                scope.sweep_micros.quantile(0.5),
                scope.sweep_micros.quantile(0.99),
            );
        }
        if self.total.sweeps_degraded > 0
            || self.total.ticks_shed > 0
            || self.total.store_retries > 0
            || self.total.health_transitions > 0
        {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "resilience: {} degraded sweep(s), {} shed tick(s), {} store retry(ies), \
                 {} health transition(s), max queue depth {}",
                self.total.sweeps_degraded,
                self.total.ticks_shed,
                self.total.store_retries,
                self.total.health_transitions,
                self.total.queue_depth_max,
            );
        }
        if self.total.sweep_pairs_reused > 0
            || self.total.sweep_pairs_screened > 0
            || self.total.sweep_pairs_confirmed > 0
        {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "incremental sweeps: {} pair score(s) reused, {} screened, {} confirmed",
                self.total.sweep_pairs_reused,
                self.total.sweep_pairs_screened,
                self.total.sweep_pairs_confirmed,
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>9} {:>9} {:>9} {:>9}",
            "latency", "count", "p50", "p90", "p99", "max"
        );
        let latency_rows: [(&str, &HistogramSnapshot); 5] = [
            ("ingest (µs/tick)", &self.total.ingest_micros),
            ("sweep (µs)", &self.total.sweep_micros),
            ("diagnosis (µs)", &self.total.diagnosis_micros),
            ("pair score (ns)", &self.total.pair_score_nanos),
            ("rec append (ns)", &self.total.recorder_append_nanos),
        ];
        for (label, hist) in latency_rows {
            let _ = writeln!(
                out,
                "{:<20} {:>8} {:>9} {:>9} {:>9} {:>9}",
                label,
                hist.count,
                hist.quantile(0.5),
                hist.quantile(0.9),
                hist.quantile(0.99),
                hist.max,
            );
        }
        let timed: Vec<&PhaseSnapshot> =
            self.phases.iter().filter(|p| p.micros.count > 0).collect();
        if !timed.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "{:<20} {:>8} {:>9} {:>9} {:>9}",
                "phase (µs)", "spans", "p50", "p99", "max"
            );
            for phase in timed {
                let _ = writeln!(
                    out,
                    "{:<20} {:>8} {:>9} {:>9} {:>9}",
                    phase.phase,
                    phase.micros.count,
                    phase.micros.quantile(0.5),
                    phase.micros.quantile(0.99),
                    phase.micros.max,
                );
            }
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "recent spans (newest last):");
            for span in &self.spans {
                let _ = writeln!(
                    out,
                    "  #{:<6} {:<16} {:<34} {:>8} µs",
                    span.seq, span.phase, span.context, span.micros
                );
            }
        }
        out
    }
}

/// A named, documented series extractor: `(metric_name, help_text, getter)`.
type SeriesSpec<T> = (&'static str, &'static str, fn(&ScopeSnapshot) -> T);

/// Like [`SeriesSpec`], returning a borrowed histogram.
type HistogramSpec = (
    &'static str,
    &'static str,
    fn(&ScopeSnapshot) -> &HistogramSnapshot,
);

/// Escapes a Prometheus label value (`\`, `"`, newline).
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_histogram(out: &mut String, name: &str, context: &str, hist: &HistogramSnapshot) {
    let context = escape_label(context);
    let mut cumulative = 0u64;
    for (i, &n) in hist.buckets.iter().enumerate() {
        cumulative += n;
        // Skip interior empty prefixes? No — exposition needs every edge to
        // be monotone-complete, but identical consecutive cumulative counts
        // carry no information; keep only buckets up to the last non-empty
        // edge plus +Inf to bound output size.
        if n == 0 && cumulative == 0 {
            continue;
        }
        let edge = bucket_upper_edge(i);
        if edge == u64::MAX {
            continue; // folded into +Inf below
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{context=\"{context}\",le=\"{edge}\"}} {cumulative}"
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{{context=\"{context}\",le=\"+Inf\"}} {}",
        hist.count
    );
    let _ = writeln!(out, "{name}_sum{{context=\"{context}\"}} {}", hist.sum);
    let _ = writeln!(out, "{name}_count{{context=\"{context}\"}} {}", hist.count);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut a = ScopeSnapshot::empty("W@n1".into());
        a.ticks = 120;
        a.detections = 2;
        a.diagnoses = 1;
        a.sweeps = 3;
        a.pairs_scored = 975;
        a.last_residual = 0.25;
        a.max_residual = 1.5;
        a.sweep_micros.buckets[11] = 3;
        a.sweep_micros.count = 3;
        a.sweep_micros.sum = 4200;
        a.sweep_micros.max = 1500;
        let mut total = ScopeSnapshot::empty("(all)".into());
        total.merge(&a);
        TelemetrySnapshot {
            contexts: vec![a],
            total,
            phases: vec![PhaseSnapshot {
                phase: "sweep".into(),
                micros: HistogramSnapshot {
                    buckets: {
                        let mut b = vec![0u64; 32];
                        b[11] = 3;
                        b
                    },
                    count: 3,
                    sum: 4200,
                    max: 1500,
                },
            }],
            spans: vec![SpanSnapshot {
                seq: 1,
                phase: "sweep".into(),
                context: "W@n1".into(),
                micros: 1500,
            }],
        }
    }

    #[test]
    fn json_roundtrips_bit_identically() {
        let snap = sample_snapshot();
        let json = snap.to_json().unwrap();
        let back = TelemetrySnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        // And the rendered outputs agree between original and round-trip.
        assert_eq!(back.render_prometheus(), snap.render_prometheus());
        assert_eq!(back.render_report(), snap.render_report());
    }

    #[test]
    fn prometheus_text_has_expected_series() {
        let text = sample_snapshot().render_prometheus();
        assert!(text.contains("invarnet_ticks_ingested_total{context=\"W@n1\"} 120"));
        assert!(text.contains("invarnet_sweeps_total{context=\"W@n1\"} 3"));
        assert!(text.contains("invarnet_sweep_micros_bucket{context=\"W@n1\",le=\"+Inf\"} 3"));
        assert!(text.contains("invarnet_sweep_micros_sum{context=\"W@n1\"} 4200"));
        assert!(text.contains("invarnet_last_residual{context=\"W@n1\"} 0.25"));
    }

    #[test]
    fn report_prints_context_and_quantiles() {
        let report = sample_snapshot().render_report();
        assert!(report.contains("W@n1"));
        assert!(report.contains("(all)"));
        assert!(report.contains("sweep"));
    }

    #[test]
    fn history_recording_series_are_exported() {
        let mut snap = sample_snapshot();
        snap.contexts[0].history_rows_recorded = 600;
        snap.contexts[0].history_segments = 2;
        snap.contexts[0].recorder_append_nanos.buckets = vec![0u64; 32];
        snap.contexts[0].recorder_append_nanos.buckets[7] = 600;
        snap.contexts[0].recorder_append_nanos.count = 600;
        snap.contexts[0].recorder_append_nanos.sum = 72_000;
        snap.contexts[0].recorder_append_nanos.max = 380;
        snap.total = ScopeSnapshot::empty("(all)".into());
        let scope = snap.contexts[0].clone();
        snap.total.merge(&scope);
        let text = snap.render_prometheus();
        assert!(text.contains("invarnet_history_rows_recorded_total{context=\"W@n1\"} 600"));
        assert!(text.contains("invarnet_history_segments{context=\"W@n1\"} 2"));
        assert!(text.contains("invarnet_recorder_append_nanos_count{context=\"W@n1\"} 600"));
        assert!(text.contains("invarnet_recorder_append_nanos_sum{context=\"W@n1\"} 72000"));
        let report = snap.render_report();
        assert!(report.contains("rec append (ns)"));
        // The JSON round-trip carries the new fields bit-exactly.
        let back = TelemetrySnapshot::from_json(&snap.to_json().unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn labels_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn resilience_series_and_report_line() {
        let mut snap = sample_snapshot();
        snap.contexts[0].sweeps_degraded = 2;
        snap.contexts[0].ticks_shed = 5;
        snap.contexts[0].queue_depth_max = 7;
        snap.total = ScopeSnapshot::empty("(all)".into());
        let scope = snap.contexts[0].clone();
        snap.total.merge(&scope);
        let text = snap.render_prometheus();
        assert!(text.contains("invarnet_sweep_degraded_total{context=\"W@n1\"} 2"));
        assert!(text.contains("invarnet_ticks_shed_total{context=\"W@n1\"} 5"));
        assert!(text.contains("invarnet_queue_depth_max{context=\"W@n1\"} 7"));
        assert!(text.contains("invarnet_store_retries_total{context=\"W@n1\"} 0"));
        let report = snap.render_report();
        assert!(report.contains("resilience: 2 degraded sweep(s), 5 shed tick(s)"));
        assert!(report.contains("max queue depth 7"));
        // Quiet engines don't print the resilience line at all.
        assert!(!sample_snapshot().render_report().contains("resilience:"));
    }
}
