//! The ingest layer: tick-at-a-time streaming entry point.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use ix_metrics::MetricFrame;

use crate::anomaly::DetectionResult;
use crate::context::OperationContext;
use crate::error::CoreError;
use crate::invariants::InvariantSet;

use super::diagnosis::Diagnosis;
use super::events::EngineEvent;
use super::telemetry::{EnginePhase, Span};
use super::Engine;

/// What [`Engine::ingest`] concluded about one tick.
#[derive(Debug)]
pub struct TickOutcome {
    /// Zero-based index of this tick within the current run.
    pub tick: usize,
    /// The detector's per-tick score (see
    /// [`super::detector::TickDecision::residual`]).
    pub residual: f64,
    /// Whether the score exceeded the detector's threshold.
    pub exceeded: bool,
    /// Whether the detector reports a performance problem at this tick.
    pub anomalous: bool,
    /// Cause inference over the sliding window, run on the *onset* of an
    /// anomaly (edge-triggered) once the window holds at least
    /// `min_frame_ticks` ticks.
    pub diagnosis: Option<Diagnosis>,
}

/// Work the ingest path defers until after the shard lock is released.
struct DeferredDiagnosis {
    window: DeferredWindow,
    invariants: Arc<InvariantSet>,
}

/// The abnormal window, snapshotted *under the shard lock* so concurrent
/// ingest of the same context (or a concurrent reset) between lock
/// release and diagnosis cannot shift it.
enum DeferredWindow {
    /// A copy of the sliding window, taken when no recorder can serve
    /// history-backed windows.
    Frame(MetricFrame),
    /// The exact history row range of the window at the triggering tick.
    /// History is append-only, so the range keeps naming the same rows —
    /// and materializes bit-identically — after the lock drops.
    HistoryRows(std::ops::Range<usize>),
}

impl Engine {
    /// Ingests one tick for `context`: the CPI sample feeds the streaming
    /// detector, the metric row feeds the sliding window, and on the onset
    /// of an anomaly (anomalous now, not at the previous tick) cause
    /// inference runs over the window.
    ///
    /// Diagnosis is skipped — not failed — when the window holds fewer
    /// than `min_frame_ticks` ticks: association estimates over a near-empty
    /// window would be meaningless. The shard lock is held only for the
    /// detector step and window push; the association sweep and signature
    /// search run after it is released, so slow diagnoses never block
    /// ingestion of other contexts (or of this context from other threads).
    ///
    /// # Errors
    ///
    /// - [`CoreError::NoPerformanceModel`] — [`Engine::train_performance_model`]
    ///   has not run for this context;
    /// - [`CoreError::Frame`] — the metric row has the wrong width or
    ///   non-finite values (the tick is rejected without mutating state);
    /// - [`CoreError::NoInvariants`] / signature errors — an anomaly onset
    ///   triggered diagnosis but the offline state is missing;
    /// - [`CoreError::HistoryWindow`] — the attached recorder failed to
    ///   serve the window rows it promised under the shard lock.
    pub fn ingest(
        &self,
        context: &OperationContext,
        cpi_sample: f64,
        metric_row: &[f64],
    ) -> Result<TickOutcome, CoreError> {
        let min_frame_ticks = self.config().min_frame_ticks;
        let window_ticks = self.config().window_ticks;
        let context_id = self.intern_context(context);
        // lint: allow(determinism, telemetry-only: ingest micros feed span
        // events; replay normalizes all recorded timings)
        let ingest_started = Instant::now();
        let (tick, lifetime_tick, decision, up_edge, down_edge, deferred, append_nanos) =
            self.state().with_mut(context, window_ticks, |state| {
                let Some(detector) = state.detector.clone() else {
                    return Err(CoreError::NoPerformanceModel(context.clone()));
                };
                state.window.push_tick(metric_row)?;
                let run = state.run.get_or_insert_with(|| detector.begin_run());
                let decision = run.step(cpi_sample);
                let tick = state.run_ticks;
                state.run_ticks += 1;
                // ordering: Relaxed — the lifetime tick is a monotone
                // ticket; atomicity of fetch_add gives uniqueness, and
                // per-context state is serialized by the shard lock.
                let lifetime_tick = self.tick_counter().fetch_add(1, Ordering::Relaxed);
                // Record under the shard lock so history rows land in
                // exactly the order the sliding window saw them — the
                // contract behind history-served diagnosis windows. The
                // append is timed only when telemetry wants the cost
                // histogram; the scope update itself happens after the
                // lock drops.
                let append_nanos = if let Some(recorder) = self.recorder() {
                    let timed = self.telemetry().is_some();
                    // lint: allow(determinism, telemetry-only: append nanos
                    // feed the recorder histogram, never engine results)
                    let append_started = timed.then(Instant::now);
                    recorder.record_tick(
                        context_id,
                        lifetime_tick,
                        cpi_sample,
                        decision.residual,
                        decision.exceeded,
                        metric_row,
                    );
                    append_started.map(|t| t.elapsed().as_nanos() as u64)
                } else {
                    None
                };
                let up_edge = decision.anomalous && !state.prev_anomalous;
                let down_edge = !decision.anomalous && state.prev_anomalous;
                state.prev_anomalous = decision.anomalous;
                let deferred = if up_edge && state.window.ticks() >= min_frame_ticks {
                    let invariants = state
                        .invariants
                        .clone()
                        .ok_or_else(|| CoreError::NoInvariants(context.clone()))?;
                    // Snapshot the window while the shard lock still
                    // serializes this context: a recorder that serves
                    // windows yields the row range the tick above just
                    // closed; otherwise copy the sliding window itself.
                    let window = self
                        .recorder()
                        .and_then(|r| r.window_rows(context_id, window_ticks))
                        .map(DeferredWindow::HistoryRows)
                        .unwrap_or_else(|| DeferredWindow::Frame(state.window.to_frame()));
                    Some(DeferredDiagnosis { window, invariants })
                } else {
                    None
                };
                Ok((
                    tick,
                    lifetime_tick,
                    decision,
                    up_edge,
                    down_edge,
                    deferred,
                    append_nanos,
                ))
            })?;

        // Attribute the recorder-append cost to the context's telemetry
        // scope — outside the shard lock, so metrics bookkeeping never
        // extends the ingest critical section.
        if let Some(nanos) = append_nanos {
            if let (Some(telemetry), Some(recorder)) = (self.telemetry(), self.recorder()) {
                telemetry
                    .metrics()
                    .scope(context_id)
                    .record_history_append(nanos, recorder.segment_count(context_id));
            }
        }

        self.sink().record(&EngineEvent::TickIngested {
            context: context_id,
            tick: lifetime_tick,
            residual: decision.residual,
            exceeded: decision.exceeded,
            micros: ingest_started.elapsed().as_micros() as u64,
        });
        if up_edge {
            self.sink().record(&EngineEvent::DetectionFired {
                context: context_id,
                tick: lifetime_tick,
            });
        }
        if down_edge {
            self.sink().record(&EngineEvent::DetectionCleared {
                context: context_id,
                tick: lifetime_tick,
            });
        }

        let diagnosis = match deferred {
            Some(DeferredDiagnosis { window, invariants }) => {
                let _span = Span::enter(self.sink(), EnginePhase::Diagnosis, context_id);
                // lint: allow(determinism, telemetry-only: diagnosis micros
                // feed a DiagnosisReady event; replay normalizes timings)
                let started = Instant::now();
                // Materialize the in-lock snapshot: either the frame copy
                // itself, or the captured history rows — which resolve to
                // the same values no matter what was ingested since. A
                // recorder that cannot serve rows it promised is an
                // error, never a silently empty window.
                let frame = match window {
                    DeferredWindow::Frame(frame) => frame,
                    DeferredWindow::HistoryRows(rows) => self
                        .recorder()
                        .and_then(|r| r.frame_rows(context_id, rows))
                        .ok_or_else(|| CoreError::HistoryWindow(context.clone()))?,
                };
                let verdict = self.diagnosis_matrix_for(
                    context_id,
                    &frame,
                    self.config().sweep_budget,
                    &invariants,
                )?;
                let tuple = verdict.violation_tuple(&invariants, self.config().epsilon);
                let mut diagnosis = self.rank_tuple(context, tuple)?;
                diagnosis.degradation = verdict.degradation;
                self.sink().record(&EngineEvent::DiagnosisRan {
                    context: context_id,
                    tick: lifetime_tick,
                    micros: started.elapsed().as_micros() as u64,
                });
                self.emit_signature_match(context_id, lifetime_tick, &diagnosis);
                self.record_diagnosis_history(context_id, lifetime_tick, &verdict, &diagnosis);
                Some(diagnosis)
            }
            None => None,
        };

        Ok(TickOutcome {
            tick,
            residual: decision.residual,
            exceeded: decision.exceeded,
            anomalous: decision.anomalous,
            diagnosis,
        })
    }

    /// Discards the in-flight detector run and sliding window of a context
    /// (call at the start of a new job execution).
    pub fn reset_run(&self, context: &OperationContext) {
        self.state().with_existing_mut(context, |s| s.reset_run());
        self.note_run_reset(context);
    }

    /// Rebuilds a context's in-flight run from a recorded tail of
    /// `(cpi, metric_row)` ticks: the sliding window, the streaming
    /// detector's run state and the anomaly edge-tracker end up exactly as
    /// if the ticks had been ingested live. Unlike [`Engine::ingest`] this
    /// emits no events, appends nothing to an attached recorder, and does
    /// not advance the lifetime tick counter — it restores state that was
    /// already counted once, so a warmed engine continues bit-identically
    /// to one that was never torn down (pair with
    /// [`EngineBuilder::lifetime_ticks`] to restore the counter itself).
    ///
    /// # Errors
    ///
    /// - [`CoreError::NoPerformanceModel`] — the context has no detector
    ///   (restore trained state first, e.g. via [`Engine::load_state`]);
    /// - [`CoreError::Frame`] — a tail row has the wrong width or
    ///   non-finite values.
    pub fn restore_run(
        &self,
        context: &OperationContext,
        tail: &[(f64, Vec<f64>)],
    ) -> Result<(), CoreError> {
        let window_ticks = self.config().window_ticks;
        self.state().with_mut(context, window_ticks, |state| {
            let Some(detector) = state.detector.clone() else {
                return Err(CoreError::NoPerformanceModel(context.clone()));
            };
            state.reset_run();
            for (cpi, row) in tail {
                state.window.push_tick(row)?;
                let run = state.run.get_or_insert_with(|| detector.begin_run());
                let decision = run.step(*cpi);
                state.prev_anomalous = decision.anomalous;
                state.run_ticks += 1;
            }
            Ok(())
        })
    }

    /// The batch-shaped detection result accumulated by the current run,
    /// if a run is in flight.
    pub fn detection_result(&self, context: &OperationContext) -> Option<DetectionResult> {
        self.state()
            .with(context, |s| s.run.as_ref().map(|r| r.result()))
            .flatten()
    }

    /// A batch copy of the context's current sliding window.
    pub fn window_frame(&self, context: &OperationContext) -> Option<MetricFrame> {
        self.state().with(context, |s| s.window.to_frame())
    }
}
