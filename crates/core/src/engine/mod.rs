//! The layered streaming diagnosis engine.
//!
//! [`Engine`] splits the original monolithic facade into explicit layers:
//!
//! - **ingest** ([`Engine::ingest`]) — one CPI sample + one metric row per
//!   tick, buffered in a per-context [`ix_metrics::SlidingFrame`];
//! - **detection** ([`detector`]) — a pluggable streaming [`Detector`]
//!   (ARIMA residuals or CUSUM, selected by
//!   [`crate::config::DetectorChoice`]);
//! - **state** ([`state`]) — per-context state sharded across `N` locks so
//!   concurrent contexts don't contend;
//! - **diagnosis** ([`diagnosis`]) — invariant violation tuples matched
//!   against the signature database, with association sweeps on a
//!   persistent [`SweepPool`];
//! - **events** ([`events`]) — counters and timings through a pluggable
//!   [`EventSink`];
//! - **recording** ([`recorder`]) — an optional append-only history sink
//!   ([`HistoryRecorder`], attach with [`EngineBuilder::history`]) that
//!   observes tick rows, events, sweep scores and diagnoses, and can serve
//!   diagnosis windows back to the engine;
//! - **telemetry** ([`telemetry`]) — the full observability stack on top of
//!   the events: context-attributed metrics, phase spans, and Prometheus /
//!   JSON / report exporters (attach with [`EngineBuilder::telemetry`]).
//!
//! The original [`crate::InvarNetX`] facade remains as a thin wrapper for
//! batch (whole-trace) use.

mod builder;
pub mod detector;
pub mod diagnosis;
pub mod events;
mod ingest;
pub mod inspect;
pub mod recorder;
pub mod resilience;
mod state;
mod sweep_cache;
pub mod telemetry;
mod wire;

use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

use ix_metrics::{MetricFrame, MetricId, METRIC_COUNT};

use crate::anomaly::{DetectionResult, PerformanceModel};
use crate::assoc::{pair_count, pair_index, AssociationMatrix, SweepPool};
use crate::config::{DetectorChoice, InvarNetConfig};
use crate::context::OperationContext;
use crate::cusum::CusumDetector;
use crate::error::CoreError;
use crate::incremental::{AdvanceOutcome, IncrementalSweep};
use crate::invariants::InvariantSet;
use crate::measure::{AssociationMeasure, MicMeasure, PearsonMeasure};
use crate::signature::{Signature, SignatureDatabase, ViolationTuple};

pub use builder::EngineBuilder;
pub use detector::{ArimaDetector, CusumStreamDetector, Detector, DetectorRun, TickDecision};
pub use diagnosis::{Diagnosis, RankedCause};
pub use events::{EngineCounters, EngineEvent, EventSink, NullSink};
pub use ingest::TickOutcome;
pub use inspect::{ContextStateSnapshot, EngineInspector};
pub use recorder::{HistoryRecorder, NullRecorder};
pub use telemetry::Telemetry;

use recorder::RecorderTee;

use resilience::{
    DegradationReason, DegradationTier, HealthMonitor, IngestQueue, SweepBudget,
    SweepCostPredictor, SweepDegradation,
};
use state::ShardedStateMap;
use sweep_cache::SweepCache;
use telemetry::{ContextId, ContextRegistry, EnginePhase, Span, CONFIDENT_SIMILARITY};

/// The streaming diagnosis engine. All methods take `&self`; state lives
/// behind sharded locks, so one engine can be shared across ingestion
/// threads.
pub struct Engine {
    config: InvarNetConfig,
    measure: Arc<dyn AssociationMeasure>,
    /// The degradation ladder's tier-2 measure: a full sweep under a
    /// cheap, always-available score (Pearson).
    fallback: Arc<dyn AssociationMeasure>,
    state: ShardedStateMap,
    signatures: RwLock<SignatureDatabase>,
    /// The sweep worker pool. Shared (`Arc`) so a fleet of tenant engines
    /// can run on one pool sized to the box instead of spawning worker
    /// threads per engine (see [`EngineBuilder::shared_pool`]).
    pool: Arc<SweepPool>,
    sweep_cache: SweepCache,
    sink: Arc<dyn EventSink>,
    /// The attached history recorder, if any (see [`EngineBuilder::history`]).
    recorder: Option<Arc<dyn HistoryRecorder>>,
    /// The attached telemetry hub, if any — kept alongside the sink so the
    /// ingest path can attribute recorder-append costs to context scopes
    /// without downcasting the sink.
    telemetry: Option<Arc<Telemetry>>,
    contexts: Arc<ContextRegistry>,
    ticks: AtomicU64,
    health: HealthMonitor,
    queue: IngestQueue,
    /// EWMA estimates of full and incremental sweep cost, consulted to
    /// predict budget overruns before burning wall-clock on a doomed
    /// sweep (and to probe out of a stale over-budget estimate).
    sweep_cost: SweepCostPredictor,
    /// Per-context incremental sweep state: the delta-maintained plan and
    /// score cache [`Engine::diagnosis_matrix_for`] advances instead of
    /// re-sweeping from scratch when consecutive diagnosis windows slide.
    incremental: Mutex<HashMap<ContextId, IncrementalSweep>>,
}

impl Engine {
    /// An engine with the default MIC measure.
    pub fn new(config: InvarNetConfig) -> Self {
        let mic = MicMeasure::new(config.mic);
        Self::with_measure(config, Arc::new(mic))
    }

    /// Starts an [`EngineBuilder`] — the preferred way to assemble a
    /// configured engine in one expression.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// An engine with an explicit association measure (e.g. the ARX
    /// baseline).
    pub fn with_measure(config: InvarNetConfig, measure: Arc<dyn AssociationMeasure>) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
        let shards = config.state_shards;
        let sweep_cache = SweepCache::new(config.sweep_cache_entries);
        let queue = IngestQueue::new(
            shards,
            config.ingest_queue_ticks,
            config.consecutive_anomalies,
            config.overload,
        );
        Engine {
            config,
            measure,
            fallback: Arc::new(PearsonMeasure),
            state: ShardedStateMap::new(shards),
            signatures: RwLock::new(SignatureDatabase::new()),
            pool: Arc::new(SweepPool::new(threads)),
            sweep_cache,
            sink: Arc::new(NullSink),
            recorder: None,
            telemetry: None,
            contexts: Arc::new(ContextRegistry::new()),
            ticks: AtomicU64::new(0),
            health: HealthMonitor::new(),
            queue,
            sweep_cost: SweepCostPredictor::new(),
            incremental: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn set_threads_internal(&mut self, threads: usize) {
        self.pool = Arc::new(SweepPool::new(threads));
    }

    pub(crate) fn set_shared_pool_internal(&mut self, pool: Arc<SweepPool>) {
        self.pool = pool;
    }

    pub(crate) fn set_lifetime_ticks_internal(&mut self, ticks: u64) {
        self.ticks = AtomicU64::new(ticks);
    }

    /// The sweep pool this engine runs on (share it across engines with
    /// [`EngineBuilder::shared_pool`]).
    pub fn sweep_pool(&self) -> Arc<SweepPool> {
        Arc::clone(&self.pool)
    }

    /// The engine-wide lifetime tick counter: how many ticks have ever
    /// been ingested (the label the *next* tick will take). Seed a fresh
    /// engine to continue an old one's numbering with
    /// [`EngineBuilder::lifetime_ticks`].
    pub fn lifetime_ticks(&self) -> u64 {
        // ordering: Relaxed — a monotone counter read for snapshots; the
        // caller serializes against ingest externally when exactness
        // matters (e.g. fleet eviction quiesces the tenant first).
        self.ticks.load(std::sync::atomic::Ordering::Relaxed)
    }

    pub(crate) fn set_event_sink_internal(&mut self, sink: Arc<dyn EventSink>) {
        self.sink = sink;
    }

    pub(crate) fn attach_telemetry_internal(&mut self, telemetry: &Arc<Telemetry>) {
        self.contexts = Arc::clone(telemetry.contexts());
        self.sink = Arc::<Telemetry>::clone(telemetry);
        self.telemetry = Some(Arc::clone(telemetry));
    }

    /// Fans the event stream out to extra sinks behind the primary one
    /// (see [`EngineBuilder::extra_sink`]). Must run after the
    /// sink/telemetry wiring and before the history tee, so the recorder
    /// still observes the identical stream.
    pub(crate) fn attach_extra_sinks_internal(&mut self, extras: Vec<Arc<dyn EventSink>>) {
        if extras.is_empty() {
            return;
        }
        self.sink = Arc::new(events::FanOutSink::new(Arc::clone(&self.sink), extras));
    }

    /// The attached telemetry hub, if any.
    pub(crate) fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Attaches a history recorder: the recorder is teed behind the event
    /// sink (it observes the identical event stream), receives tick rows,
    /// sweep scores and diagnoses first-class, and — when it can serve
    /// windows back — becomes the source of diagnosis frames. Must run
    /// after the sink/telemetry wiring so the tee wraps the final sink.
    pub(crate) fn attach_history_internal(&mut self, recorder: Arc<dyn HistoryRecorder>) {
        recorder.bind_registry(&self.contexts);
        self.sink = Arc::new(RecorderTee::new(
            Arc::clone(&self.sink),
            Arc::clone(&recorder),
        ));
        self.recorder = Some(recorder);
    }

    /// The attached history recorder, if any.
    pub(crate) fn recorder(&self) -> Option<&Arc<dyn HistoryRecorder>> {
        self.recorder.as_ref()
    }

    /// Whether a history recorder is attached.
    pub fn has_history(&self) -> bool {
        self.recorder.is_some()
    }

    /// The registry the engine interns [`crate::OperationContext`]s into.
    pub fn context_registry(&self) -> &Arc<ContextRegistry> {
        &self.contexts
    }

    pub(crate) fn intern_context(&self, context: &OperationContext) -> ContextId {
        self.contexts.intern(context)
    }

    /// The configuration.
    pub fn config(&self) -> &InvarNetConfig {
        &self.config
    }

    /// The association measure's name ("MIC" / "ARX" / ...).
    pub fn measure_name(&self) -> &'static str {
        self.measure.name()
    }

    /// Number of sweep workers.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Number of state shards.
    pub fn state_shards(&self) -> usize {
        self.state.shard_count()
    }

    pub(crate) fn sink(&self) -> &Arc<dyn EventSink> {
        &self.sink
    }

    pub(crate) fn state(&self) -> &ShardedStateMap {
        &self.state
    }

    pub(crate) fn tick_counter(&self) -> &AtomicU64 {
        &self.ticks
    }

    pub(crate) fn health_monitor(&self) -> &HealthMonitor {
        &self.health
    }

    pub(crate) fn ingest_queue(&self) -> &IngestQueue {
        &self.queue
    }

    // ------------------------------------------------------- offline part

    /// Trains the per-context performance model on N normal CPI traces and
    /// instantiates the configured streaming detector (ARIMA, or CUSUM
    /// calibrated on the same traces).
    ///
    /// # Errors
    ///
    /// Propagates training errors ([`CoreError::NotEnoughRuns`], ARIMA
    /// failures).
    pub fn train_performance_model(
        &self,
        context: OperationContext,
        cpi_traces: &[Vec<f64>],
    ) -> Result<(), CoreError> {
        let id = self.intern_context(&context);
        let _span = Span::enter(&self.sink, EnginePhase::Train, id);
        let model = Arc::new(PerformanceModel::train(cpi_traces, self.config.beta)?);
        let detector: Arc<dyn Detector> = match self.config.detector {
            DetectorChoice::Arima => Arc::new(ArimaDetector::new(
                Arc::clone(&model),
                self.config.threshold_rule,
                self.config.consecutive_anomalies,
            )),
            DetectorChoice::Cusum { k, h } => Arc::new(CusumStreamDetector::new(
                CusumDetector::train(cpi_traces, k, h)?,
            )),
        };
        self.state
            .with_mut(&context, self.config.window_ticks, |s| {
                s.perf_model = Some(model);
                s.detector = Some(detector);
                s.reset_run();
            });
        self.note_run_reset(&context);
        Ok(())
    }

    /// Computes the pairwise association matrix of one frame under the
    /// configured measure, on the persistent worker pool.
    ///
    /// # Errors
    ///
    /// [`CoreError::FrameTooShort`] when the frame has too few ticks.
    pub fn association_matrix(&self, frame: &MetricFrame) -> Result<AssociationMatrix, CoreError> {
        self.association_matrix_for(ContextId::UNATTRIBUTED, frame)
    }

    /// [`Engine::association_matrix`] with the sweep attributed to an
    /// interned context (internal callers that know whose window this is).
    pub(crate) fn association_matrix_for(
        &self,
        context: ContextId,
        frame: &MetricFrame,
    ) -> Result<AssociationMatrix, CoreError> {
        self.budgeted_matrix_for(context, frame, SweepBudget::UNLIMITED)
            .map(|verdict| verdict.matrix)
    }

    /// The budget-aware sweep: full fidelity when the budget allows,
    /// otherwise the first answer a declared degradation ladder can give —
    /// stale cached matrix, full Pearson sweep, or a partial matrix over
    /// the highest-variance metrics. Every degraded outcome is reported as
    /// [`EngineEvent::SweepDegraded`]; the verdict says exactly which tier
    /// answered, so no caller can mistake a degraded matrix for a full
    /// one.
    pub(crate) fn budgeted_matrix_for(
        &self,
        context: ContextId,
        frame: &MetricFrame,
        budget: SweepBudget,
    ) -> Result<SweepVerdict, CoreError> {
        if frame.ticks() < self.config.min_frame_ticks {
            return Err(CoreError::FrameTooShort {
                required: self.config.min_frame_ticks,
                got: frame.ticks(),
            });
        }
        // The matrix is a pure function of the frame's values under this
        // engine's fixed measure, so an unchanged window (a re-diagnosed
        // sliding window, `violation_tuple` + `record_signature` on one
        // frame) is served from the MRU cache bit-for-bit — full fidelity
        // at zero cost, whatever the budget.
        if self.sweep_cache.is_enabled() {
            if let Some(matrix) = self.sweep_cache.get(frame.values()) {
                self.sink
                    .record(&EngineEvent::SweepCacheLookup { context, hit: true });
                self.note_health_ok(context);
                return Ok(SweepVerdict::full(matrix));
            }
            self.sink.record(&EngineEvent::SweepCacheLookup {
                context,
                hit: false,
            });
        }
        // A pair budget below the full pair population can never be met by
        // a full sweep under any measure: degrade without trying (and
        // without the Pearson tier, which scores every pair too).
        if budget.max_pairs.is_some_and(|max| max < pair_count()) {
            return Ok(self.degrade(
                context,
                frame,
                budget,
                DegradationReason::PairBudgetExceeded,
                false,
            ));
        }
        // When past full sweeps averaged longer than the wall budget,
        // predict the overrun instead of paying for it — except for the
        // periodic probe that keeps the estimate honest: a skipped sweep
        // produces no sample, so without probes a stale over-budget
        // estimate would pin the engine in the degraded tier forever.
        if let Some(wall) = budget.wall {
            let predicted = self.sweep_cost.predicted_full_micros();
            if predicted > 0
                && Duration::from_micros(predicted) > wall
                && !self.sweep_cost.note_skipped_should_probe()
            {
                return Ok(self.degrade(
                    context,
                    frame,
                    budget,
                    DegradationReason::PredictedOverrun,
                    true,
                ));
            }
        }
        // lint: allow(determinism, telemetry-only: sweep micros feed a
        // SweepCompleted event; replay normalizes all recorded timings)
        let started = Instant::now();
        let bounded = {
            let _span = Span::enter(&self.sink, EnginePhase::Sweep, context);
            self.pool.sweep_bounded(
                frame,
                &self.measure,
                context,
                &self.sink,
                budget.deadline(started),
            )
        };
        if !bounded.completed {
            // The abandoned sweep still cost its deadline's worth of
            // wall-clock; fold that in so the estimate converges upward
            // even when full sweeps never complete.
            self.sweep_cost
                .observe_full(started.elapsed().as_micros() as u64);
            return Ok(self.degrade(
                context,
                frame,
                budget,
                DegradationReason::WallClockExceeded,
                true,
            ));
        }
        let micros = started.elapsed().as_micros() as u64;
        self.sink.record(&EngineEvent::SweepCompleted {
            context,
            pairs: pair_count(),
            micros,
        });
        self.sweep_cost.observe_full(micros);
        self.sweep_cache
            .insert(context, frame.values(), bounded.matrix.clone());
        self.note_health_ok(context);
        Ok(SweepVerdict::full(bounded.matrix))
    }

    /// The diagnosis-path sweep: [`Engine::budgeted_matrix_for`] fronted
    /// by per-context incremental state. When the context's previous
    /// window is alive and the new window is a bounded forward slide of
    /// it, the sweep is answered by delta: profiles slide in place, clean
    /// pair scores are reused verbatim, and stale invariant pairs go
    /// through the screen-then-confirm pass ([`IncrementalSweep::rescore`])
    /// — the violation tuple built from the result is bit-identical to a
    /// full from-scratch sweep's. Otherwise the full budgeted path runs
    /// and (when it answers at full fidelity) reseeds the state.
    pub(crate) fn diagnosis_matrix_for(
        &self,
        context: ContextId,
        frame: &MetricFrame,
        budget: SweepBudget,
        invariants: &InvariantSet,
    ) -> Result<SweepVerdict, CoreError> {
        if frame.ticks() < self.config.min_frame_ticks {
            return Err(CoreError::FrameTooShort {
                required: self.config.min_frame_ticks,
                got: frame.ticks(),
            });
        }
        let series: Vec<Vec<f64>> = MetricId::ALL.iter().map(|&m| frame.series(m)).collect();
        let state = self
            .incremental
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&context);
        let mut reseed = true;
        if let Some(mut state) = state {
            // Compose with the budget ladder: when even the incremental
            // pass is predicted over the wall budget, keep the (untouched)
            // state for a roomier window and let the ladder answer.
            let predicted = self.sweep_cost.predicted_incremental_micros();
            let over_wall = budget
                .wall
                .is_some_and(|wall| predicted > 0 && Duration::from_micros(predicted) > wall);
            if over_wall {
                self.put_incremental(context, state);
                reseed = false;
            } else {
                match state.advance(&series) {
                    AdvanceOutcome::Identical => {
                        // Nothing moved: the sweep cache serves this window
                        // bit-for-bit below; the state stays valid.
                        self.put_incremental(context, state);
                        reseed = false;
                    }
                    AdvanceOutcome::Advanced { .. } => {
                        // lint: allow(determinism, telemetry-only: screen
                        // micros feed events; replay normalizes timings)
                        let started = Instant::now();
                        let outcome = {
                            let _span = Span::enter(&self.sink, EnginePhase::Screen, context);
                            state.rescore(invariants, self.config.epsilon)
                        };
                        let micros = started.elapsed().as_micros() as u64;
                        let matrix = state.matrix();
                        self.sink.record(&EngineEvent::SweepScreened {
                            context,
                            reused: outcome.reused,
                            screened: outcome.screened,
                            confirmed: outcome.confirmed,
                        });
                        self.sink.record(&EngineEvent::SweepCompleted {
                            context,
                            pairs: outcome.confirmed,
                            micros,
                        });
                        self.sweep_cost.observe_incremental(micros);
                        self.note_health_ok(context);
                        self.put_incremental(context, state);
                        return Ok(SweepVerdict::full(matrix));
                    }
                    // The state is spent (window jumped, or a profile
                    // refused to slide): fall through to the full path,
                    // which reseeds.
                    AdvanceOutcome::Unsupported => {}
                }
            }
        }
        let verdict = self.budgeted_matrix_for(context, frame, budget)?;
        if reseed && verdict.degradation.is_none() {
            // Only a full-fidelity matrix may seed the score cache —
            // degraded tiers score under a different measure (or not at
            // all), and the soundness contract starts from exact scores.
            if let Some(state) = IncrementalSweep::seed(
                &self.measure,
                &self.pool,
                series,
                verdict.matrix.scores().to_vec(),
            ) {
                self.put_incremental(context, state);
            }
        }
        Ok(verdict)
    }

    /// Stores `state` as `context`'s live incremental sweep state.
    fn put_incremental(&self, context: ContextId, state: IncrementalSweep) {
        self.incremental
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(context, state);
    }

    /// Walks the degradation ladder until a tier produces a matrix. Tier 3
    /// always succeeds, so this function always returns a degraded — never
    /// silently absent — verdict.
    fn degrade(
        &self,
        context: ContextId,
        frame: &MetricFrame,
        budget: SweepBudget,
        reason: DegradationReason,
        allow_pearson: bool,
    ) -> SweepVerdict {
        // Tier 1: the last full-fidelity matrix computed from *this
        // context's* window — stale, but structurally sound.
        if let Some(matrix) = self.sweep_cache.most_recent_for(context) {
            let degradation = SweepDegradation {
                tier: DegradationTier::CachedMatrix,
                reason,
            };
            self.note_degradation(context, degradation.tier, reason);
            return SweepVerdict {
                matrix,
                degradation: Some(degradation),
                scored: None,
            };
        }
        // Tier 2: a full sweep under the cheap Pearson fallback, granted a
        // fresh wall budget of its own. Skipped when the pair budget rules
        // out any full sweep.
        if allow_pearson {
            // lint: allow(determinism, telemetry-only: fallback-sweep micros
            // feed a SweepCompleted event; replay normalizes timings)
            let started = Instant::now();
            let bounded = {
                let _span = Span::enter(&self.sink, EnginePhase::Sweep, context);
                self.pool.sweep_bounded(
                    frame,
                    &self.fallback,
                    context,
                    &self.sink,
                    budget.deadline(started),
                )
            };
            if bounded.completed {
                let degradation = SweepDegradation {
                    tier: DegradationTier::PearsonFallback,
                    reason,
                };
                self.note_degradation(context, degradation.tier, reason);
                return SweepVerdict {
                    matrix: bounded.matrix,
                    degradation: Some(degradation),
                    scored: None,
                };
            }
        }
        // Tier 3: a partial Pearson matrix over the highest-variance
        // metrics — bounded work, always completes.
        let (matrix, scored) = self.partial_matrix(frame, budget);
        let degradation = SweepDegradation {
            tier: DegradationTier::PartialMatrix,
            reason,
        };
        self.note_degradation(context, degradation.tier, reason);
        SweepVerdict {
            matrix,
            degradation: Some(degradation),
            scored: Some(scored),
        }
    }

    /// The ladder's last resort: Pearson scores for the pairs among the
    /// `k` highest-variance metrics, where `k(k-1)/2` fits the pair
    /// budget. Returns the matrix (unscored pairs hold `0.0`) and the
    /// scored mask — diagnosis masks unscored pairs out of the violation
    /// tuple rather than reading the placeholder zeros as evidence.
    fn partial_matrix(
        &self,
        frame: &MetricFrame,
        budget: SweepBudget,
    ) -> (AssociationMatrix, Vec<bool>) {
        const DEFAULT_PARTIAL_PAIRS: usize = 66; // 12 metrics' worth
        let pair_budget = budget
            .max_pairs
            .unwrap_or(DEFAULT_PARTIAL_PAIRS)
            .min(pair_count());
        // Largest k with k(k-1)/2 <= pair_budget, at least 2 so the
        // matrix is never empty.
        let mut k = 2;
        while k < METRIC_COUNT && (k + 1) * k / 2 <= pair_budget {
            k += 1;
        }
        let series: Vec<Vec<f64>> = MetricId::ALL.iter().map(|&m| frame.series(m)).collect();
        let mut by_variance: Vec<usize> = (0..METRIC_COUNT).collect();
        by_variance.sort_by(|&a, &b| {
            variance(&series[b])
                .total_cmp(&variance(&series[a]))
                .then(a.cmp(&b))
        });
        let mut chosen = by_variance[..k].to_vec();
        chosen.sort_unstable();
        let mut scores = vec![0.0f64; pair_count()];
        let mut scored = vec![false; pair_count()];
        for (pos, &i) in chosen.iter().enumerate() {
            for &j in &chosen[pos + 1..] {
                let pair = pair_index(i, j);
                scores[pair] = self.fallback.score(&series[i], &series[j]);
                scored[pair] = true;
            }
        }
        (AssociationMatrix::from_scores(scores), scored)
    }

    /// Runs Algorithm 1: builds the invariant set of a context from the
    /// metric frames of N normal runs.
    ///
    /// For comparability, pass frames windowed the same way diagnosis
    /// windows will be (association estimates depend on sample count).
    ///
    /// # Errors
    ///
    /// [`CoreError::NotEnoughRuns`] / [`CoreError::FrameTooShort`].
    pub fn build_invariants(
        &self,
        context: OperationContext,
        normal_frames: &[MetricFrame],
    ) -> Result<(), CoreError> {
        if normal_frames.len() < self.config.min_training_runs {
            return Err(CoreError::NotEnoughRuns {
                required: self.config.min_training_runs,
                got: normal_frames.len(),
            });
        }
        let id = self.intern_context(&context);
        let _span = Span::enter(&self.sink, EnginePhase::InvariantBuild, id);
        let mut matrices = Vec::with_capacity(normal_frames.len());
        for frame in normal_frames {
            matrices.push(self.association_matrix_for(id, frame)?);
        }
        let set = Arc::new(InvariantSet::select(&matrices, self.config.tau));
        self.state
            .with_mut(&context, self.config.window_ticks, |s| {
                s.invariants = Some(set);
            });
        Ok(())
    }

    /// Builds the violation tuple of an abnormal window against the
    /// context's invariants.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoInvariants`] / frame errors.
    pub fn violation_tuple(
        &self,
        context: &OperationContext,
        abnormal: &MetricFrame,
    ) -> Result<ViolationTuple, CoreError> {
        let invariants = self
            .invariant_set(context)
            .ok_or_else(|| CoreError::NoInvariants(context.clone()))?;
        let matrix = self.association_matrix_for(self.intern_context(context), abnormal)?;
        Ok(ViolationTuple::build(
            &invariants,
            &matrix,
            self.config.epsilon,
        ))
    }

    /// Records a signature for an investigated problem ("once the
    /// performance problem is resolved, a new signature will be added").
    ///
    /// # Errors
    ///
    /// Same as [`Engine::violation_tuple`].
    pub fn record_signature(
        &self,
        context: &OperationContext,
        problem: &str,
        abnormal: &MetricFrame,
    ) -> Result<(), CoreError> {
        let tuple = self.violation_tuple(context, abnormal)?;
        self.signatures
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .add(Signature {
                tuple,
                problem: problem.to_string(),
                context: context.clone(),
            });
        Ok(())
    }

    // -------------------------------------------------------- batch online

    /// Scores a complete CPI trace against the context's detector.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoPerformanceModel`].
    pub fn detect(
        &self,
        context: &OperationContext,
        cpi: &[f64],
    ) -> Result<DetectionResult, CoreError> {
        let detector = self
            .detector(context)
            .ok_or_else(|| CoreError::NoPerformanceModel(context.clone()))?;
        let result = detector.score(cpi);
        if result.is_anomalous() {
            self.sink.record(&EngineEvent::DetectionFired {
                context: self.intern_context(context),
                // ordering: Relaxed — tick labels the event with the
                // monotone lifetime counter; exactness under concurrent
                // ingest is not part of the event contract.
                tick: self.ticks.load(std::sync::atomic::Ordering::Relaxed),
            });
        }
        Ok(result)
    }

    /// Cause inference: matches the abnormal window's violation tuple
    /// against the signature database, under the configured
    /// [`SweepBudget`] ([`InvarNetConfig::sweep_budget`], unlimited by
    /// default).
    ///
    /// # Errors
    ///
    /// Missing invariants/signatures for the context, or frame errors.
    pub fn diagnose(
        &self,
        context: &OperationContext,
        abnormal: &MetricFrame,
    ) -> Result<Diagnosis, CoreError> {
        self.diagnose_with_budget(context, abnormal, self.config.sweep_budget)
    }

    /// [`Engine::diagnose`] under an explicit [`SweepBudget`]. On budget
    /// overrun the sweep degrades along the declared ladder instead of
    /// blocking; the returned [`Diagnosis::degradation`] names the tier
    /// that answered (or is `None` for a full-fidelity answer).
    ///
    /// # Errors
    ///
    /// Missing invariants/signatures for the context, or frame errors.
    pub fn diagnose_with_budget(
        &self,
        context: &OperationContext,
        abnormal: &MetricFrame,
        budget: SweepBudget,
    ) -> Result<Diagnosis, CoreError> {
        let id = self.intern_context(context);
        // ordering: Relaxed — tick only labels the emitted events with the
        // monotone lifetime counter (see detect above).
        let tick = self.ticks.load(std::sync::atomic::Ordering::Relaxed);
        let _span = Span::enter(&self.sink, EnginePhase::Diagnosis, id);
        // lint: allow(determinism, telemetry-only: diagnosis micros feed a
        // DiagnosisReady event; replay normalizes all recorded timings)
        let started = Instant::now();
        let invariants = self
            .invariant_set(context)
            .ok_or_else(|| CoreError::NoInvariants(context.clone()))?;
        let verdict = self.diagnosis_matrix_for(id, abnormal, budget, &invariants)?;
        let tuple = verdict.violation_tuple(&invariants, self.config.epsilon);
        let mut diagnosis = self.rank_tuple(context, tuple)?;
        diagnosis.degradation = verdict.degradation;
        self.sink.record(&EngineEvent::DiagnosisRan {
            context: id,
            tick,
            micros: started.elapsed().as_micros() as u64,
        });
        self.emit_signature_match(id, tick, &diagnosis);
        self.record_diagnosis_history(id, tick, &verdict, &diagnosis);
        Ok(diagnosis)
    }

    /// Feeds one finished diagnosis (and the sweep scores behind it) to
    /// the attached recorder, if any.
    pub(crate) fn record_diagnosis_history(
        &self,
        context: ContextId,
        tick: u64,
        verdict: &SweepVerdict,
        diagnosis: &Diagnosis,
    ) {
        if let Some(recorder) = &self.recorder {
            recorder.record_sweep(context, tick, verdict.matrix.scores(), verdict.degradation);
            recorder.record_diagnosis(context, tick, diagnosis);
        }
    }

    /// Ranks an already-built violation tuple against the signature
    /// database.
    pub(crate) fn rank_tuple(
        &self,
        context: &OperationContext,
        tuple: ViolationTuple,
    ) -> Result<Diagnosis, CoreError> {
        let ranked = self
            .signatures
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .rank(context, &tuple, self.config.similarity)?
            .into_iter()
            .map(|(problem, similarity)| RankedCause {
                problem,
                similarity,
            })
            .collect();
        Ok(Diagnosis {
            ranked,
            tuple,
            degradation: None,
        })
    }

    /// Reports how well a finished diagnosis matched the signature
    /// database ([`EngineEvent::SignatureMatched`]).
    pub(crate) fn emit_signature_match(&self, context: ContextId, tick: u64, diag: &Diagnosis) {
        let best_similarity = diag.ranked.first().map_or(0.0, |r| r.similarity);
        self.sink.record(&EngineEvent::SignatureMatched {
            context,
            tick,
            best_similarity,
            confident: best_similarity >= CONFIDENT_SIMILARITY,
        });
    }

    /// The full batch online step: detect on CPI, and only when anomalous
    /// run cause inference on the metric window ("to reduce the cost of
    /// unnecessary performance diagnosis").
    ///
    /// # Errors
    ///
    /// Any error from detection or diagnosis.
    pub fn process(
        &self,
        context: &OperationContext,
        cpi: &[f64],
        window: &MetricFrame,
    ) -> Result<(DetectionResult, Option<Diagnosis>), CoreError> {
        let detection = self.detect(context, cpi)?;
        if detection.is_anomalous() {
            let diagnosis = self.diagnose(context, window)?;
            Ok((detection, Some(diagnosis)))
        } else {
            Ok((detection, None))
        }
    }

    // --------------------------------------------------------- inspection

    /// The trained performance model of a context.
    pub fn performance_model(&self, context: &OperationContext) -> Option<Arc<PerformanceModel>> {
        self.state.with(context, |s| s.perf_model.clone()).flatten()
    }

    /// The streaming detector of a context.
    pub fn detector(&self, context: &OperationContext) -> Option<Arc<dyn Detector>> {
        self.state.with(context, |s| s.detector.clone()).flatten()
    }

    /// The invariant set of a context.
    pub fn invariant_set(&self, context: &OperationContext) -> Option<Arc<InvariantSet>> {
        self.state.with(context, |s| s.invariants.clone()).flatten()
    }

    /// A snapshot of the signature database. This clones the whole
    /// database; for read-only access prefer
    /// [`Engine::with_signature_database`], which borrows it under the
    /// read guard instead.
    pub fn signature_database(&self) -> SignatureDatabase {
        self.with_signature_database(|db| db.clone())
    }

    /// Runs `f` over the signature database under its read lock, without
    /// cloning — the cheap way to count, scan or serialize signatures.
    pub fn with_signature_database<R>(&self, f: impl FnOnce(&SignatureDatabase) -> R) -> R {
        f(&self
            .signatures
            .read()
            .unwrap_or_else(PoisonError::into_inner))
    }

    /// Contexts with trained models, sorted.
    pub fn contexts(&self) -> Vec<OperationContext> {
        self.state
            .contexts()
            .into_iter()
            .filter(|c| {
                self.state
                    .with(c, |s| s.perf_model.is_some())
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Replaces the signature database (used when loading persisted state).
    pub fn set_signature_database(&self, db: SignatureDatabase) {
        *self
            .signatures
            .write()
            .unwrap_or_else(PoisonError::into_inner) = db;
    }

    pub(crate) fn install_invariant_set_internal(
        &self,
        context: OperationContext,
        set: InvariantSet,
    ) {
        let set = Arc::new(set);
        self.state
            .with_mut(&context, self.config.window_ticks, |s| {
                s.invariants = Some(set);
            });
    }

    pub(crate) fn install_performance_model_internal(
        &self,
        context: OperationContext,
        model: PerformanceModel,
    ) {
        let model = Arc::new(model);
        let detector: Arc<dyn Detector> = Arc::new(ArimaDetector::new(
            Arc::clone(&model),
            self.config.threshold_rule,
            self.config.consecutive_anomalies,
        ));
        self.state
            .with_mut(&context, self.config.window_ticks, |s| {
                s.perf_model = Some(model);
                s.detector = Some(detector);
                s.reset_run();
            });
        self.note_run_reset(&context);
    }

    pub(crate) fn install_detector_internal(
        &self,
        context: OperationContext,
        detector: Arc<dyn Detector>,
    ) {
        self.state
            .with_mut(&context, self.config.window_ticks, |s| {
                s.detector = Some(detector);
                s.reset_run();
            });
        self.note_run_reset(&context);
    }

    /// Tells the attached recorder (if any) that `context`'s sliding
    /// window was just discarded, so history keeps run boundaries aligned
    /// with the live window.
    pub(crate) fn note_run_reset(&self, context: &OperationContext) {
        if let Some(recorder) = &self.recorder {
            recorder.record_run_reset(self.intern_context(context));
        }
    }
}

/// What [`Engine::budgeted_matrix_for`] produced: the matrix, which
/// degradation tier (if any) answered, and — for a partial matrix — which
/// pairs were actually scored.
pub(crate) struct SweepVerdict {
    pub(crate) matrix: AssociationMatrix,
    pub(crate) degradation: Option<SweepDegradation>,
    pub(crate) scored: Option<Vec<bool>>,
}

impl SweepVerdict {
    fn full(matrix: AssociationMatrix) -> Self {
        SweepVerdict {
            matrix,
            degradation: None,
            scored: None,
        }
    }

    /// Builds the violation tuple of this verdict's matrix, masking out
    /// pairs a partial sweep never scored (their placeholder zeros must
    /// not read as evidence of broken associations).
    pub(crate) fn violation_tuple(
        &self,
        invariants: &InvariantSet,
        epsilon: f64,
    ) -> ViolationTuple {
        match &self.scored {
            Some(mask) => ViolationTuple::build_masked(invariants, &self.matrix, epsilon, mask),
            None => ViolationTuple::build(invariants, &self.matrix, epsilon),
        }
    }
}

/// Sample variance (biased, `n` denominator) — only used to rank metrics,
/// so the normalization constant is irrelevant.
fn variance(series: &[f64]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    let n = series.len() as f64;
    let mean = series.iter().sum::<f64>() / n;
    series.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("measure", &self.measure.name())
            .field("contexts", &self.state.modeled_contexts())
            .field("invariant_sets", &self.state.invariant_contexts())
            .field(
                "signatures",
                &self
                    .signatures
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .len(),
            )
            .field("shards", &self.state.shard_count())
            .field("threads", &self.pool.threads())
            .finish()
    }
}
