//! A small frame-fingerprint → [`AssociationMatrix`] cache for the
//! diagnosis path.
//!
//! An engine often re-diagnoses the same sliding window — repeated
//! `diagnose` calls while an anomaly persists, or `violation_tuple`
//! followed by `record_signature` on the identical frame. The pairwise
//! sweep is the dominant cost of those calls, and its result is a pure
//! function of the frame's values (the measure and its parameters are
//! fixed per engine), so an unchanged window can be served from cache
//! bit-for-bit.
//!
//! Lookup is two-stage: a 64-bit FNV-1a fingerprint over the raw value
//! bits rejects non-matches cheaply, then an exact `[f64]` bit comparison
//! guards against fingerprint collisions — a hit is never approximate.
//! Entries are kept in most-recently-used order in a small `Vec` behind a
//! `Mutex`; with single-digit capacities a scan beats any map.

use std::sync::{Mutex, PoisonError};

use crate::assoc::AssociationMatrix;
use crate::engine::telemetry::ContextId;

/// One cached sweep: the exact frame values it was computed from, the
/// context whose window produced them, and the resulting matrix.
#[derive(Debug, Clone)]
struct CacheEntry {
    fingerprint: u64,
    context: ContextId,
    values: Vec<f64>,
    matrix: AssociationMatrix,
}

/// MRU cache of sweep results keyed by frame contents. Capacity `0`
/// disables the cache (every lookup misses, inserts are dropped).
#[derive(Debug)]
pub(crate) struct SweepCache {
    capacity: usize,
    entries: Mutex<Vec<CacheEntry>>,
}

impl SweepCache {
    /// A cache holding at most `capacity` matrices.
    pub(crate) fn new(capacity: usize) -> Self {
        SweepCache {
            capacity,
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Whether lookups can ever hit.
    pub(crate) fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The matrix previously inserted for exactly these frame values, if
    /// still cached. A hit moves the entry to the front (most recent).
    pub(crate) fn get(&self, values: &[f64]) -> Option<AssociationMatrix> {
        if self.capacity == 0 {
            return None;
        }
        let fingerprint = fingerprint_values(values);
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let pos = entries
            .iter()
            .position(|e| e.fingerprint == fingerprint && bits_equal(&e.values, values))?;
        let entry = entries.remove(pos);
        let matrix = entry.matrix.clone();
        entries.insert(0, entry);
        Some(matrix)
    }

    /// Caches a freshly computed matrix for these frame values, evicting
    /// the least recently used entry when full.
    pub(crate) fn insert(&self, context: ContextId, values: &[f64], matrix: AssociationMatrix) {
        if self.capacity == 0 {
            return;
        }
        let fingerprint = fingerprint_values(values);
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        // Replace an existing entry for the same frame instead of
        // duplicating it (two concurrent misses on one frame, say).
        if let Some(pos) = entries
            .iter()
            .position(|e| e.fingerprint == fingerprint && bits_equal(&e.values, values))
        {
            entries.remove(pos);
        }
        entries.insert(
            0,
            CacheEntry {
                fingerprint,
                context,
                values: values.to_vec(),
                matrix,
            },
        );
        entries.truncate(self.capacity);
    }

    /// The most recently cached matrix computed from *this context's*
    /// window, regardless of whether the window has since moved on — the
    /// degradation ladder's tier-1 answer (stale but full-fidelity).
    ///
    /// The context filter is soundness-critical: an engine-global "most
    /// recent entry" could hand one context another context's association
    /// structure, which is exactly the silently-wrong answer the
    /// resilience layer exists to rule out.
    pub(crate) fn most_recent_for(&self, context: ContextId) -> Option<AssociationMatrix> {
        if self.capacity == 0 || context.is_unattributed() {
            return None;
        }
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .find(|e| e.context == context)
            .map(|e| e.matrix.clone())
    }

    /// Number of cached matrices (for tests and diagnostics).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

/// 64-bit FNV-1a over the IEEE-754 bit patterns of the samples. Bitwise
/// hashing (rather than numeric) keeps `0.0` and `-0.0` distinct — the
/// cache must only hit on frames the sweep would treat identically down
/// to the last bit.
fn fingerprint_values(values: &[f64]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET_BASIS;
    // Fold the length in first so a prefix and its extension never share
    // a fingerprint trivially.
    for byte in (values.len() as u64).to_le_bytes() {
        hash = (hash ^ u64::from(byte)).wrapping_mul(PRIME);
    }
    for v in values {
        for byte in v.to_bits().to_le_bytes() {
            hash = (hash ^ u64::from(byte)).wrapping_mul(PRIME);
        }
    }
    hash
}

/// Exact bit-pattern equality (`NaN`-safe, distinguishes `0.0`/`-0.0`).
fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::PearsonMeasure;
    use ix_metrics::{MetricFrame, METRIC_COUNT};

    fn matrix_for(seed: u64) -> (Vec<f64>, AssociationMatrix) {
        let mut frame = MetricFrame::new();
        let mut state = seed.max(1);
        for _ in 0..24 {
            let tick: Vec<f64> = (0..METRIC_COUNT)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 33) as f64 / (1u64 << 31) as f64
                })
                .collect();
            frame.push_tick(&tick).unwrap();
        }
        let matrix = AssociationMatrix::compute(&frame, &PearsonMeasure, 1);
        (frame.values().to_vec(), matrix)
    }

    #[test]
    fn hit_returns_the_exact_matrix() {
        let cache = SweepCache::new(4);
        let (values, matrix) = matrix_for(7);
        assert!(cache.get(&values).is_none());
        cache.insert(ContextId::UNATTRIBUTED, &values, matrix.clone());
        assert_eq!(cache.get(&values), Some(matrix));
    }

    #[test]
    fn distinct_frames_do_not_collide() {
        let cache = SweepCache::new(4);
        let (va, ma) = matrix_for(1);
        let (vb, mb) = matrix_for(2);
        cache.insert(ContextId::UNATTRIBUTED, &va, ma.clone());
        cache.insert(ContextId::UNATTRIBUTED, &vb, mb.clone());
        assert_eq!(cache.get(&va), Some(ma));
        assert_eq!(cache.get(&vb), Some(mb));
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = SweepCache::new(2);
        let (va, ma) = matrix_for(1);
        let (vb, mb) = matrix_for(2);
        let (vc, mc) = matrix_for(3);
        cache.insert(ContextId::UNATTRIBUTED, &va, ma.clone());
        cache.insert(ContextId::UNATTRIBUTED, &vb, mb);
        // Touch `a` so `b` becomes the eviction candidate.
        assert!(cache.get(&va).is_some());
        cache.insert(ContextId::UNATTRIBUTED, &vc, mc);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&va), Some(ma));
        assert!(cache.get(&vb).is_none());
        assert!(cache.get(&vc).is_some());
    }

    #[test]
    fn reinserting_the_same_frame_does_not_duplicate() {
        let cache = SweepCache::new(4);
        let (values, matrix) = matrix_for(5);
        cache.insert(ContextId::UNATTRIBUTED, &values, matrix.clone());
        cache.insert(ContextId::UNATTRIBUTED, &values, matrix);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = SweepCache::new(0);
        let (values, matrix) = matrix_for(9);
        assert!(!cache.is_enabled());
        cache.insert(ContextId::UNATTRIBUTED, &values, matrix);
        assert!(cache.get(&values).is_none());
    }

    #[test]
    fn most_recent_for_is_context_scoped() {
        let cache = SweepCache::new(4);
        let ctx_a = ContextId::from_index(0);
        let ctx_b = ContextId::from_index(1);
        let (va, ma) = matrix_for(1);
        let (va2, ma2) = matrix_for(2);
        let (vb, mb) = matrix_for(3);
        cache.insert(ctx_a, &va, ma.clone());
        cache.insert(ctx_b, &vb, mb.clone());
        cache.insert(ctx_a, &va2, ma2.clone());
        // Each context sees only its own latest matrix — never a
        // neighbor's, and never anything for an unknown context.
        assert_eq!(cache.most_recent_for(ctx_a), Some(ma2));
        assert_eq!(cache.most_recent_for(ctx_b), Some(mb));
        assert_eq!(cache.most_recent_for(ContextId::from_index(9)), None);
        assert_eq!(cache.most_recent_for(ContextId::UNATTRIBUTED), None);
    }

    #[test]
    fn negative_zero_is_distinct_from_zero() {
        let cache = SweepCache::new(4);
        let (mut values, matrix) = matrix_for(11);
        values[0] = 0.0;
        cache.insert(ContextId::UNATTRIBUTED, &values, matrix);
        let mut flipped = values.clone();
        flipped[0] = -0.0;
        assert!(cache.get(&values).is_some());
        assert!(cache.get(&flipped).is_none());
    }
}
