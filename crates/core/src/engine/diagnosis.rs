//! The diagnosis layer: ranked root causes from signature matching.

use serde::{Deserialize, Serialize};

use crate::engine::resilience::SweepDegradation;
use crate::error::CoreError;
use crate::invariants::InvariantSet;
use crate::signature::ViolationTuple;

/// One ranked root-cause candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedCause {
    /// Problem label from the signature database.
    pub problem: String,
    /// Similarity of the observed violation tuple to the problem's
    /// signature, in `[0, 1]`.
    pub similarity: f64,
}

/// The outcome of cause inference: "a list of root causes which puts the
/// most probable causes in the top".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Candidates, best first.
    pub ranked: Vec<RankedCause>,
    /// The violation tuple that was matched.
    pub tuple: ViolationTuple,
    /// `Some` when the association matrix behind the tuple was produced by
    /// a degradation tier rather than a full-fidelity sweep — the explicit
    /// marker the resilience layer guarantees in place of a silently
    /// degraded answer. `None` means full fidelity.
    pub degradation: Option<SweepDegradation>,
}

impl Diagnosis {
    /// The most probable root cause.
    pub fn root_cause(&self) -> Option<&RankedCause> {
        self.ranked.first()
    }

    /// Whether the best match is convincing enough to report as a known
    /// problem rather than handing hints to the administrator.
    pub fn is_confident(&self, min_similarity: f64) -> bool {
        self.root_cause()
            .is_some_and(|c| c.similarity >= min_similarity)
    }

    /// The paper's multiple-fault extension: "our method could be easily
    /// extended to multiple faults by listing multiple root causes whose
    /// signatures are most similar to the violation tuple". Returns up to
    /// `k` causes whose similarity reaches `min_similarity`.
    pub fn top_causes(&self, k: usize, min_similarity: f64) -> Vec<&RankedCause> {
        self.ranked
            .iter()
            .take(k)
            .filter(|c| c.similarity >= min_similarity)
            .collect()
    }

    /// Hints for unknown problems: the violated invariant pairs, strongest
    /// deviation first — "it can provide some hints by showing the violated
    /// association pairs (e.g. lock number–cpu utilization)". `invariants`
    /// must be the set the diagnosis was made against.
    ///
    /// # Errors
    ///
    /// [`CoreError::TupleLengthMismatch`] when `invariants` does not match
    /// the tuple's length (a set from a different context).
    pub fn hints(
        &self,
        invariants: &InvariantSet,
    ) -> Result<Vec<(ix_metrics::MetricId, ix_metrics::MetricId, f64)>, CoreError> {
        if invariants.len() != self.tuple.len() {
            return Err(CoreError::TupleLengthMismatch {
                expected: invariants.len(),
                got: self.tuple.len(),
            });
        }
        let mut out: Vec<(ix_metrics::MetricId, ix_metrics::MetricId, f64)> = self
            .tuple
            .graded()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0.0)
            .map(|(k, &v)| {
                let (a, b) = invariants.metrics_of(k);
                (a, b, v)
            })
            .collect();
        out.sort_by(|x, y| y.2.total_cmp(&x.2));
        Ok(out)
    }
}
