//! First-class recording: the engine's append-only history sink.
//!
//! Everything the engine observes — tick rows, the event stream, sweep
//! scores and finished diagnoses — can flow into a [`HistoryRecorder`]
//! attached with [`crate::EngineBuilder::history`]. The engine calls the
//! recorder at fixed points on its data path:
//!
//! - [`HistoryRecorder::record_tick`] inside the ingest step, under the
//!   context's shard lock, so recorded rows are in exactly the order the
//!   sliding window saw them;
//! - [`HistoryRecorder::record_event`] for every [`EngineEvent`] (the
//!   recorder is teed behind the configured [`EventSink`], which observes
//!   the identical stream);
//! - [`HistoryRecorder::record_sweep`] / [`HistoryRecorder::record_diagnosis`]
//!   after each cause-inference pass, with the association scores and the
//!   ranked result;
//! - [`HistoryRecorder::record_run_reset`] whenever a context's sliding
//!   window is discarded, so run boundaries survive into history.
//!
//! A recorder that implements [`HistoryRecorder::window_rows`] and
//! [`HistoryRecorder::frame_rows`] becomes the source of diagnosis
//! windows, through a two-step snapshot protocol that survives
//! concurrent ingest of the same context: still under the shard lock
//! that serialized [`HistoryRecorder::record_tick`], the engine asks for
//! the *row range* of the current window ([`HistoryRecorder::window_rows`]);
//! after the lock drops it materializes exactly those rows
//! ([`HistoryRecorder::frame_rows`]). Because history is append-only, a
//! range captured under the lock keeps naming the same rows no matter
//! how many ticks or run resets land in between — so the diagnosed frame
//! is bit-identical to the sliding window at the moment detection fired.
//! The engine falls back to an in-lock copy of the sliding window when
//! `window_rows` returns `None`. With no recorder attached, nothing on
//! the data path changes.

use std::ops::Range;
use std::sync::Arc;

use ix_metrics::MetricFrame;

use super::diagnosis::Diagnosis;
use super::events::{EngineEvent, EventSink};
use super::resilience::SweepDegradation;
use super::telemetry::{ContextId, ContextRegistry};

/// Receiver of the engine's history stream. Implementations must be
/// cheap and thread-safe: `record_tick` runs under a state-shard lock on
/// the ingestion path.
pub trait HistoryRecorder: Send + Sync {
    /// One ingested tick: the lifetime tick label, the CPI sample, the
    /// detector's residual/threshold verdict, and the full metric row.
    /// Called in sliding-window order for each context.
    fn record_tick(
        &self,
        context: ContextId,
        tick: u64,
        cpi: f64,
        residual: f64,
        exceeded: bool,
        row: &[f64],
    );

    /// The context's sliding window was discarded (new job run, model
    /// re-install). Rows recorded before this call belong to the previous
    /// run.
    fn record_run_reset(&self, context: ContextId);

    /// One engine event, in emission order (the same stream the
    /// [`EventSink`] sees).
    fn record_event(&self, event: &EngineEvent);

    /// The association scores behind one diagnosis: the flat upper
    /// triangle (indexed by [`crate::pair_index`]) and the degradation
    /// tier that produced it (`None` for a full-fidelity sweep).
    fn record_sweep(
        &self,
        context: ContextId,
        tick: u64,
        scores: &[f64],
        degradation: Option<SweepDegradation>,
    );

    /// One finished cause-inference pass, correlated with the lifetime
    /// tick stamped on its [`EngineEvent::DiagnosisRan`].
    fn record_diagnosis(&self, context: ContextId, tick: u64, diagnosis: &Diagnosis);

    /// Shares the engine's context registry so the recorder can resolve
    /// [`ContextId`]s back to labels (called once, at attach time).
    fn bind_registry(&self, registry: &Arc<ContextRegistry>) {
        let _ = registry;
    }

    /// The row range of the last `max_ticks` recorded rows of the
    /// context's *current run* — step one of history-served diagnosis
    /// windows. The engine calls this under the same shard lock as
    /// [`HistoryRecorder::record_tick`], immediately after the
    /// triggering tick lands, so the returned range names exactly the
    /// rows the sliding window holds at that instant. Return `None` to
    /// keep the engine on its in-lock window copy.
    fn window_rows(&self, context: ContextId, max_ticks: usize) -> Option<Range<usize>> {
        let _ = (context, max_ticks);
        None
    }

    /// Materializes an exact row range captured by
    /// [`HistoryRecorder::window_rows`] — step two, called after the
    /// shard lock is released. Recorders must treat history as
    /// append-only so a previously returned range stays servable (and
    /// bit-identical) regardless of concurrent ingest or run resets;
    /// `None` here is a contract violation the engine surfaces as an
    /// error rather than diagnosing a fabricated window.
    fn frame_rows(&self, context: ContextId, rows: Range<usize>) -> Option<MetricFrame> {
        let _ = (context, rows);
        None
    }

    /// How many storage segments the recorder currently holds for a
    /// context, for the `history_segments` telemetry gauge. `None` (the
    /// default) means the recorder has no segment notion — the gauge is
    /// simply not updated.
    fn segment_count(&self, context: ContextId) -> Option<u64> {
        let _ = context;
        None
    }
}

/// A recorder that drops everything (placeholder for tests and docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl HistoryRecorder for NullRecorder {
    fn record_tick(&self, _: ContextId, _: u64, _: f64, _: f64, _: bool, _: &[f64]) {}
    fn record_run_reset(&self, _: ContextId) {}
    fn record_event(&self, _: &EngineEvent) {}
    fn record_sweep(&self, _: ContextId, _: u64, _: &[f64], _: Option<SweepDegradation>) {}
    fn record_diagnosis(&self, _: ContextId, _: u64, _: &Diagnosis) {}
}

/// The event tee installed by [`crate::EngineBuilder::history`]: forwards
/// every event to the configured sink first, then to the recorder's event
/// log, so attaching history never changes what the sink observes.
pub(crate) struct RecorderTee {
    inner: Arc<dyn EventSink>,
    recorder: Arc<dyn HistoryRecorder>,
}

impl RecorderTee {
    pub(crate) fn new(inner: Arc<dyn EventSink>, recorder: Arc<dyn HistoryRecorder>) -> Self {
        RecorderTee { inner, recorder }
    }
}

impl EventSink for RecorderTee {
    fn record(&self, event: &EngineEvent) {
        self.inner.record(event);
        self.recorder.record_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_defaults_are_inert() {
        let recorder = NullRecorder;
        recorder.record_tick(ContextId::UNATTRIBUTED, 0, 1.0, 0.0, false, &[]);
        recorder.record_run_reset(ContextId::UNATTRIBUTED);
        recorder.record_event(&EngineEvent::DetectionFired {
            context: ContextId::UNATTRIBUTED,
            tick: 0,
        });
        recorder.record_sweep(ContextId::UNATTRIBUTED, 0, &[], None);
        assert!(recorder.window_rows(ContextId::UNATTRIBUTED, 8).is_none());
        assert!(recorder.frame_rows(ContextId::UNATTRIBUTED, 0..8).is_none());
    }

    #[test]
    fn tee_forwards_to_both() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        #[derive(Default)]
        struct Count(AtomicUsize);
        impl EventSink for Count {
            fn record(&self, _: &EngineEvent) {
                // ordering: Relaxed — independent test counter.
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        #[derive(Default)]
        struct RecCount(AtomicUsize);
        impl HistoryRecorder for RecCount {
            fn record_tick(&self, _: ContextId, _: u64, _: f64, _: f64, _: bool, _: &[f64]) {}
            fn record_run_reset(&self, _: ContextId) {}
            fn record_event(&self, _: &EngineEvent) {
                // ordering: Relaxed — independent test counter.
                self.0.fetch_add(1, Ordering::Relaxed);
            }
            fn record_sweep(&self, _: ContextId, _: u64, _: &[f64], _: Option<SweepDegradation>) {}
            fn record_diagnosis(&self, _: ContextId, _: u64, _: &Diagnosis) {}
        }
        let sink = Arc::new(Count::default());
        let recorder = Arc::new(RecCount::default());
        let tee = RecorderTee::new(
            Arc::clone(&sink) as Arc<dyn EventSink>,
            Arc::clone(&recorder) as Arc<dyn HistoryRecorder>,
        );
        tee.record(&EngineEvent::DetectionFired {
            context: ContextId::UNATTRIBUTED,
            tick: 1,
        });
        assert_eq!(sink.0.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(recorder.0.load(std::sync::atomic::Ordering::Relaxed), 1);
    }
}
