//! The builder-first construction path for [`Engine`].
//!
//! [`EngineBuilder`] folds what used to be a `new` + a handful of `&mut`
//! setters (`set_threads`, `set_event_sink`, `attach_telemetry`, the
//! `install_*` family — all removed now that every caller builds) into one
//! fluent expression that yields a ready, immutable engine:
//!
//! ```
//! use ix_core::{Engine, InvarNetConfig, Telemetry};
//!
//! let telemetry = Telemetry::shared();
//! let engine = Engine::builder()
//!     .config(InvarNetConfig::default())
//!     .threads(2)
//!     .telemetry(&telemetry)
//!     .build();
//! assert_eq!(engine.threads(), 2);
//! ```

use std::sync::Arc;

use crate::anomaly::PerformanceModel;
use crate::assoc::SweepPool;
use crate::config::InvarNetConfig;
use crate::context::OperationContext;
use crate::invariants::InvariantSet;
use crate::measure::AssociationMeasure;
use crate::signature::SignatureDatabase;

use super::detector::Detector;
use super::events::EventSink;
use super::recorder::HistoryRecorder;
use super::telemetry::Telemetry;
use super::Engine;

/// Assembles a fully configured [`Engine`] in one expression; obtain one
/// from [`Engine::builder`] (or [`crate::ConfigBuilder::engine`]) and
/// finish with [`EngineBuilder::build`], which is infallible.
#[must_use = "builder methods return the builder; call .build() to produce the engine"]
pub struct EngineBuilder {
    config: InvarNetConfig,
    measure: Option<Arc<dyn AssociationMeasure>>,
    threads: Option<usize>,
    shared_pool: Option<Arc<SweepPool>>,
    lifetime_ticks: Option<u64>,
    sink: Option<Arc<dyn EventSink>>,
    extra_sinks: Vec<Arc<dyn EventSink>>,
    telemetry: Option<Arc<Telemetry>>,
    history: Option<Arc<dyn HistoryRecorder>>,
    signatures: Option<SignatureDatabase>,
    models: Vec<(OperationContext, PerformanceModel)>,
    invariants: Vec<(OperationContext, InvariantSet)>,
    detectors: Vec<(OperationContext, Arc<dyn Detector>)>,
}

impl EngineBuilder {
    pub(crate) fn new() -> Self {
        EngineBuilder {
            config: InvarNetConfig::default(),
            measure: None,
            threads: None,
            shared_pool: None,
            lifetime_ticks: None,
            sink: None,
            extra_sinks: Vec::new(),
            telemetry: None,
            history: None,
            signatures: None,
            models: Vec::new(),
            invariants: Vec::new(),
            detectors: Vec::new(),
        }
    }

    /// The engine configuration (defaults to the paper values).
    pub fn config(mut self, config: InvarNetConfig) -> Self {
        self.config = config;
        self
    }

    /// The association measure (defaults to MIC with the configured
    /// parameters).
    pub fn measure(mut self, measure: Arc<dyn AssociationMeasure>) -> Self {
        self.measure = Some(measure);
        self
    }

    /// Number of sweep workers (defaults to the available parallelism,
    /// capped at 8).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Runs this engine's sweeps on an existing worker pool instead of
    /// spawning its own. The fleet pattern: many tenant engines on one
    /// box share one pool sized to the cores (obtain another engine's
    /// pool with [`Engine::sweep_pool`]). Supersedes
    /// [`EngineBuilder::threads`] when both are set.
    pub fn shared_pool(mut self, pool: Arc<SweepPool>) -> Self {
        self.shared_pool = Some(pool);
        self
    }

    /// Seeds the engine-wide lifetime tick counter, so a rebuilt engine
    /// continues a predecessor's global tick numbering (fleet warm-from-
    /// snapshot; read the counter with [`Engine::lifetime_ticks`]).
    pub fn lifetime_ticks(mut self, ticks: u64) -> Self {
        self.lifetime_ticks = Some(ticks);
        self
    }

    /// The observability sink every engine event goes to. Superseded by
    /// [`EngineBuilder::telemetry`] when both are set (a [`Telemetry`] hub
    /// *is* an event sink, plus a shared context registry).
    pub fn event_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attaches a [`Telemetry`] hub: the hub becomes the engine's event
    /// sink and the engine interns contexts into the hub's registry, so
    /// exporters can resolve context ids back to labels. Several engines
    /// may attach to one hub.
    pub fn telemetry(mut self, telemetry: &Arc<Telemetry>) -> Self {
        self.telemetry = Some(Arc::clone(telemetry));
        self
    }

    /// Adds a side observer of the event stream *in addition to* the
    /// primary sink or telemetry hub. Extras see every event after the
    /// primary sink, in attachment order, and before any attached history
    /// recorder's tee — so a live console can watch an engine that also
    /// exports telemetry and records history, without changing what either
    /// of those observes. May be called multiple times.
    pub fn extra_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.extra_sinks.push(sink);
        self
    }

    /// Attaches a history recorder (e.g. an `ix-history` `HistoryStore`):
    /// every tick row, event, sweep score and diagnosis is appended to it,
    /// and a recorder that serves windows back becomes the source of
    /// diagnosis frames. The engine behaves identically — bit for bit —
    /// with or without a recorder attached; see
    /// [`crate::HistoryRecorder`].
    pub fn history(mut self, recorder: Arc<dyn HistoryRecorder>) -> Self {
        self.history = Some(recorder);
        self
    }

    /// Seeds the signature database (e.g. from a persisted
    /// [`crate::ModelStore`]).
    pub fn signature_database(mut self, db: SignatureDatabase) -> Self {
        self.signatures = Some(db);
        self
    }

    /// Installs a prebuilt performance model for a context; its streaming
    /// detector becomes an ARIMA detector over the model (see
    /// [`crate::Engine::load_state`] for the persisted-state path).
    pub fn performance_model(mut self, context: OperationContext, model: PerformanceModel) -> Self {
        self.models.push((context, model));
        self
    }

    /// Installs a prebuilt invariant set for a context.
    pub fn invariant_set(mut self, context: OperationContext, set: InvariantSet) -> Self {
        self.invariants.push((context, set));
        self
    }

    /// Installs a custom streaming detector for a context (applied after
    /// any [`EngineBuilder::performance_model`] for the same context, so
    /// it wins).
    pub fn detector(mut self, context: OperationContext, detector: Arc<dyn Detector>) -> Self {
        self.detectors.push((context, detector));
        self
    }

    /// The finished engine.
    pub fn build(self) -> Engine {
        let mut engine = match self.measure {
            Some(measure) => Engine::with_measure(self.config, measure),
            None => Engine::new(self.config),
        };
        if let Some(pool) = self.shared_pool {
            engine.set_shared_pool_internal(pool);
        } else if let Some(threads) = self.threads {
            engine.set_threads_internal(threads);
        }
        if let Some(ticks) = self.lifetime_ticks {
            engine.set_lifetime_ticks_internal(ticks);
        }
        if let Some(telemetry) = &self.telemetry {
            engine.attach_telemetry_internal(telemetry);
        } else if let Some(sink) = self.sink {
            engine.set_event_sink_internal(sink);
        }
        // After the sink/telemetry wiring and before the history tee, so
        // extras observe the identical stream the recorder does.
        engine.attach_extra_sinks_internal(self.extra_sinks);
        // After the sink/telemetry wiring, so the recorder tee wraps the
        // final sink and binds the final context registry.
        if let Some(recorder) = self.history {
            engine.attach_history_internal(recorder);
        }
        if let Some(db) = self.signatures {
            engine.set_signature_database(db);
        }
        for (context, model) in self.models {
            engine.install_performance_model_internal(context, model);
        }
        for (context, set) in self.invariants {
            engine.install_invariant_set_internal(context, set);
        }
        for (context, detector) in self.detectors {
            engine.install_detector_internal(context, detector);
        }
        engine
    }
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder::new()
    }
}

impl std::fmt::Debug for EngineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineBuilder")
            .field("measure", &self.measure.as_ref().map(|m| m.name()))
            .field("threads", &self.threads)
            .field("shared_pool", &self.shared_pool.is_some())
            .field("lifetime_ticks", &self.lifetime_ticks)
            .field("telemetry", &self.telemetry.is_some())
            .field("event_sink", &self.sink.is_some())
            .field("extra_sinks", &self.extra_sinks.len())
            .field("history", &self.history.is_some())
            .field("signatures", &self.signatures.as_ref().map(|db| db.len()))
            .field("models", &self.models.len())
            .field("invariant_sets", &self.invariants.len())
            .field("detectors", &self.detectors.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::PearsonMeasure;
    use crate::signature::{Signature, ViolationTuple};

    fn ctx() -> OperationContext {
        OperationContext::new("10.0.0.1", "Sort")
    }

    #[test]
    fn builder_wires_measure_threads_and_signatures() {
        let mut db = SignatureDatabase::new();
        db.add(Signature {
            tuple: ViolationTuple::from_graded(vec![0.5; 4]),
            problem: "CPU-hog".into(),
            context: ctx(),
        });
        let engine = Engine::builder()
            .config(InvarNetConfig::builder().state_shards(4).build())
            .measure(Arc::new(PearsonMeasure))
            .threads(2)
            .signature_database(db)
            .build();
        assert_eq!(engine.measure_name(), "Pearson");
        assert_eq!(engine.threads(), 2);
        assert_eq!(engine.state_shards(), 4);
        assert_eq!(engine.with_signature_database(|db| db.len()), 1);
    }

    #[test]
    fn telemetry_supersedes_event_sink() {
        let telemetry = Telemetry::shared();
        let counters = Arc::new(crate::engine::EngineCounters::default());
        let engine = Engine::builder()
            .event_sink(counters)
            .telemetry(&telemetry)
            .build();
        // The engine interns into the hub's registry — the telemetry
        // attachment won.
        assert!(Arc::ptr_eq(engine.context_registry(), telemetry.contexts()));
    }

    #[test]
    fn extra_sinks_observe_alongside_primary() {
        let primary = Arc::new(crate::engine::EngineCounters::default());
        let extra = Arc::new(crate::engine::EngineCounters::default());
        let engine = Engine::builder()
            .event_sink(Arc::clone(&primary) as Arc<dyn EventSink>)
            .extra_sink(Arc::clone(&extra) as Arc<dyn EventSink>)
            .build();
        engine.sink().record(&crate::EngineEvent::DetectionFired {
            context: crate::ContextId::UNATTRIBUTED,
            tick: 3,
        });
        assert_eq!(primary.detections_fired(), 1);
        assert_eq!(extra.detections_fired(), 1);
    }

    #[test]
    fn shared_pool_is_reused_and_supersedes_threads() {
        let donor = Engine::builder().threads(2).build();
        let pool = donor.sweep_pool();
        let engine = Engine::builder()
            .threads(7)
            .shared_pool(Arc::clone(&pool))
            .build();
        assert_eq!(engine.threads(), 2);
        assert!(Arc::ptr_eq(&engine.sweep_pool(), &pool));
    }

    #[test]
    fn lifetime_ticks_seed_the_counter() {
        let engine = Engine::builder().lifetime_ticks(41).build();
        assert_eq!(engine.lifetime_ticks(), 41);
    }

    #[test]
    fn config_builder_flows_into_engine_builder() {
        let engine = InvarNetConfig::builder()
            .epsilon(0.3)
            .engine()
            .threads(1)
            .build();
        assert_eq!(engine.config().epsilon, 0.3);
        assert_eq!(engine.threads(), 1);
    }
}
