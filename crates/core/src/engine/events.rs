//! Engine observability: lightweight events and a pluggable sink.
//!
//! Every layer of the streaming engine reports what it did through an
//! [`EventSink`]; the default [`NullSink`] drops everything, while
//! [`EngineCounters`] aggregates events into atomic counters cheap enough
//! to leave enabled in production. Events are context-free on purpose —
//! cloning an [`crate::OperationContext`] per tick would dominate the cost
//! of ingestion itself.

use std::sync::atomic::{AtomicU64, Ordering};

/// Something the engine did, reported to the configured [`EventSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineEvent {
    /// A CPI sample and metric row were ingested (lifetime tick index).
    TickIngested {
        /// Zero-based lifetime index of the ingested tick.
        tick: u64,
    },
    /// The detection layer flagged a new anomaly onset (edge-triggered).
    DetectionFired {
        /// Lifetime tick index at which the detection fired.
        tick: u64,
    },
    /// Cause inference ran over the sliding window.
    DiagnosisRan {
        /// Wall-clock duration of the diagnosis in microseconds.
        micros: u64,
    },
    /// A pairwise association sweep finished on the worker pool.
    SweepCompleted {
        /// Number of metric pairs scored.
        pairs: usize,
        /// Wall-clock duration of the sweep in microseconds.
        micros: u64,
    },
}

/// Receiver of [`EngineEvent`]s. Implementations must be cheap: `record`
/// runs on the ingestion path.
pub trait EventSink: Send + Sync {
    /// Handles one event.
    fn record(&self, event: &EngineEvent);
}

/// The default sink: drops every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&self, _event: &EngineEvent) {}
}

/// An [`EventSink`] that aggregates events into atomic counters.
///
/// Share one via `Arc` between the engine and whatever reads the numbers:
///
/// ```
/// use std::sync::Arc;
/// use ix_core::{EngineCounters, EventSink, EngineEvent};
///
/// let counters = Arc::new(EngineCounters::default());
/// counters.record(&EngineEvent::TickIngested { tick: 0 });
/// assert_eq!(counters.ticks_ingested(), 1);
/// ```
#[derive(Debug, Default)]
pub struct EngineCounters {
    ticks_ingested: AtomicU64,
    detections_fired: AtomicU64,
    diagnoses_run: AtomicU64,
    diagnosis_micros_total: AtomicU64,
    sweeps_completed: AtomicU64,
    sweep_micros_total: AtomicU64,
    sweep_micros_max: AtomicU64,
}

impl EngineCounters {
    /// Ticks ingested across all contexts.
    pub fn ticks_ingested(&self) -> u64 {
        self.ticks_ingested.load(Ordering::Relaxed)
    }

    /// Anomaly onsets the detection layer reported.
    pub fn detections_fired(&self) -> u64 {
        self.detections_fired.load(Ordering::Relaxed)
    }

    /// Cause-inference passes run.
    pub fn diagnoses_run(&self) -> u64 {
        self.diagnoses_run.load(Ordering::Relaxed)
    }

    /// Total wall-clock microseconds spent in cause inference.
    pub fn diagnosis_micros_total(&self) -> u64 {
        self.diagnosis_micros_total.load(Ordering::Relaxed)
    }

    /// Association sweeps completed on the worker pool.
    pub fn sweeps_completed(&self) -> u64 {
        self.sweeps_completed.load(Ordering::Relaxed)
    }

    /// Total wall-clock microseconds spent sweeping.
    pub fn sweep_micros_total(&self) -> u64 {
        self.sweep_micros_total.load(Ordering::Relaxed)
    }

    /// Slowest single sweep in microseconds.
    pub fn sweep_micros_max(&self) -> u64 {
        self.sweep_micros_max.load(Ordering::Relaxed)
    }
}

impl EventSink for EngineCounters {
    fn record(&self, event: &EngineEvent) {
        match *event {
            EngineEvent::TickIngested { .. } => {
                self.ticks_ingested.fetch_add(1, Ordering::Relaxed);
            }
            EngineEvent::DetectionFired { .. } => {
                self.detections_fired.fetch_add(1, Ordering::Relaxed);
            }
            EngineEvent::DiagnosisRan { micros } => {
                self.diagnoses_run.fetch_add(1, Ordering::Relaxed);
                self.diagnosis_micros_total
                    .fetch_add(micros, Ordering::Relaxed);
            }
            EngineEvent::SweepCompleted { micros, .. } => {
                self.sweeps_completed.fetch_add(1, Ordering::Relaxed);
                self.sweep_micros_total.fetch_add(micros, Ordering::Relaxed);
                self.sweep_micros_max.fetch_max(micros, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_events() {
        let c = EngineCounters::default();
        c.record(&EngineEvent::TickIngested { tick: 0 });
        c.record(&EngineEvent::TickIngested { tick: 1 });
        c.record(&EngineEvent::DetectionFired { tick: 1 });
        c.record(&EngineEvent::DiagnosisRan { micros: 40 });
        c.record(&EngineEvent::SweepCompleted {
            pairs: 325,
            micros: 10,
        });
        c.record(&EngineEvent::SweepCompleted {
            pairs: 325,
            micros: 30,
        });
        assert_eq!(c.ticks_ingested(), 2);
        assert_eq!(c.detections_fired(), 1);
        assert_eq!(c.diagnoses_run(), 1);
        assert_eq!(c.diagnosis_micros_total(), 40);
        assert_eq!(c.sweeps_completed(), 2);
        assert_eq!(c.sweep_micros_total(), 40);
        assert_eq!(c.sweep_micros_max(), 30);
    }

    #[test]
    fn null_sink_is_a_no_op() {
        NullSink.record(&EngineEvent::TickIngested { tick: 7 });
    }
}
