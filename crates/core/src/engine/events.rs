//! Engine observability: lightweight events and a pluggable sink.
//!
//! Every layer of the streaming engine reports what it did through an
//! [`EventSink`]. The default [`NullSink`] drops everything;
//! [`EngineCounters`] aggregates events into a handful of atomic counters;
//! the full [`crate::Telemetry`] subsystem
//! ([`super::telemetry`]) adds per-context attribution, latency
//! histograms, spans and exporters on top of the same events.
//!
//! Events carry an interned [`ContextId`] — a `Copy` `u32` from the
//! engine's [`super::telemetry::ContextRegistry`] — instead of an
//! [`crate::OperationContext`], because cloning a context (two heap
//! strings) per tick would dominate the cost of ingestion itself.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use super::resilience::{DegradationReason, DegradationTier, HealthState, OverloadPolicy};
use super::telemetry::{ContextId, EnginePhase};

/// Something the engine did, reported to the configured [`EventSink`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineEvent {
    /// A CPI sample and metric row were ingested (lifetime tick index).
    TickIngested {
        /// The operation context the tick belongs to.
        context: ContextId,
        /// Zero-based lifetime index of the ingested tick.
        tick: u64,
        /// The detector's score for the tick (see
        /// [`super::detector::TickDecision::residual`]).
        residual: f64,
        /// Whether the residual exceeded the detector's threshold.
        exceeded: bool,
        /// Wall-clock cost of the ingest step (detector + window push) in
        /// microseconds, excluding any triggered diagnosis.
        micros: u64,
    },
    /// The detection layer flagged a new anomaly onset (edge-triggered).
    DetectionFired {
        /// The context the detection fired in.
        context: ContextId,
        /// Lifetime tick index at which the detection fired.
        tick: u64,
    },
    /// The detection layer saw an anomalous-to-normal edge.
    DetectionCleared {
        /// The context the anomaly cleared in.
        context: ContextId,
        /// Lifetime tick index at which the anomaly cleared.
        tick: u64,
    },
    /// Cause inference ran over the sliding window.
    DiagnosisRan {
        /// The context that was diagnosed.
        context: ContextId,
        /// Lifetime tick index the diagnosis is correlated with (the
        /// triggering detection's tick for streaming ingest; the current
        /// lifetime tick for batch [`crate::Engine::diagnose`] calls).
        tick: u64,
        /// Wall-clock duration of the diagnosis in microseconds.
        micros: u64,
    },
    /// A diagnosis finished ranking against the signature database.
    SignatureMatched {
        /// The context that was diagnosed.
        context: ContextId,
        /// Lifetime tick index the diagnosis is correlated with.
        tick: u64,
        /// Similarity of the best-ranked signature (0 when the database
        /// held no signature for the context).
        best_similarity: f64,
        /// Whether the best match cleared
        /// [`super::telemetry::CONFIDENT_SIMILARITY`].
        confident: bool,
    },
    /// A pairwise association sweep finished on the worker pool.
    SweepCompleted {
        /// The context whose window was swept
        /// ([`ContextId::UNATTRIBUTED`] for caller-supplied frames).
        context: ContextId,
        /// Number of metric pairs scored.
        pairs: usize,
        /// Wall-clock duration of the sweep in microseconds.
        micros: u64,
    },
    /// One sweep worker finished scoring a chunk of metric pairs (the
    /// fine-grained cost signal behind the pair-scoring histogram).
    PairsScored {
        /// The context whose window was swept.
        context: ContextId,
        /// Pairs in the chunk.
        pairs: usize,
        /// Wall-clock microseconds the chunk took.
        micros: u64,
    },
    /// An incremental sweep's screen-then-confirm pass finished: the
    /// diagnosis window was a bounded slide of the previous one, profiles
    /// advanced by delta, and each pair was either reused, screened out by
    /// the conservative bound, or confirmed with the full measure.
    SweepScreened {
        /// The context whose window was incrementally swept.
        context: ContextId,
        /// Pairs whose cached score was kept with no fresh work.
        reused: usize,
        /// Stale invariant pairs the conservative bound proved unable to
        /// cross the violation threshold.
        screened: usize,
        /// Stale invariant pairs re-scored with the full measure.
        confirmed: usize,
    },
    /// The engine consulted its frame-fingerprint → association-matrix
    /// cache before sweeping.
    SweepCacheLookup {
        /// The context whose window was looked up.
        context: ContextId,
        /// Whether the cached matrix was reused (`true`) or a full sweep
        /// had to run (`false`).
        hit: bool,
    },
    /// A [`super::telemetry::Span`] guard closed.
    SpanClosed {
        /// The engine phase the span covered.
        phase: EnginePhase,
        /// The context the span was attributed to.
        context: ContextId,
        /// Wall-clock duration in microseconds.
        micros: u64,
    },
    /// A sweep could not finish inside its [`crate::SweepBudget`] and a
    /// declared fallback tier produced the answer instead.
    SweepDegraded {
        /// The context whose diagnosis was degraded.
        context: ContextId,
        /// The fallback tier that answered.
        tier: DegradationTier,
        /// Why the full-fidelity sweep was abandoned.
        reason: DegradationReason,
    },
    /// A tick entered the bounded ingest queue
    /// ([`crate::Engine::submit`]).
    TickEnqueued {
        /// The context the tick belongs to.
        context: ContextId,
        /// Depth of the tick's queue shard after the enqueue.
        depth: usize,
    },
    /// The bounded ingest queue shed a tick under overload.
    TickShed {
        /// The context of the *dropped* tick (the oldest queued tick for
        /// `ShedOldest`, the incoming tick for `ShedNewest`).
        context: ContextId,
        /// The overload policy that shed it.
        policy: OverloadPolicy,
    },
    /// A [`crate::ModelStore`] save/load failed and is about to be
    /// retried after a backoff sleep.
    StoreRetried {
        /// Always [`ContextId::UNATTRIBUTED`]: stores span contexts.
        context: ContextId,
        /// The 1-based attempt that just failed.
        attempt: u32,
        /// The jittered backoff about to be slept, in microseconds.
        backoff_micros: u64,
    },
    /// The engine's health state machine transitioned.
    HealthChanged {
        /// The context whose operation drove the transition
        /// ([`ContextId::UNATTRIBUTED`] for store operations).
        context: ContextId,
        /// The state before the transition.
        from: HealthState,
        /// The state after the transition.
        to: HealthState,
    },
    /// A fleet evicted a warm tenant engine: its models and run tail were
    /// persisted to a snapshot and the engine was torn down.
    TenantEvicted {
        /// Always [`ContextId::UNATTRIBUTED`]: eviction spans every
        /// context the tenant owns.
        context: ContextId,
        /// The fleet's numeric id of the evicted tenant.
        tenant: u64,
        /// Lifetime ticks the tenant had ingested at eviction.
        ticks: u64,
    },
    /// A fleet warmed a cold tenant engine from its snapshot.
    TenantWarmed {
        /// Always [`ContextId::UNATTRIBUTED`]: warming spans every
        /// context the tenant owns.
        context: ContextId,
        /// The fleet's numeric id of the warmed tenant.
        tenant: u64,
        /// Wall-clock cost of the warm (snapshot decode + state restore)
        /// in microseconds.
        micros: u64,
    },
}

impl EngineEvent {
    /// The context the event is attributed to ([`ContextId::UNATTRIBUTED`]
    /// when unknown).
    pub fn context(&self) -> ContextId {
        match *self {
            EngineEvent::TickIngested { context, .. }
            | EngineEvent::DetectionFired { context, .. }
            | EngineEvent::DetectionCleared { context, .. }
            | EngineEvent::DiagnosisRan { context, .. }
            | EngineEvent::SignatureMatched { context, .. }
            | EngineEvent::SweepCompleted { context, .. }
            | EngineEvent::PairsScored { context, .. }
            | EngineEvent::SweepScreened { context, .. }
            | EngineEvent::SweepCacheLookup { context, .. }
            | EngineEvent::SpanClosed { context, .. }
            | EngineEvent::SweepDegraded { context, .. }
            | EngineEvent::TickEnqueued { context, .. }
            | EngineEvent::TickShed { context, .. }
            | EngineEvent::StoreRetried { context, .. }
            | EngineEvent::HealthChanged { context, .. }
            | EngineEvent::TenantEvicted { context, .. }
            | EngineEvent::TenantWarmed { context, .. } => context,
        }
    }
}

/// Receiver of [`EngineEvent`]s. Implementations must be cheap: `record`
/// runs on the ingestion path.
pub trait EventSink: Send + Sync {
    /// Handles one event.
    fn record(&self, event: &EngineEvent);
}

/// The default sink: drops every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&self, _event: &EngineEvent) {}
}

/// The sink installed by [`crate::EngineBuilder::extra_sink`]: forwards
/// every event to the primary sink first, then to each extra observer in
/// attachment order, so side observers (live consoles, loggers) never
/// change what the primary sink or a teed recorder sees.
pub(crate) struct FanOutSink {
    primary: Arc<dyn EventSink>,
    extras: Vec<Arc<dyn EventSink>>,
}

impl FanOutSink {
    pub(crate) fn new(primary: Arc<dyn EventSink>, extras: Vec<Arc<dyn EventSink>>) -> Self {
        FanOutSink { primary, extras }
    }
}

impl EventSink for FanOutSink {
    fn record(&self, event: &EngineEvent) {
        self.primary.record(event);
        for extra in &self.extras {
            extra.record(event);
        }
    }
}

/// An [`EventSink`] that aggregates events into atomic counters — the
/// cheapest always-on option. For per-context attribution, histograms and
/// exporters, use [`crate::Telemetry`] instead.
///
/// Share one via `Arc` between the engine and whatever reads the numbers:
///
/// ```
/// use std::sync::Arc;
/// use ix_core::{ContextId, EngineCounters, EventSink, EngineEvent};
///
/// let counters = Arc::new(EngineCounters::default());
/// counters.record(&EngineEvent::TickIngested {
///     context: ContextId::UNATTRIBUTED,
///     tick: 0,
///     residual: 0.1,
///     exceeded: false,
///     micros: 3,
/// });
/// assert_eq!(counters.ticks_ingested(), 1);
/// ```
#[derive(Debug, Default)]
pub struct EngineCounters {
    ticks_ingested: AtomicU64,
    detections_fired: AtomicU64,
    detections_cleared: AtomicU64,
    diagnoses_run: AtomicU64,
    diagnosis_micros_total: AtomicU64,
    sweeps_completed: AtomicU64,
    sweep_micros_total: AtomicU64,
    sweep_micros_max: AtomicU64,
    sweep_cache_hits: AtomicU64,
    sweep_cache_misses: AtomicU64,
    sweep_pairs_reused: AtomicU64,
    sweep_pairs_screened: AtomicU64,
    sweep_pairs_confirmed: AtomicU64,
    signature_matches: AtomicU64,
    sweeps_degraded: AtomicU64,
    ticks_enqueued: AtomicU64,
    ticks_shed: AtomicU64,
    store_retries: AtomicU64,
    health_transitions: AtomicU64,
    tenants_evicted: AtomicU64,
    tenants_warmed: AtomicU64,
}

impl EngineCounters {
    // ordering: Relaxed — every counter is an independent monotone u64;
    // readers need only eventual visibility, never cross-counter ordering.
    fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Ticks ingested across all contexts.
    pub fn ticks_ingested(&self) -> u64 {
        Self::get(&self.ticks_ingested)
    }

    /// Anomaly onsets the detection layer reported.
    pub fn detections_fired(&self) -> u64 {
        Self::get(&self.detections_fired)
    }

    /// Anomalous-to-normal edges the detection layer reported.
    pub fn detections_cleared(&self) -> u64 {
        Self::get(&self.detections_cleared)
    }

    /// Cause-inference passes run.
    pub fn diagnoses_run(&self) -> u64 {
        Self::get(&self.diagnoses_run)
    }

    /// Total wall-clock microseconds spent in cause inference.
    pub fn diagnosis_micros_total(&self) -> u64 {
        Self::get(&self.diagnosis_micros_total)
    }

    /// Association sweeps completed on the worker pool.
    pub fn sweeps_completed(&self) -> u64 {
        Self::get(&self.sweeps_completed)
    }

    /// Total wall-clock microseconds spent sweeping.
    pub fn sweep_micros_total(&self) -> u64 {
        Self::get(&self.sweep_micros_total)
    }

    /// Slowest single sweep in microseconds.
    pub fn sweep_micros_max(&self) -> u64 {
        Self::get(&self.sweep_micros_max)
    }

    /// Sweeps skipped because the window's association matrix was cached.
    pub fn sweep_cache_hits(&self) -> u64 {
        Self::get(&self.sweep_cache_hits)
    }

    /// Cache lookups that fell through to a full sweep.
    pub fn sweep_cache_misses(&self) -> u64 {
        Self::get(&self.sweep_cache_misses)
    }

    /// Pairs incremental sweeps reused verbatim from the score cache.
    pub fn sweep_pairs_reused(&self) -> u64 {
        Self::get(&self.sweep_pairs_reused)
    }

    /// Pairs incremental sweeps screened out with the conservative bound.
    pub fn sweep_pairs_screened(&self) -> u64 {
        Self::get(&self.sweep_pairs_screened)
    }

    /// Pairs incremental sweeps confirmed with the full measure.
    pub fn sweep_pairs_confirmed(&self) -> u64 {
        Self::get(&self.sweep_pairs_confirmed)
    }

    /// Confident signature matches reported by diagnoses.
    pub fn signature_matches(&self) -> u64 {
        Self::get(&self.signature_matches)
    }

    /// Sweeps answered by a degradation-ladder fallback tier.
    pub fn sweeps_degraded(&self) -> u64 {
        Self::get(&self.sweeps_degraded)
    }

    /// Ticks accepted into the bounded ingest queue.
    pub fn ticks_enqueued(&self) -> u64 {
        Self::get(&self.ticks_enqueued)
    }

    /// Ticks shed by the ingest queue's overload policy.
    pub fn ticks_shed(&self) -> u64 {
        Self::get(&self.ticks_shed)
    }

    /// Store save/load attempts that failed and were retried.
    pub fn store_retries(&self) -> u64 {
        Self::get(&self.store_retries)
    }

    /// Health state machine transitions.
    pub fn health_transitions(&self) -> u64 {
        Self::get(&self.health_transitions)
    }

    /// Tenant engines a fleet evicted to a snapshot.
    pub fn tenants_evicted(&self) -> u64 {
        Self::get(&self.tenants_evicted)
    }

    /// Tenant engines a fleet warmed from a snapshot.
    pub fn tenants_warmed(&self) -> u64 {
        Self::get(&self.tenants_warmed)
    }
}

impl EventSink for EngineCounters {
    // ordering: Relaxed throughout — each event mutates independent
    // monotone counters (fetch_add/fetch_max are single-variable RMWs);
    // cross-thread publication rides the engine's channel/join edges.
    fn record(&self, event: &EngineEvent) {
        match *event {
            EngineEvent::TickIngested { .. } => {
                self.ticks_ingested.fetch_add(1, Ordering::Relaxed);
            }
            EngineEvent::DetectionFired { .. } => {
                self.detections_fired.fetch_add(1, Ordering::Relaxed);
            }
            EngineEvent::DetectionCleared { .. } => {
                self.detections_cleared.fetch_add(1, Ordering::Relaxed);
            }
            EngineEvent::DiagnosisRan { micros, .. } => {
                self.diagnoses_run.fetch_add(1, Ordering::Relaxed);
                self.diagnosis_micros_total
                    .fetch_add(micros, Ordering::Relaxed);
            }
            EngineEvent::SignatureMatched { confident, .. } => {
                if confident {
                    self.signature_matches.fetch_add(1, Ordering::Relaxed);
                }
            }
            EngineEvent::SweepCompleted { micros, .. } => {
                self.sweeps_completed.fetch_add(1, Ordering::Relaxed);
                self.sweep_micros_total.fetch_add(micros, Ordering::Relaxed);
                self.sweep_micros_max.fetch_max(micros, Ordering::Relaxed);
            }
            EngineEvent::SweepCacheLookup { hit, .. } => {
                if hit {
                    self.sweep_cache_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.sweep_cache_misses.fetch_add(1, Ordering::Relaxed);
                }
            }
            EngineEvent::SweepScreened {
                reused,
                screened,
                confirmed,
                ..
            } => {
                self.sweep_pairs_reused
                    .fetch_add(reused as u64, Ordering::Relaxed);
                self.sweep_pairs_screened
                    .fetch_add(screened as u64, Ordering::Relaxed);
                self.sweep_pairs_confirmed
                    .fetch_add(confirmed as u64, Ordering::Relaxed);
            }
            EngineEvent::SweepDegraded { .. } => {
                self.sweeps_degraded.fetch_add(1, Ordering::Relaxed);
            }
            EngineEvent::TickEnqueued { .. } => {
                self.ticks_enqueued.fetch_add(1, Ordering::Relaxed);
            }
            EngineEvent::TickShed { .. } => {
                self.ticks_shed.fetch_add(1, Ordering::Relaxed);
            }
            EngineEvent::StoreRetried { .. } => {
                self.store_retries.fetch_add(1, Ordering::Relaxed);
            }
            EngineEvent::HealthChanged { .. } => {
                self.health_transitions.fetch_add(1, Ordering::Relaxed);
            }
            EngineEvent::TenantEvicted { .. } => {
                self.tenants_evicted.fetch_add(1, Ordering::Relaxed);
            }
            EngineEvent::TenantWarmed { .. } => {
                self.tenants_warmed.fetch_add(1, Ordering::Relaxed);
            }
            // Chunk- and span-level signals are histogram fodder; the flat
            // counters ignore them.
            EngineEvent::PairsScored { .. } | EngineEvent::SpanClosed { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(context: ContextId, tick: u64) -> EngineEvent {
        EngineEvent::TickIngested {
            context,
            tick,
            residual: 0.1,
            exceeded: false,
            micros: 2,
        }
    }

    #[test]
    fn counters_aggregate_events() {
        let ctx = ContextId::UNATTRIBUTED;
        let c = EngineCounters::default();
        c.record(&tick(ctx, 0));
        c.record(&tick(ctx, 1));
        c.record(&EngineEvent::DetectionFired {
            context: ctx,
            tick: 1,
        });
        c.record(&EngineEvent::DetectionCleared {
            context: ctx,
            tick: 5,
        });
        c.record(&EngineEvent::DiagnosisRan {
            context: ctx,
            tick: 1,
            micros: 40,
        });
        c.record(&EngineEvent::SignatureMatched {
            context: ctx,
            tick: 1,
            best_similarity: 0.9,
            confident: true,
        });
        c.record(&EngineEvent::SweepCompleted {
            context: ctx,
            pairs: 325,
            micros: 10,
        });
        c.record(&EngineEvent::SweepCompleted {
            context: ctx,
            pairs: 325,
            micros: 30,
        });
        c.record(&EngineEvent::SweepCacheLookup {
            context: ctx,
            hit: true,
        });
        c.record(&EngineEvent::SweepCacheLookup {
            context: ctx,
            hit: false,
        });
        c.record(&EngineEvent::SweepCacheLookup {
            context: ctx,
            hit: false,
        });
        c.record(&EngineEvent::SweepScreened {
            context: ctx,
            reused: 300,
            screened: 20,
            confirmed: 5,
        });
        assert_eq!(c.ticks_ingested(), 2);
        assert_eq!(c.detections_fired(), 1);
        assert_eq!(c.detections_cleared(), 1);
        assert_eq!(c.diagnoses_run(), 1);
        assert_eq!(c.diagnosis_micros_total(), 40);
        assert_eq!(c.signature_matches(), 1);
        assert_eq!(c.sweeps_completed(), 2);
        assert_eq!(c.sweep_micros_total(), 40);
        assert_eq!(c.sweep_micros_max(), 30);
        assert_eq!(c.sweep_cache_hits(), 1);
        assert_eq!(c.sweep_cache_misses(), 2);
        assert_eq!(c.sweep_pairs_reused(), 300);
        assert_eq!(c.sweep_pairs_screened(), 20);
        assert_eq!(c.sweep_pairs_confirmed(), 5);
    }

    #[test]
    fn counters_aggregate_resilience_events() {
        let ctx = ContextId::UNATTRIBUTED;
        let c = EngineCounters::default();
        c.record(&EngineEvent::SweepDegraded {
            context: ctx,
            tier: DegradationTier::PearsonFallback,
            reason: DegradationReason::WallClockExceeded,
        });
        c.record(&EngineEvent::TickEnqueued {
            context: ctx,
            depth: 4,
        });
        c.record(&EngineEvent::TickShed {
            context: ctx,
            policy: OverloadPolicy::ShedOldest,
        });
        c.record(&EngineEvent::StoreRetried {
            context: ctx,
            attempt: 1,
            backoff_micros: 1000,
        });
        c.record(&EngineEvent::HealthChanged {
            context: ctx,
            from: HealthState::Healthy,
            to: HealthState::Degraded(DegradationTier::PearsonFallback),
        });
        c.record(&EngineEvent::TenantEvicted {
            context: ctx,
            tenant: 7,
            ticks: 120,
        });
        c.record(&EngineEvent::TenantWarmed {
            context: ctx,
            tenant: 7,
            micros: 350,
        });
        assert_eq!(c.sweeps_degraded(), 1);
        assert_eq!(c.ticks_enqueued(), 1);
        assert_eq!(c.ticks_shed(), 1);
        assert_eq!(c.store_retries(), 1);
        assert_eq!(c.health_transitions(), 1);
        assert_eq!(c.tenants_evicted(), 1);
        assert_eq!(c.tenants_warmed(), 1);
    }

    #[test]
    fn null_sink_is_a_no_op() {
        NullSink.record(&tick(ContextId::UNATTRIBUTED, 7));
    }

    #[test]
    fn events_expose_their_context() {
        let ctx = ContextId::UNATTRIBUTED;
        assert_eq!(tick(ctx, 0).context(), ctx);
        assert_eq!(
            EngineEvent::SpanClosed {
                phase: EnginePhase::Sweep,
                context: ctx,
                micros: 1,
            }
            .context(),
            ctx
        );
    }
}
