//! The state layer: per-context engine state sharded across locks.
//!
//! Streaming ingestion is naturally parallel across contexts (node ×
//! workload), so the engine shards its context map over `N` independent
//! `RwLock`s keyed by the context hash — concurrent ingests contend only
//! when their contexts land in the same shard. Within a shard the map is
//! a `BTreeMap` so every iteration (context listing, coverage counts) is
//! deterministically ordered — a requirement of the replay/verify and
//! history guarantees, enforced by the `determinism` lint.

use std::collections::BTreeMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::{Arc, PoisonError, RwLock};

use ix_metrics::SlidingFrame;

use crate::anomaly::PerformanceModel;
use crate::context::OperationContext;
use crate::invariants::InvariantSet;

use super::detector::{Detector, DetectorRun};

/// Everything the engine knows about one operation context.
pub(crate) struct ContextState {
    /// The trained performance model, if any.
    pub perf_model: Option<Arc<PerformanceModel>>,
    /// The streaming detector built from the model (or installed directly).
    pub detector: Option<Arc<dyn Detector>>,
    /// The invariant set of Algorithm 1, if built.
    pub invariants: Option<Arc<InvariantSet>>,
    /// Sliding window of the most recent metric rows.
    pub window: SlidingFrame,
    /// The in-flight detector run (`None` until the first ingest after a
    /// train or reset).
    pub run: Option<Box<dyn DetectorRun>>,
    /// Whether the previous tick was anomalous (for edge-triggering).
    pub prev_anomalous: bool,
    /// Ticks ingested into the current run.
    pub run_ticks: usize,
}

impl ContextState {
    pub(crate) fn new(window_ticks: usize) -> Self {
        ContextState {
            perf_model: None,
            detector: None,
            invariants: None,
            window: SlidingFrame::new(window_ticks.max(1)),
            run: None,
            prev_anomalous: false,
            run_ticks: 0,
        }
    }

    /// Discards the in-flight run and window (start of a new job run).
    pub(crate) fn reset_run(&mut self) {
        self.run = None;
        self.prev_anomalous = false;
        self.run_ticks = 0;
        self.window.clear();
    }
}

/// The sharded context map.
pub(crate) struct ShardedStateMap {
    shards: Vec<RwLock<BTreeMap<OperationContext, ContextState>>>,
}

impl ShardedStateMap {
    pub(crate) fn new(shards: usize) -> Self {
        ShardedStateMap {
            shards: (0..shards.max(1))
                .map(|_| RwLock::new(BTreeMap::new()))
                .collect(),
        }
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(
        &self,
        context: &OperationContext,
    ) -> &RwLock<BTreeMap<OperationContext, ContextState>> {
        let mut hasher = DefaultHasher::new();
        context.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Read access to a context's state, if present.
    pub(crate) fn with<R>(
        &self,
        context: &OperationContext,
        f: impl FnOnce(&ContextState) -> R,
    ) -> Option<R> {
        // Shard state stays usable even if a panic poisoned the lock: the
        // per-context values are either immutable Arcs or per-run scratch
        // that the next reset_run discards.
        let shard = self
            .shard_of(context)
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        shard.get(context).map(f)
    }

    /// Write access to a context's state, creating it when absent.
    pub(crate) fn with_mut<R>(
        &self,
        context: &OperationContext,
        window_ticks: usize,
        f: impl FnOnce(&mut ContextState) -> R,
    ) -> R {
        let mut shard = self
            .shard_of(context)
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let state = shard
            .entry(context.clone())
            .or_insert_with(|| ContextState::new(window_ticks));
        f(state)
    }

    /// Write access to a context's state only if it already exists.
    pub(crate) fn with_existing_mut<R>(
        &self,
        context: &OperationContext,
        f: impl FnOnce(&mut ContextState) -> R,
    ) -> Option<R> {
        let mut shard = self
            .shard_of(context)
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        shard.get_mut(context).map(f)
    }

    /// All known contexts, sorted.
    pub(crate) fn contexts(&self) -> Vec<OperationContext> {
        let mut out: Vec<OperationContext> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .keys()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort();
        out
    }

    /// Number of contexts holding a trained performance model.
    pub(crate) fn modeled_contexts(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values()
                    .filter(|c| c.perf_model.is_some())
                    .count()
            })
            .sum()
    }

    /// Number of contexts holding an invariant set.
    pub(crate) fn invariant_contexts(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values()
                    .filter(|c| c.invariants.is_some())
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_states_are_isolated() {
        let map = ShardedStateMap::new(4);
        assert_eq!(map.shard_count(), 4);
        let a = OperationContext::new("n1", "W");
        let b = OperationContext::new("n2", "W");
        map.with_mut(&a, 10, |s| s.run_ticks = 5);
        map.with_mut(&b, 10, |s| s.run_ticks = 9);
        assert_eq!(map.with(&a, |s| s.run_ticks), Some(5));
        assert_eq!(map.with(&b, |s| s.run_ticks), Some(9));
        assert_eq!(map.contexts(), vec![a, b]);
    }

    #[test]
    fn missing_context_reads_as_none() {
        let map = ShardedStateMap::new(2);
        let c = OperationContext::new("nowhere", "W");
        assert_eq!(map.with(&c, |_| ()), None);
        assert_eq!(map.with_existing_mut(&c, |_| ()), None);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let map = ShardedStateMap::new(0);
        assert_eq!(map.shard_count(), 1);
    }

    #[test]
    fn poisoned_shard_stays_usable() {
        let map = ShardedStateMap::new(1);
        let c = OperationContext::new("n", "W");
        map.with_mut(&c, 10, |s| s.run_ticks = 3);
        // Poison the single shard's lock by panicking while holding it.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            map.with_mut(&c, 10, |_| panic!("injected"));
        }));
        assert!(result.is_err());
        // Reads and writes recover the poisoned lock instead of panicking.
        assert_eq!(map.with(&c, |s| s.run_ticks), Some(3));
        map.with_mut(&c, 10, |s| s.run_ticks = 7);
        assert_eq!(map.with(&c, |s| s.run_ticks), Some(7));
        assert_eq!(map.contexts().len(), 1);
    }
}
